//! Typed diagnostics: stable codes, severities, spans, reports and the
//! deny/allow policy.
//!
//! Every finding the linter can produce has a **stable code** — `L0xx`
//! for netlist structure, `A1xx` for allocation invariants, `B2xx` for
//! BIST legality — so scripts, CI gates and golden snapshots can match on
//! codes instead of message text. Reports sort diagnostics by
//! `(code, span, severity, message)`, which makes both the text and JSON
//! renderings byte-stable regardless of pass execution order or worker
//! count.

use std::collections::BTreeSet;
use std::fmt;

use lobist_datapath::{ModuleId, Port, RegisterId};
use lobist_dfg::{OpId, VarId};

/// A stable diagnostic code.
///
/// Declaration order is report order: structural (`L0xx`), then
/// allocation (`A1xx`), then BIST (`B2xx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A net is read (by a gate or an output) but never driven.
    L001UndrivenNet,
    /// A net has more than one driver.
    L002MultiplyDrivenNet,
    /// A combinational cycle (non-trivial SCC of the signal graph).
    L003CombinationalLoop,
    /// A module netlist's input/output count disagrees with its
    /// declared interface at the design width.
    L004WidthMismatch,
    /// A module input port with an empty source set (a mux with no legs).
    L005DanglingPort,
    /// A register that stores values but is driven by nothing.
    L006UnreachableRegister,
    /// A register whose contents nothing ever reads.
    L007DeadRegister,
    /// A connection references a register, module or variable that does
    /// not exist.
    L008SourceOutOfRange,
    /// Two variables with overlapping lifetimes share a register — the
    /// register assignment is not a proper coloring.
    A101RegisterConflict,
    /// A variable that needs a register has none.
    A102UnassignedVariable,
    /// Two operations on one module are scheduled in the same step.
    A103ModuleOverlap,
    /// A non-commutative operation's left operand is bound to the right
    /// port.
    A104NonCommutativeSwap,
    /// An operation's operand source is missing from its port's mux —
    /// the netlist does not realise the bindings.
    A105PortBindingMismatch,
    /// An embedding's pattern source has no I-path to its port.
    B201NoSuchIPath,
    /// An embedding's SA register does not receive the module's output.
    B202NoSuchSaPath,
    /// Both ports of an embedding are fed by the same pattern source.
    B203DuplicateTpg,
    /// A register's style lacks a capability its TPG/SA role demands.
    B204InsufficientStyle,
    /// Two module tests in one session contend for a register.
    B205SessionConflict,
    /// The recorded BIST overhead differs from the sum of style extras.
    B206OverheadMismatch,
    /// The solution's vectors do not match the data path's shape.
    B207ShapeMismatch,
    /// A register serving as TPG and SA of one embedding (the Lemma-2
    /// forced-CBILBO situation) is not styled CBILBO.
    B208MissingForcedCbilbo,
    /// A register styled CBILBO that neither an embedding demands nor
    /// Lemma 2 forces.
    B209UnforcedCbilbo,
    /// A fault whose COP-estimated detection probability is so low that
    /// it is more likely than not to survive the pseudorandom pattern
    /// budget.
    T301RandomPatternResistant,
    /// A module port or output no test-mode pattern/signature register
    /// can reach under the allocation's I-paths.
    T302UnreachableInTestMode,
    /// A fault that is untestable by construction: constant excitation
    /// or no structurally live path to an output.
    T303ConstantRedundant,
}

/// Every code, in report order.
pub const ALL_CODES: [Code; 25] = [
    Code::L001UndrivenNet,
    Code::L002MultiplyDrivenNet,
    Code::L003CombinationalLoop,
    Code::L004WidthMismatch,
    Code::L005DanglingPort,
    Code::L006UnreachableRegister,
    Code::L007DeadRegister,
    Code::L008SourceOutOfRange,
    Code::A101RegisterConflict,
    Code::A102UnassignedVariable,
    Code::A103ModuleOverlap,
    Code::A104NonCommutativeSwap,
    Code::A105PortBindingMismatch,
    Code::B201NoSuchIPath,
    Code::B202NoSuchSaPath,
    Code::B203DuplicateTpg,
    Code::B204InsufficientStyle,
    Code::B205SessionConflict,
    Code::B206OverheadMismatch,
    Code::B207ShapeMismatch,
    Code::B208MissingForcedCbilbo,
    Code::B209UnforcedCbilbo,
    Code::T301RandomPatternResistant,
    Code::T302UnreachableInTestMode,
    Code::T303ConstantRedundant,
];

impl Code {
    /// The stable textual code (`"A101"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::L001UndrivenNet => "L001",
            Code::L002MultiplyDrivenNet => "L002",
            Code::L003CombinationalLoop => "L003",
            Code::L004WidthMismatch => "L004",
            Code::L005DanglingPort => "L005",
            Code::L006UnreachableRegister => "L006",
            Code::L007DeadRegister => "L007",
            Code::L008SourceOutOfRange => "L008",
            Code::A101RegisterConflict => "A101",
            Code::A102UnassignedVariable => "A102",
            Code::A103ModuleOverlap => "A103",
            Code::A104NonCommutativeSwap => "A104",
            Code::A105PortBindingMismatch => "A105",
            Code::B201NoSuchIPath => "B201",
            Code::B202NoSuchSaPath => "B202",
            Code::B203DuplicateTpg => "B203",
            Code::B204InsufficientStyle => "B204",
            Code::B205SessionConflict => "B205",
            Code::B206OverheadMismatch => "B206",
            Code::B207ShapeMismatch => "B207",
            Code::B208MissingForcedCbilbo => "B208",
            Code::B209UnforcedCbilbo => "B209",
            Code::T301RandomPatternResistant => "T301",
            Code::T302UnreachableInTestMode => "T302",
            Code::T303ConstantRedundant => "T303",
        }
    }

    /// Short human title of the invariant.
    pub fn title(self) -> &'static str {
        match self {
            Code::L001UndrivenNet => "undriven net",
            Code::L002MultiplyDrivenNet => "multiply-driven net",
            Code::L003CombinationalLoop => "combinational loop",
            Code::L004WidthMismatch => "width mismatch",
            Code::L005DanglingPort => "dangling port",
            Code::L006UnreachableRegister => "unreachable register",
            Code::L007DeadRegister => "dead register",
            Code::L008SourceOutOfRange => "source out of range",
            Code::A101RegisterConflict => "register conflict",
            Code::A102UnassignedVariable => "unassigned variable",
            Code::A103ModuleOverlap => "module overlap",
            Code::A104NonCommutativeSwap => "non-commutative swap",
            Code::A105PortBindingMismatch => "port binding mismatch",
            Code::B201NoSuchIPath => "no such I-path",
            Code::B202NoSuchSaPath => "no such SA path",
            Code::B203DuplicateTpg => "duplicate TPG",
            Code::B204InsufficientStyle => "insufficient style",
            Code::B205SessionConflict => "session conflict",
            Code::B206OverheadMismatch => "overhead mismatch",
            Code::B207ShapeMismatch => "shape mismatch",
            Code::B208MissingForcedCbilbo => "missing forced CBILBO",
            Code::B209UnforcedCbilbo => "unforced CBILBO",
            Code::T301RandomPatternResistant => "random-pattern-resistant fault",
            Code::T302UnreachableInTestMode => "unreachable in test mode",
            Code::T303ConstantRedundant => "constant/redundant fault",
        }
    }

    /// The severity a finding of this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::L007DeadRegister
            | Code::B209UnforcedCbilbo
            | Code::T301RandomPatternResistant
            | Code::T302UnreachableInTestMode
            | Code::T303ConstantRedundant => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Parses a textual code (`"A101"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not structurally broken.
    Warning,
    /// A violated invariant.
    Error,
}

impl Severity {
    /// Lowercase label (`"warning"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: the offending artifact element.
///
/// The derived order (declaration order, then fields) is the report
/// order within one code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// The design as a whole.
    Design,
    /// A net of a module's gate netlist (`None` = a standalone network).
    Net {
        /// The module whose generated netlist contains the net.
        module: Option<ModuleId>,
        /// The net id.
        net: u32,
    },
    /// A DFG operation.
    Op(OpId),
    /// A DFG variable.
    Var(VarId),
    /// A data-path register.
    Register(RegisterId),
    /// An operator module.
    Module(ModuleId),
    /// A module input port.
    Port(Port),
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Design => write!(f, "design"),
            Span::Net {
                module: Some(m),
                net,
            } => write!(f, "{m}.n{net}"),
            Span::Net { module: None, net } => write!(f, "n{net}"),
            Span::Op(op) => write!(f, "{op}"),
            Span::Var(v) => write!(f, "{v}"),
            Span::Register(r) => write!(f, "{r}"),
            Span::Module(m) => write!(f, "{m}"),
            Span::Port(p) => write!(f, "{p}"),
        }
    }
}

/// One finding. The derived `Ord` — code, then span, then severity, then
/// message — is the canonical report order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// What it points at.
    pub span: Span,
    /// Severity (always `code.severity()` for registry passes).
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Self {
            code,
            span,
            severity: code.severity(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// A sorted, deduplicated collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report: sorts into canonical order and drops exact
    /// duplicates (two passes may legitimately notice the same fact).
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort();
        diagnostics.dedup();
        Self { diagnostics }
    }

    /// The findings in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` if nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// The distinct codes present, in code order.
    pub fn codes(&self) -> Vec<Code> {
        let set: BTreeSet<Code> = self.diagnostics.iter().map(|d| d.code).collect();
        set.into_iter().collect()
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str("lint: clean\n");
        } else {
            out.push_str(&format!(
                "lint: {} error(s), {} warning(s)\n",
                self.error_count(),
                self.warning_count()
            ));
        }
        out
    }

    /// JSON rendering. Deterministic: diagnostics are already in
    /// canonical order, so equal reports render byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"span\": \"{}\", \"message\": \"{}\"}}",
                d.code,
                d.severity,
                json_escape(&d.span.to_string()),
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"errors\": {},\n  \"warnings\": {}\n}}",
            self.error_count(),
            self.warning_count()
        ));
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which findings fail the build.
///
/// By default every error-severity finding is denied and warnings pass.
/// `deny all` (the CI setting) denies warnings too; `allow CODE` exempts
/// a code from any deny rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintPolicy {
    /// Deny every finding regardless of severity.
    pub deny_all: bool,
    /// Codes denied even at warning severity.
    pub deny: BTreeSet<Code>,
    /// Codes never denied (overrides everything else).
    pub allow: BTreeSet<Code>,
}

impl LintPolicy {
    /// The default policy: deny errors, allow warnings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The CI policy: deny everything.
    pub fn deny_all() -> Self {
        Self {
            deny_all: true,
            ..Self::default()
        }
    }

    /// `true` if this finding fails the build under the policy.
    pub fn is_denied(&self, d: &Diagnostic) -> bool {
        if self.allow.contains(&d.code) {
            return false;
        }
        self.deny_all || self.deny.contains(&d.code) || d.severity == Severity::Error
    }

    /// How many findings of `report` the policy denies.
    pub fn denied_count(&self, report: &Report) -> usize {
        report
            .diagnostics()
            .iter()
            .filter(|d| self.is_denied(d))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parse_back() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_lowercase()), Some(c));
        }
        assert_eq!(Code::parse("Z999"), None);
        // Declaration order matches lexical code order within each layer
        // and L < A < B across layers.
        let strs: Vec<&str> = ALL_CODES.iter().map(|c| c.as_str()).collect();
        let mut by_layer = strs.clone();
        by_layer.sort_by_key(|s| {
            let layer = match s.as_bytes()[0] {
                b'L' => 0,
                b'A' => 1,
                b'B' => 2,
                _ => 3,
            };
            (layer, s.to_string())
        });
        assert_eq!(strs, by_layer);
    }

    #[test]
    fn report_sorts_and_dedups() {
        let a = Diagnostic::new(Code::A101RegisterConflict, Span::Design, "x");
        let b = Diagnostic::new(Code::L001UndrivenNet, Span::Design, "y");
        let r = Report::new(vec![a.clone(), b.clone(), a.clone()]);
        assert_eq!(r.diagnostics(), &[b, a]);
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn severity_defaults() {
        assert_eq!(Code::L007DeadRegister.severity(), Severity::Warning);
        assert_eq!(Code::B209UnforcedCbilbo.severity(), Severity::Warning);
        assert_eq!(Code::A101RegisterConflict.severity(), Severity::Error);
    }

    #[test]
    fn policy_denies_errors_by_default() {
        let p = LintPolicy::new();
        let err = Diagnostic::new(Code::A101RegisterConflict, Span::Design, "x");
        let warn = Diagnostic::new(Code::L007DeadRegister, Span::Design, "y");
        assert!(p.is_denied(&err));
        assert!(!p.is_denied(&warn));
        assert!(LintPolicy::deny_all().is_denied(&warn));
        let mut allow = LintPolicy::deny_all();
        allow.allow.insert(Code::A101RegisterConflict);
        assert!(!allow.is_denied(&err));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic::new(Code::L001UndrivenNet, Span::Design, "say \"hi\"");
        let r = Report::new(vec![d]);
        let json = r.to_json();
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("\"errors\": 1"));
        let clean = Report::new(vec![]);
        assert!(clean.to_json().contains("\"diagnostics\": []"));
        assert!(clean.render_text().contains("lint: clean"));
    }
}
