//! Mutation testing of the linter itself.
//!
//! Each test takes a known-clean synthesized design, injects exactly one
//! defect through the surgical hooks on [`DataPath`] / [`BistSolution`] /
//! the assignments, and asserts the report contains **exactly** the
//! expected diagnostic code — no misses and no collateral noise. Together
//! with the gate-network tests in `structural.rs` (L001–L004), every code
//! in the registry has a fixture that fires it and nothing else.

use std::collections::BTreeSet;

use lobist_alloc::cbilbo::forced_cbilbos;
use lobist_alloc::flow::{synthesize_benchmark, Design, FlowOptions};
use lobist_bist::embedding::PatternSource;
use lobist_bist::BistSolution;
use lobist_datapath::area::{AreaModel, BistStyle, GateCount};
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{
    DataPath, InterconnectAssignment, ModuleAssignment, ModuleId, Port, PortSide,
    RegisterAssignment, RegisterId, SourceRef,
};
use lobist_dfg::benchmarks::{self, Benchmark};
use lobist_dfg::lifetime::{LifetimeOptions, Lifetimes};
use lobist_dfg::modules::ModuleSet;
use lobist_dfg::parse::parse_dfg;
use lobist_dfg::{OpKind, Operand, VarId};
use lobist_lint::{lint, Code, LintUnit, Report, Severity};

struct Fixture {
    bench: Benchmark,
    opts: FlowOptions,
    design: Design,
}

impl Fixture {
    fn ex1(opts: FlowOptions) -> Fixture {
        let bench = benchmarks::ex1();
        let design = synthesize_benchmark(&bench, &opts).expect("ex1 synthesizes");
        Fixture {
            bench,
            opts,
            design,
        }
    }

    /// The unit for the unmutated design.
    fn unit(&self) -> LintUnit<'_> {
        LintUnit::of_design(
            &self.bench.dfg,
            &self.bench.schedule,
            &self.design,
            self.bench.lifetime_options,
            &self.opts.area,
        )
    }

    /// A unit over a mutated data path. The BIST solution is withheld:
    /// structural surgery perturbs the I-path analysis, and the point of
    /// these tests is that exactly one layer reports.
    fn unit_dp<'a>(&'a self, dp: &'a DataPath) -> LintUnit<'a> {
        LintUnit {
            data_path: Some(dp),
            bist: None,
            ..self.unit()
        }
    }

    /// A unit over a mutated register assignment, before netlist assembly.
    fn unit_regs<'a>(&'a self, regs: &'a RegisterAssignment) -> LintUnit<'a> {
        LintUnit {
            registers: regs,
            data_path: None,
            bist: None,
            ..self.unit()
        }
    }

    /// A unit over a mutated BIST solution.
    fn unit_bist<'a>(&'a self, sol: &'a BistSolution) -> LintUnit<'a> {
        LintUnit {
            bist: Some(sol),
            ..self.unit()
        }
    }

    /// A unit where both the data path and the solution are replaced.
    fn unit_dp_bist<'a>(&'a self, dp: &'a DataPath, sol: &'a BistSolution) -> LintUnit<'a> {
        LintUnit {
            data_path: Some(dp),
            bist: Some(sol),
            ..self.unit()
        }
    }
}

/// Fixtures rich enough for the BIST mutations: both flows over the
/// paper's example and the Paulin benchmark.
fn bist_fixtures() -> Vec<Fixture> {
    let mut out = Vec::new();
    for make in [benchmarks::ex1 as fn() -> Benchmark, benchmarks::paulin] {
        for opts in [FlowOptions::testable(), FlowOptions::traditional()] {
            let bench = make();
            if let Ok(design) = synthesize_benchmark(&bench, &opts) {
                out.push(Fixture {
                    bench,
                    opts,
                    design,
                });
            }
        }
    }
    assert!(!out.is_empty());
    out
}

fn expect_exactly(report: &Report, code: Code) {
    assert_eq!(
        report.codes(),
        [code],
        "expected only {code:?}:\n{}",
        report.render_text()
    );
}

/// Resets the recorded overhead to match the (mutated) styles, so style
/// surgery tests the style check and not the bookkeeping.
fn fix_overhead(sol: &mut BistSolution, model: &AreaModel) {
    sol.overhead = GateCount(
        sol.styles
            .iter()
            .map(|&s| model.style_extra(s).get())
            .sum(),
    );
}

/// `r` may serve as a TPG of module `m` without a session conflict.
fn session_safe_as_tpg(sol: &BistSolution, m: ModuleId, r: RegisterId) -> bool {
    sol.style(r).can_do_both_concurrently()
        || sol.embeddings.iter().enumerate().all(|(b, eb)| {
            b == m.index() || sol.sessions[b] != sol.sessions[m.index()] || eb.sa != r
        })
}

/// `r` may serve as the SA of module `m` without a session conflict.
fn session_safe_as_sa(sol: &BistSolution, m: ModuleId, r: RegisterId) -> bool {
    sol.embeddings.iter().enumerate().all(|(b, eb)| {
        b == m.index()
            || sol.sessions[b] != sol.sessions[m.index()]
            || (eb.sa != r
                && (sol.style(r).can_do_both_concurrently()
                    || !eb.tpg_registers().any(|t| t == r)))
    })
}

/// The mux source an operation's operand binds to, mirroring the binding
/// rule the linter checks.
fn source_of(f: &Fixture, operand: Operand) -> SourceRef {
    match operand {
        Operand::Const(c) => SourceRef::Constant(c),
        Operand::Var(v) => match f.design.register_assignment.register_of(v) {
            Some(r) => SourceRef::Register(r),
            None => SourceRef::ExternalInput(v),
        },
    }
}

// ---------------------------------------------------------------- baseline

#[test]
fn synthesized_designs_lint_clean() {
    for f in bist_fixtures() {
        let report = lint(&f.unit());
        assert!(
            report.is_clean(),
            "{} should be clean:\n{}",
            f.bench.name,
            report.render_text()
        );
    }
}

// ------------------------------------------------------- structure layer

#[test]
fn cutting_every_source_of_a_port_is_l005() {
    let f = Fixture::ex1(FlowOptions::testable());
    let dp0 = &f.design.data_path;
    // A port whose removal leaves every feeding register with other work,
    // so only the dangling port itself is reportable.
    let port = dp0
        .module_ids()
        .filter(|&m| !dp0.module_ops(m).is_empty())
        .flat_map(|m| {
            [PortSide::Left, PortSide::Right].map(|side| Port { module: m, side })
        })
        .find(|&port| {
            dp0.port_sources(port).iter().all(|&s| match s {
                SourceRef::Register(r) => dp0.ports_fed_by(r).len() >= 2,
                _ => true,
            })
        })
        .expect("some port only taps shared registers");
    let mut dp = dp0.clone();
    for s in dp0.port_sources(port).iter().copied().collect::<Vec<_>>() {
        assert!(dp.cut_port_source(port, s));
    }
    expect_exactly(&lint(&f.unit_dp(&dp)), Code::L005DanglingPort);
}

#[test]
fn cutting_a_register_driver_is_l006() {
    let f = Fixture::ex1(FlowOptions::testable());
    let dp0 = &f.design.data_path;
    let r = dp0
        .register_ids()
        .find(|&r| !dp0.register_sources(r).is_empty())
        .expect("some register is module-driven");
    let mut dp = dp0.clone();
    for m in dp0.register_sources(r).iter().copied().collect::<Vec<_>>() {
        assert!(dp.cut_register_driver(r, m));
    }
    expect_exactly(&lint(&f.unit_dp(&dp)), Code::L006UnreachableRegister);
}

#[test]
fn isolated_register_is_l007() {
    let f = Fixture::ex1(FlowOptions::testable());
    let input = f
        .bench
        .dfg
        .var_ids()
        .find(|&v| f.bench.dfg.var(v).producer.is_none() && !f.bench.dfg.var(v).is_output)
        .expect("ex1 has inputs");
    let mut dp = f.design.data_path.clone();
    dp.add_isolated_register(vec![input], true);
    let report = lint(&f.unit_dp(&dp));
    expect_exactly(&report, Code::L007DeadRegister);
    assert_eq!(report.error_count(), 0, "L007 is a warning");
}

#[test]
fn out_of_range_source_is_l008() {
    let f = Fixture::ex1(FlowOptions::testable());
    let mut dp = f.design.data_path.clone();
    let port = Port {
        module: dp.module_ids().next().unwrap(),
        side: PortSide::Left,
    };
    dp.add_port_source(port, SourceRef::Register(RegisterId(99)));
    expect_exactly(&lint(&f.unit_dp(&dp)), Code::L008SourceOutOfRange);
}

// ------------------------------------------------------ allocation layer

#[test]
fn overlapping_lifetimes_are_a101() {
    let f = Fixture::ex1(FlowOptions::testable());
    let lifetimes = Lifetimes::compute(
        &f.bench.dfg,
        &f.bench.schedule,
        f.bench.lifetime_options,
    );
    let classes = f.design.register_assignment.classes();
    // Move one variable into a class holding a simultaneously-live one.
    let (v, from, to) = classes
        .iter()
        .enumerate()
        .flat_map(|(i, class)| class.iter().map(move |&v| (v, i)))
        .find_map(|(v, i)| {
            (0..classes.len())
                .find(|&j| j != i && classes[j].iter().any(|&u| lifetimes.conflicts(v, u)))
                .map(|j| (v, i, j))
        })
        .expect("ex1 has a cross-class lifetime conflict");
    let mut broken = classes.to_vec();
    broken[from].retain(|&u| u != v);
    broken[to].push(v);
    let regs = RegisterAssignment::new(&f.bench.dfg, broken).unwrap();
    expect_exactly(&lint(&f.unit_regs(&regs)), Code::A101RegisterConflict);
}

#[test]
fn dropping_a_variable_is_a102() {
    let f = Fixture::ex1(FlowOptions::testable());
    let mut classes = f.design.register_assignment.classes().to_vec();
    let victim = classes.iter().find(|c| !c.is_empty()).unwrap()[0];
    for class in &mut classes {
        class.retain(|&v| v != victim);
    }
    let regs = RegisterAssignment::new(&f.bench.dfg, classes).unwrap();
    expect_exactly(&lint(&f.unit_regs(&regs)), Code::A102UnassignedVariable);
}

/// A two-adds-in-one-step DFG where the broken module assignment is built
/// directly — the defect exists before any netlist could.
#[test]
fn double_booked_module_is_a103() {
    let (dfg, schedule) = parse_dfg(
        "input a b c d\n\
         s1 = a + b @ 1\n\
         s2 = c + d @ 1\n\
         y  = s1 * s2 @ 2\n\
         output y\n",
    )
    .unwrap();
    let ms: ModuleSet = "1+,1*".parse().unwrap();
    let modules = ModuleAssignment::new(&dfg, &ms, vec![0, 0, 1]).unwrap();
    let lifetimes = Lifetimes::compute(&dfg, &schedule, LifetimeOptions::registered_inputs());
    let classes: Vec<Vec<VarId>> = lifetimes.reg_vars().iter().map(|&v| vec![v]).collect();
    let regs = RegisterAssignment::new(&dfg, classes).unwrap();
    let area = AreaModel::default();
    let unit = LintUnit {
        dfg: &dfg,
        schedule: &schedule,
        lifetime_options: LifetimeOptions::registered_inputs(),
        modules: &modules,
        registers: &regs,
        interconnect: None,
        data_path: None,
        bist: None,
        area: &area,
    };
    expect_exactly(&lint(&unit), Code::A103ModuleOverlap);
}

#[test]
fn swapped_noncommutative_operands_are_a104() {
    let (dfg, schedule) = parse_dfg(
        "input a b c d\n\
         s1 = a + b @ 1\n\
         s2 = c + d @ 2\n\
         y  = s1 - s2 @ 3\n\
         output y\n",
    )
    .unwrap();
    let ms: ModuleSet = "1+,1-".parse().unwrap();
    let modules = ModuleAssignment::new(&dfg, &ms, vec![0, 0, 1]).unwrap();
    let lifetimes = Lifetimes::compute(&dfg, &schedule, LifetimeOptions::registered_inputs());
    let classes: Vec<Vec<VarId>> = lifetimes.reg_vars().iter().map(|&v| vec![v]).collect();
    let regs = RegisterAssignment::new(&dfg, classes).unwrap();
    let y = dfg
        .op_ids()
        .find(|&op| dfg.op(op).kind == OpKind::Sub)
        .unwrap();
    let mut ic = InterconnectAssignment::straight(&dfg);
    ic.swap(y);
    let area = AreaModel::default();
    let unit = LintUnit {
        dfg: &dfg,
        schedule: &schedule,
        lifetime_options: LifetimeOptions::registered_inputs(),
        modules: &modules,
        registers: &regs,
        interconnect: Some(&ic),
        data_path: None,
        bist: None,
        area: &area,
    };
    expect_exactly(&lint(&unit), Code::A104NonCommutativeSwap);
}

#[test]
fn cutting_a_bound_mux_leg_is_a105() {
    let f = Fixture::ex1(FlowOptions::testable());
    let dp0 = &f.design.data_path;
    // An operand whose register leg also feeds other ports, on a port
    // with other legs left over — cutting it breaks exactly one binding.
    let (port, want) = f
        .bench
        .dfg
        .op_ids()
        .find_map(|op| {
            let info = f.bench.dfg.op(op);
            let m = f.design.module_assignment.module_of(op);
            let lhs = dp0.lhs_side(op);
            [(info.lhs, lhs), (info.rhs, lhs.other())]
                .into_iter()
                .find_map(|(operand, side)| {
                    let port = Port { module: m, side };
                    let want = source_of(&f, operand);
                    let SourceRef::Register(r) = want else {
                        return None;
                    };
                    (dp0.port_sources(port).len() >= 2 && dp0.ports_fed_by(r).len() >= 2)
                        .then_some((port, want))
                })
        })
        .expect("some binding is surgically cuttable");
    let mut dp = dp0.clone();
    assert!(dp.cut_port_source(port, want));
    expect_exactly(&lint(&f.unit_dp(&dp)), Code::A105PortBindingMismatch);
}

// ------------------------------------------------------------ BIST layer

#[test]
fn retargeted_tpg_without_ipath_is_b201() {
    let mut found = false;
    for f in bist_fixtures() {
        let dp = &f.design.data_path;
        let sol0 = &f.design.bist;
        let ipaths = IPathAnalysis::of(dp);
        'modules: for m in dp.module_ids() {
            let e = sol0.embeddings[m.index()];
            for side in [PortSide::Left, PortSide::Right] {
                let other = match side {
                    PortSide::Left => e.right,
                    PortSide::Right => e.left,
                };
                for r in dp.register_ids() {
                    if ipaths.tpg_candidates(m, side).contains(&r)
                        || !sol0.style(r).can_generate()
                        || PatternSource::Register(r) == other
                        || r == e.sa
                        || !session_safe_as_tpg(sol0, m, r)
                    {
                        continue;
                    }
                    let mut sol = sol0.clone();
                    match side {
                        PortSide::Left => sol.embeddings[m.index()].left = PatternSource::Register(r),
                        PortSide::Right => {
                            sol.embeddings[m.index()].right = PatternSource::Register(r)
                        }
                    }
                    expect_exactly(&lint(&f.unit_bist(&sol)), Code::B201NoSuchIPath);
                    found = true;
                    break 'modules;
                }
            }
        }
    }
    assert!(found, "no fixture admitted a B201 injection");
}

#[test]
fn retargeted_sa_without_opath_is_b202() {
    let mut found = false;
    for f in bist_fixtures() {
        let dp = &f.design.data_path;
        let sol0 = &f.design.bist;
        let ipaths = IPathAnalysis::of(dp);
        'modules: for m in dp.module_ids() {
            let e = sol0.embeddings[m.index()];
            for r in dp.register_ids() {
                if ipaths.sa_candidates(m).contains(&r)
                    || !sol0.style(r).can_analyze()
                    || e.tpg_registers().any(|t| t == r)
                    || !session_safe_as_sa(sol0, m, r)
                {
                    continue;
                }
                let mut sol = sol0.clone();
                sol.embeddings[m.index()].sa = r;
                expect_exactly(&lint(&f.unit_bist(&sol)), Code::B202NoSuchSaPath);
                found = true;
                break 'modules;
            }
        }
    }
    assert!(found, "no fixture admitted a B202 injection");
}

#[test]
fn duplicated_pattern_source_is_b203() {
    // In every shipped design no register reaches both ports of one
    // module, so the duplicate defect is manufactured the way the repair
    // flow would: a test connection gives an existing TPG an I-path to
    // the second port, then both ports are bound to it.
    let mut found = false;
    for f in bist_fixtures() {
        let dp0 = &f.design.data_path;
        let sol0 = &f.design.bist;
        let ipaths = IPathAnalysis::of(dp0);
        'modules: for m in dp0.module_ids() {
            let e = sol0.embeddings[m.index()];
            for side in [PortSide::Left, PortSide::Right] {
                for &r in ipaths.tpg_candidates(m, side.other()) {
                    if !sol0.style(r).can_generate()
                        || r == e.sa
                        || !session_safe_as_tpg(sol0, m, r)
                    {
                        continue;
                    }
                    let dp = dp0.with_test_connection(Port { module: m, side }, r);
                    if !IPathAnalysis::of(&dp).tpg_candidates(m, side).contains(&r) {
                        continue;
                    }
                    let mut sol = sol0.clone();
                    sol.embeddings[m.index()].left = PatternSource::Register(r);
                    sol.embeddings[m.index()].right = PatternSource::Register(r);
                    expect_exactly(&lint(&f.unit_dp_bist(&dp, &sol)), Code::B203DuplicateTpg);
                    found = true;
                    break 'modules;
                }
            }
        }
    }
    assert!(found, "no fixture admitted a B203 injection");
}

#[test]
fn downgraded_pure_tpg_is_b204() {
    let mut found = false;
    for f in bist_fixtures() {
        let sol0 = &f.design.bist;
        let tpgs: BTreeSet<RegisterId> =
            sol0.embeddings.iter().flat_map(|e| e.tpg_registers()).collect();
        let sas: BTreeSet<RegisterId> = sol0.embeddings.iter().map(|e| e.sa).collect();
        if let Some(&t) = tpgs.difference(&sas).next() {
            let mut sol = sol0.clone();
            sol.styles[t.index()] = BistStyle::Normal;
            fix_overhead(&mut sol, &f.opts.area);
            expect_exactly(&lint(&f.unit_bist(&sol)), Code::B204InsufficientStyle);
            found = true;
        }
    }
    assert!(found, "no fixture has a pure-TPG register");
}

#[test]
fn merged_sessions_with_shared_sa_are_b205() {
    let mut found = false;
    for f in bist_fixtures() {
        let sol0 = &f.design.bist;
        let n = sol0.embeddings.len();
        'pairs: for a in 0..n {
            for b in a + 1..n {
                if sol0.embeddings[a].sa == sol0.embeddings[b].sa
                    && sol0.sessions[a] != sol0.sessions[b]
                {
                    let mut sol = sol0.clone();
                    sol.sessions[b] = sol.sessions[a];
                    expect_exactly(&lint(&f.unit_bist(&sol)), Code::B205SessionConflict);
                    found = true;
                    break 'pairs;
                }
            }
        }
    }
    assert!(found, "no fixture has two modules sharing an SA across sessions");
}

#[test]
fn fudged_overhead_is_b206() {
    let f = Fixture::ex1(FlowOptions::testable());
    let mut sol = f.design.bist.clone();
    sol.overhead = GateCount(sol.overhead.get() + 1);
    expect_exactly(&lint(&f.unit_bist(&sol)), Code::B206OverheadMismatch);
}

#[test]
fn truncated_styles_are_b207_only() {
    let f = Fixture::ex1(FlowOptions::testable());
    let mut sol = f.design.bist.clone();
    sol.styles.pop();
    // The shape check short-circuits both BIST passes: nothing else may
    // index the malformed vectors.
    expect_exactly(&lint(&f.unit_bist(&sol)), Code::B207ShapeMismatch);
}

#[test]
fn downgraded_cbilbo_is_b208() {
    let mut found = false;
    for f in bist_fixtures() {
        let dp = &f.design.data_path;
        let sol0 = &f.design.bist;
        for m in dp.module_ids() {
            let e = sol0.embeddings[m.index()];
            let Some(c) = e.cbilbo_register() else {
                continue;
            };
            // The downgraded register must not serve a *different*
            // same-session module as its TPG, or B205 would also fire.
            let safe = sol0.embeddings.iter().enumerate().all(|(b, eb)| {
                b == m.index()
                    || sol0.sessions[b] != sol0.sessions[m.index()]
                    || !eb.tpg_registers().any(|t| t == c)
            });
            if !safe || !sol0.style(c).can_do_both_concurrently() {
                continue;
            }
            let mut sol = sol0.clone();
            sol.styles[c.index()] = BistStyle::Bilbo;
            fix_overhead(&mut sol, &f.opts.area);
            let report = lint(&f.unit_bist(&sol));
            // A BILBO still generates and analyzes separately, so the
            // role check (B204) stays silent; only the Lemma-2 audit's
            // concurrency requirement fires.
            expect_exactly(&report, Code::B208MissingForcedCbilbo);
            found = true;
            break;
        }
    }
    assert!(found, "no fixture demands a CBILBO (traditional ex1 should)");
}

#[test]
fn gratuitous_cbilbo_is_b209() {
    let mut found = false;
    for f in bist_fixtures() {
        let dp = &f.design.data_path;
        let sol0 = &f.design.bist;
        let predicted = forced_cbilbos(
            &f.bench.dfg,
            &f.design.module_assignment,
            f.design.register_assignment.classes(),
        );
        let demanded: BTreeSet<RegisterId> = sol0
            .embeddings
            .iter()
            .filter_map(|e| e.cbilbo_register())
            .collect();
        for r in dp.register_ids() {
            if demanded.contains(&r)
                || predicted.iter().any(|p| p.register == r.index())
                || sol0.style(r).can_do_both_concurrently()
            {
                continue;
            }
            let mut sol = sol0.clone();
            sol.styles[r.index()] = BistStyle::Cbilbo;
            fix_overhead(&mut sol, &f.opts.area);
            let report = lint(&f.unit_bist(&sol));
            expect_exactly(&report, Code::B209UnforcedCbilbo);
            assert_eq!(report.error_count(), 0, "B209 is a warning");
            assert_eq!(
                report.diagnostics()[0].severity,
                Severity::Warning
            );
            found = true;
            break;
        }
    }
    assert!(found, "no fixture admitted a B209 injection");
}
