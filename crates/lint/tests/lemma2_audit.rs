//! Property test: the `lemma2-audit` pass agrees with the Lemma-2 forcing
//! analysis in `lobist_alloc::cbilbo` on randomly generated allocations.
//!
//! For each random design that synthesizes, three facts must line up:
//!
//! * the shipped solution lints clean — in particular no `B208`/`B209`;
//! * wherever the solver emitted a concurrent TPG+SA embedding, the
//!   CBILBO it demands is in the set `forced_cbilbos` predicts for that
//!   module (when the prediction is non-empty — the audit and the lemma
//!   name the same registers);
//! * stripping the concurrency capability from any demanded CBILBO makes
//!   the audit report `B208` at exactly that register.

use std::collections::BTreeSet;

use lobist_alloc::baseline_regalloc::BaselineAlgorithm;
use lobist_alloc::cbilbo::forced_cbilbos;
use lobist_alloc::flow::{synthesize, Design, FlowError, FlowOptions, RegAllocStrategy};
use lobist_bist::{SolverConfig, SolverMode};
use lobist_datapath::area::{BistStyle, GateCount};
use lobist_datapath::RegisterId;
use lobist_dfg::modules::ModuleSet;
use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist_dfg::{Dfg, Schedule};
use lobist_lint::{lint, Code, LintUnit, Span};

fn audit(dfg: &Dfg, schedule: &Schedule, design: &Design, opts: &FlowOptions, tag: &str) -> bool {
    let unit = LintUnit::of_design(dfg, schedule, design, opts.lifetime_options, &opts.area);
    let report = lint(&unit);
    assert!(
        report.is_clean(),
        "{tag}: shipped design must lint clean:\n{}",
        report.render_text()
    );

    let classes = design.register_assignment.classes().to_vec();
    let predicted = forced_cbilbos(dfg, &design.module_assignment, &classes);

    let mut exercised = false;
    for (mi, e) in design.bist.embeddings.iter().enumerate() {
        let Some(c) = e.cbilbo_register() else {
            continue;
        };
        exercised = true;
        // Agreement: when the lemma makes a prediction for this module,
        // the solver's demanded CBILBO is one of the predicted registers.
        let predicted_here: BTreeSet<RegisterId> = predicted
            .iter()
            .filter(|f| f.module.index() == mi)
            .map(|f| RegisterId(f.register as u32))
            .collect();
        if !predicted_here.is_empty() {
            assert!(
                predicted_here.contains(&c),
                "{tag}: module {mi} demands CBILBO {c} outside the predicted set {predicted_here:?}"
            );
        }
        // Stripping the concurrency capability must trip the audit at
        // exactly that register.
        let mut sol = design.bist.clone();
        sol.styles[c.index()] = BistStyle::Bilbo;
        sol.overhead = GateCount(
            sol.styles
                .iter()
                .map(|&s| opts.area.style_extra(s).get())
                .sum(),
        );
        let broken = LintUnit {
            bist: Some(&sol),
            ..unit
        };
        let diags = lint(&broken);
        let hits: Vec<_> = diags
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::B208MissingForcedCbilbo)
            .collect();
        assert!(
            hits.iter().any(|d| d.span == Span::Register(c)),
            "{tag}: downgrading {c} did not trip B208:\n{}",
            diags.render_text()
        );
    }
    exercised
}

#[test]
fn lemma2_audit_agrees_with_core_cbilbo_on_random_allocations() {
    let cfg = RandomDfgConfig {
        num_ops: 12,
        num_inputs: 5,
        max_ops_per_step: 3,
        ..RandomDfgConfig::default()
    };
    let modules: ModuleSet = "3+,3-,3*,3&".parse().expect("valid");
    // Scan seeds until enough designs verify; see lemma_verification.rs
    // for why a fixed seed range would overfit the RNG stream. The
    // traditional left-edge allocator is included because it is the one
    // that actually produces forced CBILBOs to audit.
    let mut verified = 0;
    let mut with_cbilbo = 0;
    for seed in 0..400u64 {
        if verified >= 24 {
            break;
        }
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        for strategy in [
            RegAllocStrategy::Testable(Default::default()),
            RegAllocStrategy::Traditional(BaselineAlgorithm::LeftEdge),
        ] {
            let mut opts = FlowOptions::testable();
            opts.strategy = strategy;
            opts.solver = SolverConfig {
                mode: SolverMode::Greedy,
                ..Default::default()
            };
            match synthesize(&dfg, &schedule, &modules, &opts) {
                Ok(d) => {
                    if audit(&dfg, &schedule, &d, &opts, &format!("seed {seed}")) {
                        with_cbilbo += 1;
                    }
                    verified += 1;
                }
                Err(FlowError::Bist(_)) => {
                    // Legitimately untestable; the audit makes no claim.
                }
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
    }
    assert!(verified >= 24, "only {verified} random designs verified");
    assert!(
        with_cbilbo >= 1,
        "no random design demanded a CBILBO — the audit was never exercised"
    );
}
