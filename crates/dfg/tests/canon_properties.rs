//! Canonizer invariance properties over random scheduled DFGs: a
//! seeded isomorphic permutation never changes the canonical encoding,
//! the canonical form is a fixpoint, and distinct random designs
//! (almost) never collide.

use proptest::prelude::*;

use lobist_dfg::canon::{canonize, permute};
use lobist_dfg::parse::to_text;
use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn canon_of_permutation_equals_canon(seed in any::<u64>(), twist in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 14,
            num_inputs: 5,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let base = canonize(&dfg, &schedule);
        let (p_dfg, p_schedule) = permute(&dfg, &schedule, twist);
        let twin = canonize(&p_dfg, &p_schedule);
        prop_assert_eq!(&base.encoding, &twin.encoding, "seed {seed} twist {twist}");
        // Equal encodings mean literally the same canonical design.
        prop_assert_eq!(
            to_text(&base.dfg, &base.schedule),
            to_text(&twin.dfg, &twin.schedule)
        );
    }

    #[test]
    fn canonization_is_a_fixpoint_on_random_designs(seed in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 12,
            num_inputs: 4,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let c1 = canonize(&dfg, &schedule);
        let c2 = canonize(&c1.dfg, &c1.schedule);
        prop_assert_eq!(&c1.encoding, &c2.encoding);
        prop_assert_eq!(
            to_text(&c1.dfg, &c1.schedule),
            to_text(&c2.dfg, &c2.schedule)
        );
    }

    #[test]
    fn different_seeds_rarely_collide(a in any::<u64>(), b in any::<u64>()) {
        let b = if a == b { b.wrapping_add(1) } else { b };
        let cfg = RandomDfgConfig::default();
        let (da, sa) = random_scheduled_dfg(a, &cfg);
        let (db, sb) = random_scheduled_dfg(b, &cfg);
        let ca = canonize(&da, &sa);
        let cb = canonize(&db, &sb);
        // Colliding encodings must mean the designs really are
        // isomorphic — witnessed by identical canonical text.
        if ca.encoding == cb.encoding {
            prop_assert_eq!(
                to_text(&ca.dfg, &ca.schedule),
                to_text(&cb.dfg, &cb.schedule)
            );
        }
    }
}
