//! Parser robustness: arbitrary input never panics, and generated valid
//! programs round-trip exactly.

use proptest::prelude::*;

use lobist_dfg::parse::{parse_dfg, parse_unscheduled_dfg, to_text};
use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_text_never_panics(text in ".{0,400}") {
        let _ = parse_dfg(&text);
        let _ = parse_unscheduled_dfg(&text);
    }

    #[test]
    fn near_miss_programs_never_panic(
        name in "[a-z]{1,4}",
        op in prop::sample::select(vec!["+", "-", "*", "/", "&", "|", "^", "<", "?", "++"]),
        step in prop::sample::select(vec!["1", "0", "-3", "x", ""]),
        trailer in prop::sample::select(vec!["", "output y", "output", "input"]),
    ) {
        let text = format!("input a b\n{name} = a {op} b @ {step}\n{trailer}\n");
        let _ = parse_dfg(&text);
    }

    #[test]
    fn random_designs_round_trip(seed in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 12,
            num_inputs: 4,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let text = to_text(&dfg, &schedule);
        let (dfg2, schedule2) = parse_dfg(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(dfg2.num_ops(), dfg.num_ops());
        prop_assert_eq!(dfg2.num_vars(), dfg.num_vars());
        prop_assert_eq!(schedule2.as_slice(), schedule.as_slice());
        // Names and kinds survive.
        for op in dfg.op_ids() {
            let name = &dfg.var(dfg.op(op).out).name;
            let v2 = dfg2.var_by_name(name).expect("name survives");
            let op2 = dfg2.var(v2).producer.expect("still computed");
            prop_assert_eq!(dfg2.op(op2).kind, dfg.op(op).kind);
        }
        // And a second round trip is a fixpoint.
        let text2 = to_text(&dfg2, &schedule2);
        prop_assert_eq!(text, text2);
    }
}
