//! Fragment-extraction invariance properties over random scheduled
//! DFGs: canonical fragment keys never change under a seeded isomorphic
//! permutation or a uniform schedule shift, and the rebased whole-design
//! encoding collapses shifted twins onto one memo key — the two facts
//! the subcanon cache tier rests on.

use proptest::prelude::*;

use lobist_dfg::canon::{canonize, permute};
use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist_dfg::subcanon::{extract_fragments, rebase_encoding, ExtractOptions};
use lobist_dfg::{Dfg, Schedule};

/// Sorted multiset of non-bailed fragment keys — the registry's view of
/// a design.
fn fragment_keys(dfg: &Dfg, schedule: &Schedule) -> Vec<u128> {
    let (fragments, _) = extract_fragments(dfg, schedule, &ExtractOptions::default());
    let mut keys: Vec<u128> = fragments
        .iter()
        .filter(|f| !f.bailed)
        .map(|f| f.key)
        .collect();
    keys.sort_unstable();
    keys
}

fn shifted(dfg: &Dfg, schedule: &Schedule, k: u32) -> Schedule {
    let steps: Vec<u32> = schedule.as_slice().iter().map(|s| s + k).collect();
    Schedule::new(dfg, steps).expect("uniform shifts stay topological")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fragment_keys_survive_permutation(seed in any::<u64>(), twist in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 14,
            num_inputs: 5,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let base = fragment_keys(&dfg, &schedule);
        let (p_dfg, p_schedule) = permute(&dfg, &schedule, twist);
        let twin = fragment_keys(&p_dfg, &p_schedule);
        prop_assert_eq!(base, twin, "seed {} twist {}", seed, twist);
    }

    #[test]
    fn shifts_change_the_encoding_but_not_the_rebased_core(
        seed in any::<u64>(),
        k in 1u32..4,
    ) {
        let cfg = RandomDfgConfig {
            num_ops: 14,
            num_inputs: 5,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let base = canonize(&dfg, &schedule);
        let moved = canonize(&dfg, &shifted(&dfg, &schedule, k));
        // Absolute steps differ, so the whole-design keys differ...
        prop_assert_ne!(&base.encoding, &moved.encoding);
        // ...but the rebased encodings — the synthesis-core memo key —
        // coincide, as do the (already rebased) fragment keys.
        prop_assert_eq!(
            rebase_encoding(&base.encoding).expect("canonical encodings parse"),
            rebase_encoding(&moved.encoding).expect("canonical encodings parse"),
            "seed {} k {}", seed, k
        );
        prop_assert_eq!(
            fragment_keys(&dfg, &schedule),
            fragment_keys(&dfg, &shifted(&dfg, &schedule, k)),
            "seed {} k {}", seed, k
        );
    }
}
