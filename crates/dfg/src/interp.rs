//! Reference interpretation of a data flow graph.
//!
//! Evaluates the DFG as a pure function from primary-input values to
//! primary-output values, with wrapping fixed-width arithmetic. This is
//! the golden model the RTL data-path simulator is checked against.

use std::collections::HashMap;

use crate::dfg::Dfg;
use crate::types::{OpKind, Operand, VarId};

/// Masks `x` to `width` bits.
fn mask(x: u64, width: u32) -> u64 {
    if width >= 64 {
        x
    } else {
        x & ((1u64 << width) - 1)
    }
}

/// Applies a binary operation at the given bit width.
///
/// Semantics: wrapping add/sub/mul, bitwise logic, and `Lt` producing
/// 0/1. Division by zero yields the all-ones word (a common hardware
/// convention), and the multiplier keeps the low `width` bits.
pub fn apply(kind: OpKind, a: u64, b: u64, width: u32) -> u64 {
    let v = match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => a.checked_div(b).unwrap_or(u64::MAX),
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Lt => u64::from(a < b),
    };
    mask(v, width)
}

/// Errors from DFG interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A primary input was not supplied a value.
    MissingInput(VarId),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::MissingInput(v) => write!(f, "no value supplied for input {v}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Evaluates the whole DFG, returning the value of every variable.
///
/// # Errors
///
/// Returns [`InterpError::MissingInput`] if `inputs` lacks a primary
/// input.
pub fn interpret(
    dfg: &Dfg,
    inputs: &HashMap<VarId, u64>,
    width: u32,
) -> Result<Vec<u64>, InterpError> {
    let mut values = vec![0u64; dfg.num_vars()];
    for v in dfg.primary_inputs() {
        let x = inputs.get(&v).ok_or(InterpError::MissingInput(v))?;
        values[v.index()] = mask(*x, width);
    }
    for op in dfg.topo_order() {
        let info = dfg.op(op);
        let read = |o: Operand, values: &[u64]| -> u64 {
            match o {
                Operand::Var(v) => values[v.index()],
                Operand::Const(c) => mask(c as u64, width),
            }
        };
        let a = read(info.lhs, &values);
        let b = read(info.rhs, &values);
        values[info.out.index()] = apply(info.kind, a, b, width);
    }
    Ok(values)
}

/// Evaluates the DFG and returns just the primary outputs, keyed by
/// variable.
///
/// # Errors
///
/// As [`interpret`].
pub fn outputs(
    dfg: &Dfg,
    inputs: &HashMap<VarId, u64>,
    width: u32,
) -> Result<HashMap<VarId, u64>, InterpError> {
    let values = interpret(dfg, inputs, width)?;
    Ok(dfg
        .primary_outputs()
        .map(|v| (v, values[v.index()]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::dfg::DfgBuilder;

    #[test]
    fn apply_semantics() {
        assert_eq!(apply(OpKind::Add, 250, 10, 8), 4); // wraps at 8 bits
        assert_eq!(apply(OpKind::Sub, 3, 5, 8), 254);
        assert_eq!(apply(OpKind::Mul, 16, 16, 8), 0);
        assert_eq!(apply(OpKind::Div, 17, 5, 8), 3);
        assert_eq!(apply(OpKind::Div, 17, 0, 8), 255);
        assert_eq!(apply(OpKind::And, 0b1100, 0b1010, 8), 0b1000);
        assert_eq!(apply(OpKind::Or, 0b1100, 0b1010, 8), 0b1110);
        assert_eq!(apply(OpKind::Xor, 0b1100, 0b1010, 8), 0b0110);
        assert_eq!(apply(OpKind::Lt, 3, 5, 8), 1);
        assert_eq!(apply(OpKind::Lt, 5, 3, 8), 0);
    }

    #[test]
    fn interpret_small_expression() {
        // y = (a + b) * c at width 8.
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let s = b.op(OpKind::Add, "s", a.into(), bb.into());
        let y = b.op(OpKind::Mul, "y", s.into(), c.into());
        b.mark_output(y);
        let dfg = b.build().unwrap();
        let inputs: HashMap<VarId, u64> = [(a, 3), (bb, 4), (c, 5)].into_iter().collect();
        let out = outputs(&dfg, &inputs, 8).unwrap();
        assert_eq!(out[&y], 35);
    }

    #[test]
    fn missing_input_reported() {
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let y = b.op(OpKind::Add, "y", a.into(), 1i64.into());
        b.mark_output(y);
        let dfg = b.build().unwrap();
        let err = interpret(&dfg, &HashMap::new(), 8).unwrap_err();
        assert_eq!(err, InterpError::MissingInput(a));
    }

    #[test]
    fn paulin_iteration_matches_hand_computation() {
        let bench = benchmarks::paulin();
        let v = |n: &str| bench.dfg.var_by_name(n).unwrap();
        // x=2, u=3, dx=1, y=4, width 16:
        // t1=6, t2=3, xl=3, t3=18, t4=12, yl=7, t5=12, t6=3-18=-15 (wrap),
        // ul=t6-12=-27 (wrap).
        let inputs: HashMap<VarId, u64> =
            [(v("x"), 2), (v("u"), 3), (v("dx"), 1), (v("y"), 4)].into_iter().collect();
        let out = outputs(&bench.dfg, &inputs, 16).unwrap();
        assert_eq!(out[&v("xl")], 3);
        assert_eq!(out[&v("yl")], 7);
        assert_eq!(out[&v("ul")], (3u64.wrapping_sub(18).wrapping_sub(12)) & 0xFFFF);
    }

    #[test]
    fn constants_are_masked() {
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let y = b.op(OpKind::Add, "y", a.into(), 257i64.into());
        b.mark_output(y);
        let dfg = b.build().unwrap();
        let inputs: HashMap<VarId, u64> = [(a, 1)].into_iter().collect();
        let out = outputs(&dfg, &inputs, 8).unwrap();
        assert_eq!(out[&y], 2); // 257 masked to 1, plus 1
    }
}
