//! Force-directed scheduling (Paulin & Knight, 1989).
//!
//! The paper's Paulin benchmark originates from the force-directed
//! scheduling work it cites as \[15\]; this module provides that scheduler
//! so unscheduled designs can be brought into the allocation flow with
//! balanced resource usage rather than the greedy list schedule.
//!
//! The algorithm fixes one operation per iteration: for every
//! not-yet-fixed operation and every control step in its mobility window
//! (between its ASAP and ALAP times), it computes the *force* — the
//! change in the expected concurrency of its operation kind, plus the
//! implied forces on predecessors and successors whose windows shrink —
//! and commits the (operation, step) pair of minimum force. Balancing
//! expected concurrency minimizes the number of functional units needed
//! for the target latency.

use std::collections::HashMap;

use crate::dfg::Dfg;
use crate::schedule::Schedule;
use crate::scheduling::asap;
use crate::types::{OpId, OpKind};

/// Error: the requested latency is below the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTooSmall {
    /// The critical-path length (minimum feasible latency).
    pub critical_path: u32,
}

impl std::fmt::Display for LatencyTooSmall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency below the critical path ({} steps required)",
            self.critical_path
        )
    }
}

impl std::error::Error for LatencyTooSmall {}

/// Mobility windows under partial fixing.
#[derive(Debug, Clone)]
struct Windows {
    early: Vec<u32>,
    late: Vec<u32>,
}

impl Windows {
    fn width(&self, op: OpId) -> u32 {
        self.late[op.index()] - self.early[op.index()] + 1
    }
}

fn recompute_windows(dfg: &Dfg, latency: u32, fixed: &[Option<u32>]) -> Windows {
    let order = dfg.topo_order();
    let mut early = vec![1u32; dfg.num_ops()];
    for &op in &order {
        let ready = dfg
            .op(op)
            .input_vars()
            .filter_map(|v| dfg.var(v).producer)
            .map(|p| early[p.index()] + 1)
            .max()
            .unwrap_or(1);
        early[op.index()] = match fixed[op.index()] {
            Some(s) => s,
            None => ready,
        };
    }
    let mut late = vec![latency; dfg.num_ops()];
    for &op in order.iter().rev() {
        let bound = dfg
            .var(dfg.op(op).out)
            .consumers
            .iter()
            .map(|c| late[c.index()] - 1)
            .min()
            .unwrap_or(latency);
        late[op.index()] = match fixed[op.index()] {
            Some(s) => s,
            None => bound,
        };
    }
    Windows { early, late }
}

/// Distribution graphs: expected concurrency per kind per step.
fn distribution(dfg: &Dfg, latency: u32, w: &Windows) -> HashMap<OpKind, Vec<f64>> {
    let mut dg: HashMap<OpKind, Vec<f64>> = HashMap::new();
    for op in dfg.op_ids() {
        let kind = dfg.op(op).kind;
        let entry = dg.entry(kind).or_insert_with(|| vec![0.0; latency as usize + 1]);
        let width = w.width(op) as f64;
        for s in w.early[op.index()]..=w.late[op.index()] {
            entry[s as usize] += 1.0 / width;
        }
    }
    dg
}

/// Self force of placing `op` at `step` given the current distribution.
fn self_force(dfg: &Dfg, op: OpId, step: u32, w: &Windows, dg: &HashMap<OpKind, Vec<f64>>) -> f64 {
    let kind = dfg.op(op).kind;
    let d = &dg[&kind];
    let width = w.width(op) as f64;
    let mut force = 0.0;
    for s in w.early[op.index()]..=w.late[op.index()] {
        let x = if s == step { 1.0 } else { 0.0 };
        force += d[s as usize] * (x - 1.0 / width);
    }
    force
}

/// Total force of fixing `op` at `step`: self force plus the self forces
/// implied on every other operation whose window shrinks.
fn total_force(
    dfg: &Dfg,
    latency: u32,
    fixed: &[Option<u32>],
    w: &Windows,
    dg: &HashMap<OpKind, Vec<f64>>,
    op: OpId,
    step: u32,
) -> f64 {
    let mut force = self_force(dfg, op, step, w, dg);
    // Tentatively fix and see how neighbors' windows move.
    let mut trial: Vec<Option<u32>> = fixed.to_vec();
    trial[op.index()] = Some(step);
    let tw = recompute_windows(dfg, latency, &trial);
    for other in dfg.op_ids() {
        if other == op || fixed[other.index()].is_some() {
            continue;
        }
        let (e0, l0) = (w.early[other.index()], w.late[other.index()]);
        let (e1, l1) = (tw.early[other.index()], tw.late[other.index()]);
        if (e0, l0) == (e1, l1) {
            continue;
        }
        // Force change: expected distribution contribution difference.
        let kind = dfg.op(other).kind;
        let d = &dg[&kind];
        let w0 = (l0 - e0 + 1) as f64;
        let w1 = (l1 - e1 + 1) as f64;
        let mut before = 0.0;
        for s in e0..=l0 {
            before += d[s as usize] / w0;
        }
        let mut after = 0.0;
        for s in e1..=l1 {
            after += d[s as usize] / w1;
        }
        force += after - before;
    }
    force
}

/// Schedules `dfg` in at most `latency` control steps with force-directed
/// scheduling.
///
/// # Examples
///
/// ```
/// use lobist_dfg::benchmarks;
/// use lobist_dfg::fds::{force_directed_schedule, peak_usage};
/// use lobist_dfg::OpKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bench = benchmarks::paulin();
/// let schedule = force_directed_schedule(&bench.dfg, 4)?;
/// // The classic HAL result: two multipliers suffice at the critical path.
/// assert!(peak_usage(&bench.dfg, &schedule)[&OpKind::Mul] <= 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`LatencyTooSmall`] if `latency` is below the critical path.
pub fn force_directed_schedule(dfg: &Dfg, latency: u32) -> Result<Schedule, LatencyTooSmall> {
    force_directed_schedule_traced(dfg, latency).map(|(s, _)| s)
}

/// One committed scheduling decision: `(operation, step, force)`.
pub type FdsDecision = (OpId, u32, f64);

/// As [`force_directed_schedule`], also returning the decisions in the
/// order they were committed (for inspection and tests).
///
/// # Errors
///
/// Returns [`LatencyTooSmall`] if `latency` is below the critical path.
pub fn force_directed_schedule_traced(
    dfg: &Dfg,
    latency: u32,
) -> Result<(Schedule, Vec<FdsDecision>), LatencyTooSmall> {
    let critical = asap(dfg).max_step();
    if latency < critical {
        return Err(LatencyTooSmall {
            critical_path: critical,
        });
    }
    let mut trace: Vec<FdsDecision> = Vec::new();
    let mut fixed: Vec<Option<u32>> = vec![None; dfg.num_ops()];
    loop {
        let w = recompute_windows(dfg, latency, &fixed);
        // Ops with singleton windows are implicitly fixed.
        for op in dfg.op_ids() {
            if fixed[op.index()].is_none() && w.width(op) == 1 {
                fixed[op.index()] = Some(w.early[op.index()]);
            }
        }
        let w = recompute_windows(dfg, latency, &fixed);
        let dg = distribution(dfg, latency, &w);
        let mut best: Option<(f64, OpId, u32)> = None;
        for op in dfg.op_ids() {
            if fixed[op.index()].is_some() {
                continue;
            }
            for step in w.early[op.index()]..=w.late[op.index()] {
                let f = total_force(dfg, latency, &fixed, &w, &dg, op, step);
                let better = match best {
                    None => true,
                    Some((bf, bop, bstep)) => {
                        f < bf - 1e-12
                            || ((f - bf).abs() <= 1e-12 && (op.index(), step) < (bop.index(), bstep))
                    }
                };
                if better {
                    best = Some((f, op, step));
                }
            }
        }
        match best {
            Some((f, op, step)) => {
                fixed[op.index()] = Some(step);
                trace.push((op, step, f));
            }
            None => break,
        }
    }
    let steps: Vec<u32> = fixed.into_iter().map(|s| s.expect("all fixed")).collect();
    let schedule = Schedule::new(dfg, steps).expect("FDS respects dependencies by construction");
    Ok((schedule, trace))
}

/// The per-kind peak concurrency of a schedule: how many units of each
/// kind it needs.
pub fn peak_usage(dfg: &Dfg, schedule: &Schedule) -> HashMap<OpKind, usize> {
    let mut peak: HashMap<OpKind, usize> = HashMap::new();
    for step in 1..=schedule.max_step() {
        let mut counts: HashMap<OpKind, usize> = HashMap::new();
        for op in schedule.ops_in_step(step) {
            *counts.entry(dfg.op(op).kind).or_insert(0) += 1;
        }
        for (k, c) in counts {
            let e = peak.entry(k).or_insert(0);
            *e = (*e).max(c);
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn latency_below_critical_path_rejected() {
        let bench = benchmarks::paulin();
        let err = force_directed_schedule(&bench.dfg, 2).unwrap_err();
        assert_eq!(err.critical_path, 4);
        assert!(err.to_string().contains("4 steps"));
    }

    #[test]
    fn paulin_at_critical_latency_needs_two_multipliers() {
        // The classic FDS result on HAL: at the 4-step critical path the
        // five multiplications balance into at most two per step.
        let bench = benchmarks::paulin();
        let s = force_directed_schedule(&bench.dfg, 4).unwrap();
        assert_eq!(s.max_step(), 4);
        let peak = peak_usage(&bench.dfg, &s);
        assert!(peak[&OpKind::Mul] <= 2, "peak mults {}", peak[&OpKind::Mul]);
        assert!(peak[&OpKind::Add] <= 2);
    }

    #[test]
    fn relaxed_latency_never_increases_peaks() {
        // With more steps available, FDS spreads work out. (Like the
        // original heuristic, the one-step lookahead cannot always reach
        // the single-multiplier optimum at relaxed latencies — two
        // predecessors squeezed by one decision are penalized
        // individually, not pairwise — so the guarantee is monotonicity,
        // not optimality.)
        let bench = benchmarks::paulin();
        let tight = force_directed_schedule(&bench.dfg, 4).unwrap();
        let relaxed = force_directed_schedule(&bench.dfg, 7).unwrap();
        let pt = peak_usage(&bench.dfg, &tight);
        let pr = peak_usage(&bench.dfg, &relaxed);
        assert!(pr[&OpKind::Mul] <= pt[&OpKind::Mul]);
        assert!(pr[&OpKind::Mul] <= 2, "{pr:?}");
        assert_eq!(pr[&OpKind::Add], 1);
        assert_eq!(pr[&OpKind::Sub], 1);
    }

    #[test]
    fn trace_reports_committed_decisions() {
        let bench = benchmarks::paulin();
        let (s, trace) = force_directed_schedule_traced(&bench.dfg, 5).unwrap();
        for (op, step, _force) in &trace {
            assert_eq!(s.step(*op), *step);
        }
        // Every op is either in the trace or was window-forced.
        assert!(trace.len() <= bench.dfg.num_ops());
    }

    #[test]
    fn schedules_are_valid_across_benchmarks() {
        for bench in benchmarks::paper_suite() {
            let critical = asap(&bench.dfg).max_step();
            for extra in [0, 1, 3] {
                let s = force_directed_schedule(&bench.dfg, critical + extra)
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
                assert!(s.max_step() <= critical + extra, "{}", bench.name);
            }
        }
    }

    #[test]
    fn fds_never_needs_more_units_than_list_led_allocations() {
        // FDS at the list schedule's latency should need no more
        // multipliers than the benchmark's declared module set provides.
        let bench = benchmarks::paulin();
        let s = force_directed_schedule(&bench.dfg, bench.schedule.max_step()).unwrap();
        let peak = peak_usage(&bench.dfg, &s);
        use crate::modules::ModuleClass;
        for (kind, count) in peak {
            let available = bench.module_allocation.count(ModuleClass::Op(kind));
            assert!(
                count <= available.max(1),
                "{kind}: needs {count}, set has {available}"
            );
        }
    }
}
