//! Subgraph-level canonization: deterministic extraction of convex,
//! size-bounded DFG fragments plus canonical fragment keys.
//!
//! Whole-design canonization ([`crate::canon`]) only pays off when two
//! *entire* designs are isomorphic. Real workloads (the `lobist corpus`
//! FIR/IIR/matmul/diffeq sweeps) are instead full of repeated internal
//! kernels — FIR taps, MAC chains, unrolled loop bodies — that are
//! isomorphic to each other while the enclosing designs are not. This
//! module slices a scheduled DFG into small fragments and canonizes each
//! one with the PR 8 WL canonizer, so isomorphic kernels collide on the
//! same canonical fragment key within a design and across designs.
//!
//! ## Extraction rules
//!
//! One fragment window is seeded per operation. The window is the
//! operation's **ancestor cone restricted to a schedule-step window**:
//!
//! ```text
//!   frag(seed, w) = { op ∈ ancestors*(seed) : step(op) ≥ step(seed) − w }
//! ```
//!
//! Schedule steps strictly increase along data edges, so this set is
//! **convex**: for any `u, x ∈ frag` and any data path `u ⇝ v ⇝ x`, the
//! intermediate `v` is itself an ancestor of the seed with
//! `step(v) > step(u) ≥ step(seed) − w`, hence `v ∈ frag`. Convexity is
//! what makes a fragment a legal stand-alone scheduled DFG: no value
//! leaves the fragment and re-enters it.
//!
//! The window starts at [`ExtractOptions::window_steps`] and shrinks one
//! step at a time until the cone fits [`ExtractOptions::max_ops`]; at
//! `w = 1` the cone is at most the seed plus its two producers, so every
//! seed with an in-window producer yields a fragment. Single-op windows
//! are skipped as trivial. Windows with identical op sets (nested cones
//! from different seeds) are deduplicated before keying.
//!
//! Each surviving window is keyed **in place** by the same
//! Weisfeiler–Leman color-refinement discipline the whole-design
//! canonizer ([`crate::canon`]) uses — seed colors from (op kind,
//! window-rebased step, operand class, escape flag), then rounds of
//! hashing producer/consumer colors until stable — but *without* the
//! lexicographic tie-breaking pass: the [`Fragment::key`] is an FNV-1a
//! hash of the sorted final color multiset plus the boundary-port
//! signature. That makes the key invariant under renaming, declaration
//! reorder, and uniform schedule shifts (property-tested), at the cost
//! of completeness: two non-isomorphic fragments *can* collide. The key
//! feeds only the fragment registry and its counters — the synthesis
//! memo below keys on rebased whole-design encodings — so a collision
//! can at worst over-count a sighting, never corrupt a result. Skipping
//! the tie-break (and the sub-DFG rebuild a full canonization would
//! need) is what keeps extraction to single-digit percent of a
//! synthesis run; there is no leaf budget to exhaust, so
//! [`Fragment::bailed`] is reserved and currently always `false`.
//!
//! ## Rebased whole-design encodings
//!
//! [`rebase_encoding`] rewrites the schedule steps inside a canonical
//! encoding ([`crate::canon::CanonForm::encoding`]) so the earliest step
//! becomes 1. Two designs share a rebased encoding **iff** they are
//! isomorphic up to a uniform schedule shift — the refinement order is
//! step-major and shift-invariant, so the relabeling is unchanged and
//! only the absolute step bytes differ. Downstream synthesis consumes
//! the schedule purely through lifetime overlap structure, which a
//! uniform shift preserves, so rebased encodings are a sound memo key
//! for everything except the latency itself (see
//! `lobist_alloc::flowcache::FragmentTier`).

use std::collections::HashSet;

use crate::dfg::Dfg;
use crate::schedule::Schedule;
use crate::types::{OpId, Operand};

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv128(h: u128, bytes: &[u8]) -> u128 {
    let mut h = h;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv64(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Bounds on fragment extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractOptions {
    /// Maximum operations per fragment; windows larger than this shrink
    /// their step window until they fit.
    pub max_ops: usize,
    /// Initial schedule-step window height (`w` above).
    pub window_steps: u32,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_ops: 8,
            window_steps: 4,
        }
    }
}

/// Boundary-port signature of a fragment: how it connects to the rest of
/// the design. Already captured structurally by the canonical encoding;
/// kept separate for metrics and store records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundarySignature {
    /// External values feeding the fragment (fragment inputs).
    pub inputs: u32,
    /// Values produced inside and visible outside (fragment outputs).
    pub outputs: u32,
    /// Inline constant operands.
    pub consts: u32,
}

/// One extracted fragment of a scheduled DFG.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The seed operation the window was grown from (parent ids).
    pub seed: OpId,
    /// Member operations in (step, id) order (parent ids).
    pub ops: Vec<OpId>,
    /// FNV-1a-128 of the fragment's WL color multiset + boundary
    /// signature: invariant under renaming, reordering, and uniform
    /// schedule shifts.
    pub key: u128,
    /// Boundary-port signature.
    pub boundary: BoundarySignature,
    /// Reserved: the multiset hash has no tie-breaking budget to
    /// exhaust, so this is currently always `false`. Callers must still
    /// skip `bailed` fragments so a future exact keying scheme can
    /// reintroduce bailouts without breaking them.
    pub bailed: bool,
}

/// Counters from one extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Seeds visited (= operations in the design).
    pub seeds: u64,
    /// Windows that survived the size bound and dedup.
    pub windows: u64,
    /// Seeds dropped because their window was a single operation.
    pub trivial: u64,
    /// Fragments whose canonization bailed out.
    pub bailouts: u64,
}

/// Reusable buffers for one extraction pass: everything the per-window
/// walk and keying need, allocated once per design instead of once per
/// window (extraction runs on every fresh synthesis, so its constant
/// factors are the subcanon tier's whole miss-path overhead).
struct Scratch {
    /// Cone-walk visited stamps, one slot per design op.
    stamp: Vec<u32>,
    generation: u32,
    stack: Vec<OpId>,
    members: Vec<OpId>,
    /// Intra-window producer edges per member op (lhs, rhs slots).
    producers: Vec<[Option<usize>; 2]>,
    /// Intra-window consumer lists per member op.
    consumers: Vec<Vec<usize>>,
    color: Vec<u64>,
    next: Vec<u64>,
    sorted: Vec<u64>,
    /// (external var id, use count) pairs, linear-searched (windows
    /// hold at most `max_ops` ops, so a handful of externals).
    external_uses: Vec<(u32, u64)>,
}

impl Scratch {
    fn new(num_ops: usize) -> Self {
        Scratch {
            stamp: vec![0; num_ops],
            generation: 0,
            stack: Vec::new(),
            members: Vec::new(),
            producers: Vec::new(),
            consumers: Vec::new(),
            color: Vec::new(),
            next: Vec::new(),
            sorted: Vec::new(),
            external_uses: Vec::new(),
        }
    }

    /// The ancestor cone of `seed` restricted to steps ≥
    /// `step(seed) − w`, left in `self.members`; `false` if it exceeds
    /// `max_ops`.
    fn windowed_cone(
        &mut self,
        dfg: &Dfg,
        schedule: &Schedule,
        seed: OpId,
        w: u32,
        max_ops: usize,
    ) -> bool {
        let threshold = schedule.step(seed).saturating_sub(w);
        self.generation += 1;
        self.stack.clear();
        self.members.clear();
        self.stack.push(seed);
        self.stamp[seed.index()] = self.generation;
        while let Some(op) = self.stack.pop() {
            self.members.push(op);
            if self.members.len() > max_ops {
                return false;
            }
            for v in dfg.op(op).input_vars() {
                if let Some(p) = dfg.var(v).producer {
                    if schedule.step(p) >= threshold && self.stamp[p.index()] != self.generation {
                        self.stamp[p.index()] = self.generation;
                        self.stack.push(p);
                    }
                }
            }
        }
        true
    }
}

/// Extracts all deduplicated fragments of a scheduled DFG.
pub fn extract_fragments(
    dfg: &Dfg,
    schedule: &Schedule,
    opts: &ExtractOptions,
) -> (Vec<Fragment>, ExtractStats) {
    let mut stats = ExtractStats::default();
    let mut fragments = Vec::new();
    // Windows deduplicate by a hash of their member id set. A hash
    // collision could drop a distinct window, which would skew a
    // sighting counter but never a result; ids are deterministic, so
    // the outcome is identical run to run.
    let mut seen_windows: HashSet<u64> = HashSet::new();
    let max_ops = opts.max_ops.max(2);
    let mut scratch = Scratch::new(dfg.op_ids().count());
    for seed in dfg.op_ids() {
        stats.seeds += 1;
        let mut found = false;
        let mut w = opts.window_steps.max(1);
        loop {
            if scratch.windowed_cone(dfg, schedule, seed, w, max_ops) {
                found = true;
                break;
            }
            w -= 1;
            if w == 0 {
                break;
            }
        }
        if !found || scratch.members.len() < 2 {
            stats.trivial += 1;
            continue;
        }
        scratch
            .members
            .sort_unstable_by_key(|op| (schedule.step(*op), op.index()));
        let id_hash = scratch
            .members
            .iter()
            .fold(FNV64_OFFSET, |h, op| fnv64(h, op.index() as u64));
        if !seen_windows.insert(id_hash) {
            continue;
        }
        stats.windows += 1;
        let window = scratch.members.clone();
        let fragment = build_fragment(dfg, schedule, seed, window, &mut scratch);
        if fragment.bailed {
            stats.bailouts += 1;
        }
        fragments.push(fragment);
    }
    (fragments, stats)
}

/// Keys a window in place: WL color refinement over the member ops (no
/// sub-DFG rebuild, no tie-breaking), hashed as a sorted multiset.
fn build_fragment(
    dfg: &Dfg,
    schedule: &Schedule,
    seed: OpId,
    ops: Vec<OpId>,
    s: &mut Scratch,
) -> Fragment {
    let n = ops.len();
    // `ops` is (step, id)-sorted; windows are tiny (≤ max_ops), so
    // member lookups are linear scans rather than hash maps.
    let local = |op: OpId| ops.iter().position(|&m| m == op);
    let min_step = schedule.step(ops[0]);
    let mut boundary = BoundarySignature::default();
    s.producers.clear();
    s.producers.resize(n, [None, None]);
    s.consumers.iter_mut().for_each(Vec::clear);
    s.consumers.resize_with(n.max(s.consumers.len()), Vec::new);
    s.color.clear();
    s.external_uses.clear();
    for (i, &op) in ops.iter().enumerate() {
        let info = dfg.op(op);
        let mut seed_color = fnv64(FNV64_OFFSET, info.kind as u64);
        seed_color = fnv64(seed_color, u64::from(schedule.step(op) - min_step));
        for (slot, operand) in [info.lhs, info.rhs].into_iter().enumerate() {
            let class = match operand {
                Operand::Const(k) => {
                    boundary.consts += 1;
                    fnv64(0xC0_u64, k as u64)
                }
                // External operands keep a fixed class (their identity
                // is not shift/permutation-invariant); how often each
                // distinct external value feeds the window is captured
                // separately in `external_uses`.
                Operand::Var(v) => match dfg.var(v).producer.and_then(&local) {
                    Some(p) => {
                        s.producers[i][slot] = Some(p);
                        s.consumers[p].push(i);
                        0x1A7E_44A1 // intra-window edge; refined below
                    }
                    None => {
                        match s.external_uses.iter_mut().find(|(id, _)| *id == v.0) {
                            Some((_, uses)) => *uses += 1,
                            None => {
                                boundary.inputs += 1;
                                s.external_uses.push((v.0, 1));
                            }
                        }
                        0xE47E_44A1 // external value
                    }
                },
            };
            seed_color = fnv64(seed_color, class);
        }
        let out = dfg.var(info.out);
        let escapes = out.is_output || out.consumers.iter().any(|&c| local(c).is_none());
        if escapes {
            boundary.outputs += 1;
        }
        s.color.push(fnv64(seed_color, u64::from(escapes)));
    }
    // Refinement: each round folds in producer colors (port-ordered —
    // permutation never swaps operands) and the sorted consumer color
    // multiset. The *values* change every round, so convergence is
    // judged on the partition: stop once the number of distinct colors
    // stops growing (WL never merges classes) or every op is singled
    // out. At most n rounds either way.
    let mut classes = distinct_count(&s.color, &mut s.sorted);
    for _ in 0..n {
        if classes == n {
            break;
        }
        s.next.clear();
        for i in 0..n {
            let mut c = fnv64(s.color[i], 0x52_0417);
            for p in s.producers[i] {
                c = fnv64(c, p.map_or(0, |p| s.color[p]));
            }
            s.sorted.clear();
            s.sorted.extend(s.consumers[i].iter().map(|&u| s.color[u]));
            s.sorted.sort_unstable();
            for &u in &s.sorted {
                c = fnv64(c, u);
            }
            s.next.push(c);
        }
        let refined = distinct_count(&s.next, &mut s.sorted);
        std::mem::swap(&mut s.color, &mut s.next);
        if refined == classes {
            break;
        }
        classes = refined;
    }
    // The key hashes order-invariant views only: sorted final colors,
    // sorted external use counts, boundary counts, size.
    s.color.sort_unstable();
    s.sorted.clear();
    s.sorted
        .extend(s.external_uses.iter().map(|&(_, uses)| uses));
    s.sorted.sort_unstable();
    let mut key = fnv128(FNV_OFFSET, b"frag1");
    key = fnv128(key, &(n as u32).to_le_bytes());
    key = fnv128(key, &boundary.inputs.to_le_bytes());
    key = fnv128(key, &boundary.outputs.to_le_bytes());
    key = fnv128(key, &boundary.consts.to_le_bytes());
    for c in &s.color {
        key = fnv128(key, &c.to_le_bytes());
    }
    for u in &s.sorted {
        key = fnv128(key, &u.to_le_bytes());
    }
    Fragment {
        seed,
        key,
        boundary,
        bailed: false,
        ops,
    }
}

/// Number of distinct values in `vals` (`buf` is reused scratch).
fn distinct_count(vals: &[u64], buf: &mut Vec<u64>) -> usize {
    buf.clear();
    buf.extend_from_slice(vals);
    buf.sort_unstable();
    buf.dedup();
    buf.len()
}

/// Rewrites the schedule steps inside a canonical encoding so the
/// earliest step is 1. Returns `None` if the bytes do not parse as a
/// [`crate::canon::CanonForm::encoding`] (never the case for encodings
/// produced by this crate).
pub fn rebase_encoding(encoding: &[u8]) -> Option<Vec<u8>> {
    let step_positions = step_positions(encoding)?;
    let mut min_step = u32::MAX;
    for &pos in &step_positions {
        let step = u32::from_le_bytes(encoding[pos..pos + 4].try_into().ok()?);
        min_step = min_step.min(step);
    }
    let mut out = encoding.to_vec();
    if step_positions.is_empty() || min_step == 1 {
        return Some(out);
    }
    for &pos in &step_positions {
        let step = u32::from_le_bytes(encoding[pos..pos + 4].try_into().ok()?);
        out[pos..pos + 4].copy_from_slice(&(step - min_step + 1).to_le_bytes());
    }
    Some(out)
}

/// Byte offsets of every per-op schedule step inside a canonical
/// encoding, validating the layout along the way.
fn step_positions(encoding: &[u8]) -> Option<Vec<usize>> {
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let bytes = encoding.get(*pos..*pos + 4)?;
        *pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    };
    let mut pos = 0usize;
    let m = take_u32(&mut pos)? as usize;
    pos = pos.checked_add(m)?; // per-input is_output flags
    let n = take_u32(&mut pos)? as usize;
    if n > encoding.len() {
        return None;
    }
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        pos = pos.checked_add(1)?; // op kind
        positions.push(pos);
        take_u32(&mut pos)?; // step
        for _ in 0..2 {
            let tag = *encoding.get(pos)?;
            pos += 1;
            match tag {
                0 => pos = pos.checked_add(4)?, // canonical var id
                1 => pos = pos.checked_add(8)?, // inline constant
                _ => return None,
            }
        }
        pos = pos.checked_add(1)?; // is_output flag
    }
    if pos == encoding.len() {
        Some(positions)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonize, permute_scheduled};
    use crate::corpus::{generate, CorpusKind};
    use crate::scheduling::asap;
    use crate::{benchmarks, OpId};
    use std::collections::BTreeMap;

    fn fir(size: u32) -> (Dfg, Schedule) {
        let dfg = generate(CorpusKind::Fir, size, 7);
        let schedule = asap(&dfg);
        (dfg, schedule)
    }

    fn shifted(dfg: &Dfg, schedule: &Schedule, k: u32) -> Schedule {
        let steps: Vec<u32> = schedule.as_slice().iter().map(|s| s + k).collect();
        Schedule::new(dfg, steps).expect("uniform shifts stay topological")
    }

    #[test]
    fn fir_taps_repeat_within_one_design() {
        let (dfg, schedule) = fir(24);
        let (fragments, stats) = extract_fragments(&dfg, &schedule, &ExtractOptions::default());
        assert!(stats.windows >= 8, "expected many windows, got {stats:?}");
        assert_eq!(stats.windows as usize, fragments.len());
        let mut by_key: BTreeMap<u128, usize> = BTreeMap::new();
        for f in &fragments {
            *by_key.entry(f.key).or_default() += 1;
        }
        let repeats: usize = by_key.values().filter(|&&c| c > 1).count();
        assert!(
            repeats > 0,
            "FIR taps are isomorphic; some fragment key must repeat"
        );
    }

    #[test]
    fn windows_are_convex() {
        let (dfg, schedule) = fir(16);
        let (fragments, _) = extract_fragments(&dfg, &schedule, &ExtractOptions::default());
        for f in &fragments {
            let member: HashSet<OpId> = f.ops.iter().copied().collect();
            // ancestors-of-members ∩ descendants-of-members ⊆ members.
            let mut ancestors = HashSet::new();
            let mut stack: Vec<OpId> = f.ops.clone();
            while let Some(op) = stack.pop() {
                for v in dfg.op(op).input_vars() {
                    if let Some(p) = dfg.var(v).producer {
                        if ancestors.insert(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            let mut descendants = HashSet::new();
            let mut stack: Vec<OpId> = f.ops.clone();
            while let Some(op) = stack.pop() {
                for &c in &dfg.var(dfg.op(op).out).consumers {
                    if descendants.insert(c) {
                        stack.push(c);
                    }
                }
            }
            for op in dfg.op_ids() {
                if ancestors.contains(&op) && descendants.contains(&op) {
                    assert!(
                        member.contains(&op),
                        "op {} lies on a path between fragment members but is outside",
                        op.index()
                    );
                }
            }
        }
    }

    #[test]
    fn fragment_keys_survive_whole_design_permutation() {
        for (kind, size) in [(CorpusKind::Fir, 20), (CorpusKind::Matmul, 16)] {
            let dfg = generate(kind, size, 3);
            let schedule = asap(&dfg);
            let (twin, twin_schedule, _) = permute_scheduled(&dfg, &schedule, 0xD1CE);
            let opts = ExtractOptions::default();
            let (base, _) = extract_fragments(&dfg, &schedule, &opts);
            let (perm, _) = extract_fragments(&twin, &twin_schedule, &opts);
            let keys = |fs: &[Fragment]| {
                let mut ks: Vec<u128> = fs.iter().filter(|f| !f.bailed).map(|f| f.key).collect();
                ks.sort_unstable();
                ks
            };
            assert_eq!(keys(&base), keys(&perm), "{kind:?} fragment keys drifted");
        }
    }

    #[test]
    fn boundary_signatures_count_ports() {
        let (dfg, schedule) = fir(8);
        let (fragments, _) = extract_fragments(&dfg, &schedule, &ExtractOptions::default());
        for f in &fragments {
            assert!(f.boundary.inputs > 0, "fragments always import values");
            assert!(
                f.boundary.outputs > 0,
                "the seed's value escapes the window"
            );
        }
    }

    #[test]
    fn rebase_is_identity_on_asap_schedules() {
        let bench = benchmarks::ex1();
        let canon = canonize(&bench.dfg, &bench.schedule);
        let rebased = rebase_encoding(&canon.encoding).expect("well-formed encoding");
        assert_eq!(rebased, canon.encoding);
    }

    #[test]
    fn rebase_collapses_uniform_shifts() {
        let (dfg, schedule) = fir(12);
        let base = canonize(&dfg, &schedule);
        for k in [1u32, 3, 17] {
            let shifted_schedule = shifted(&dfg, &schedule, k);
            let moved = canonize(&dfg, &shifted_schedule);
            assert_ne!(
                base.encoding, moved.encoding,
                "absolute steps must differ at k={k}"
            );
            assert_eq!(
                rebase_encoding(&base.encoding).unwrap(),
                rebase_encoding(&moved.encoding).unwrap(),
                "rebased encodings must collide at k={k}"
            );
            assert_eq!(base.op_perm, moved.op_perm, "relabeling is shift-invariant");
            assert_eq!(base.var_perm, moved.var_perm);
        }
    }

    #[test]
    fn rebase_rejects_garbage() {
        assert!(rebase_encoding(&[1, 2, 3]).is_none());
        let (dfg, schedule) = fir(8);
        let mut truncated = canonize(&dfg, &schedule).encoding;
        truncated.pop();
        assert!(rebase_encoding(&truncated).is_none());
    }
}
