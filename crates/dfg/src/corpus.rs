//! Parametric scaling corpus: seeded generator families for benchmark
//! sweeps.
//!
//! Each family produces a well-formed, acyclic, *unscheduled* DFG whose
//! size is swept by a single parameter, so the CLI's `corpus` command
//! can emit size-graded instances (`lobist corpus --sizes 8,16,32`) and
//! drive them through `batch`. The generators are pure functions of
//! `(kind, size, seed)` — the seed only varies the inline coefficient
//! constants, never the graph shape — so a corpus is reproducible
//! byte-for-byte across machines.
//!
//! The four families stress different allocator shapes:
//!
//! * [`CorpusKind::Fir`] — a wide multiply–accumulate reduction (one
//!   long add chain over independent taps);
//! * [`CorpusKind::Iir`] — a serial feedback chain unrolled in time
//!   (critical path equals size; almost no step parallelism);
//! * [`CorpusKind::Matmul`] — dense square matrix product (maximum step
//!   parallelism, heavy operand reuse across dot products);
//! * [`CorpusKind::Diffeq`] — the Paulin differential-equation step
//!   unrolled over Euler iterations (the paper's mixed-kind workload,
//!   with subtractions).

use crate::dfg::{Dfg, DfgBuilder};
use crate::types::{OpKind, Operand, VarId};

/// One generator family of the scaling corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// `size`-tap finite-impulse-response filter: `y = Σ cᵢ·xᵢ` (even
    /// taps use a shared gain input for `cᵢ`).
    Fir,
    /// Order-`max(2, size)` unrolled infinite-impulse-response chain:
    /// `yₖ = cₖ·yₖ₋₁ + xₖ` (odd taps use a shared gain input for `cₖ`).
    Iir,
    /// Square matrix product with dimension `max(2, ⌊√size⌋)`.
    Matmul,
    /// `max(1, size/4)` unrolled Euler steps of the Paulin
    /// differential-equation body.
    Diffeq,
}

/// Every family, in the order `corpus` emits them.
pub const KINDS: [CorpusKind; 4] = [
    CorpusKind::Fir,
    CorpusKind::Iir,
    CorpusKind::Matmul,
    CorpusKind::Diffeq,
];

impl CorpusKind {
    /// The family's file-name stem (`fir`, `iir`, `matmul`, `diffeq`).
    pub fn name(self) -> &'static str {
        match self {
            CorpusKind::Fir => "fir",
            CorpusKind::Iir => "iir",
            CorpusKind::Matmul => "matmul",
            CorpusKind::Diffeq => "diffeq",
        }
    }

    /// The operation kinds instances of this family use — the module
    /// set driving a generated design must cover them.
    pub fn op_kinds(self) -> &'static [OpKind] {
        match self {
            CorpusKind::Diffeq => &[OpKind::Add, OpKind::Sub, OpKind::Mul],
            _ => &[OpKind::Add, OpKind::Mul],
        }
    }
}

/// The same splitmix64 step the simulator's pattern streams use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A small nonzero coefficient (2..=9): large enough to matter in the
/// interpreter, small enough to keep the text format tidy.
fn coeff(rng: &mut u64) -> Operand {
    Operand::Const(2 + (splitmix64(rng) % 8) as i64)
}

/// Generates one corpus instance. The graph shape is a pure function of
/// `(kind, size)`; `seed` selects the coefficient constants.
pub fn generate(kind: CorpusKind, size: u32, seed: u64) -> Dfg {
    let mut rng = seed ^ (kind.name().len() as u64) << 32 ^ u64::from(size);
    let mut b = DfgBuilder::new();
    match kind {
        CorpusKind::Fir => fir(&mut b, size.max(2), &mut rng),
        CorpusKind::Iir => iir(&mut b, size.max(2), &mut rng),
        CorpusKind::Matmul => {
            let mut dim = 2;
            while (dim + 1) * (dim + 1) <= size {
                dim += 1;
            }
            matmul(&mut b, dim as usize);
        }
        CorpusKind::Diffeq => diffeq(&mut b, (size / 4).max(1), &mut rng),
    }
    b.build().expect("corpus generators emit well-formed graphs")
}

fn fir(b: &mut DfgBuilder, taps: u32, rng: &mut u64) {
    // Every tap is consumed once and dies immediately, so the register
    // allocator is free to pack all of them into a single register —
    // which would feed both multiplier ports from that one register
    // (or a constant): no pair of distinct I-paths, hence untestable.
    // As in `iir`, even taps multiply by a shared gain *input* that
    // stays live across the whole schedule and therefore holds a
    // register of its own.
    let gain = b.input("g");
    let mut acc: Option<VarId> = None;
    for i in 0..taps {
        let x = b.input(&format!("x{i}"));
        let (l, r) = if i % 2 == 0 {
            (gain.into(), x.into())
        } else {
            (x.into(), coeff(rng))
        };
        let m = b.op(OpKind::Mul, &format!("m{i}"), l, r);
        acc = Some(match acc {
            None => m,
            Some(a) => b.op(OpKind::Add, &format!("s{i}"), a.into(), m.into()),
        });
    }
    b.mark_output(acc.expect("at least one tap"));
}

fn iir(b: &mut DfgBuilder, order: u32, rng: &mut u64) {
    // The serial chain packs every `y_k` into one register, so a chain
    // multiplying state only by constants would feed both multiplier
    // ports from that single register (or a constant) — no pair of
    // distinct I-paths, hence untestable. Alternating taps multiply by
    // a shared gain *input* instead, which stays live across the whole
    // chain and therefore holds a register of its own.
    let gain = b.input("g");
    let mut state = b.input("x0");
    for k in 1..=order {
        let x = b.input(&format!("x{k}"));
        let (l, r) = if k % 2 == 0 {
            (gain.into(), state.into())
        } else {
            (state.into(), coeff(rng))
        };
        let t = b.op(OpKind::Mul, &format!("t{k}"), l, r);
        state = b.op(OpKind::Add, &format!("y{k}"), t.into(), x.into());
    }
    b.mark_output(state);
}

#[allow(clippy::needless_range_loop)] // i/j/k indexing is the clearest matrix-product form
fn matmul(b: &mut DfgBuilder, dim: usize) {
    let a: Vec<Vec<_>> = (0..dim)
        .map(|i| (0..dim).map(|j| b.input(&format!("a{i}_{j}"))).collect())
        .collect();
    let bb: Vec<Vec<_>> = (0..dim)
        .map(|i| (0..dim).map(|j| b.input(&format!("b{i}_{j}"))).collect())
        .collect();
    for i in 0..dim {
        for j in 0..dim {
            let mut acc: Option<VarId> = None;
            for k in 0..dim {
                let m = b.op(
                    OpKind::Mul,
                    &format!("p{i}_{j}_{k}"),
                    a[i][k].into(),
                    bb[k][j].into(),
                );
                acc = Some(match acc {
                    None => m,
                    Some(s) => {
                        b.op(OpKind::Add, &format!("c{i}_{j}_{k}"), s.into(), m.into())
                    }
                });
            }
            b.mark_output(acc.expect("dim >= 2"));
        }
    }
}

fn diffeq(b: &mut DfgBuilder, steps: u32, rng: &mut u64) {
    let dx = b.input("dx");
    let mut x = b.input("x0");
    let mut y = b.input("y0");
    let mut u = b.input("u0");
    for k in 1..=steps {
        let c = coeff(rng);
        let t1 = b.op(OpKind::Mul, &format!("t1_{k}"), c, x.into());
        let t2 = b.op(OpKind::Mul, &format!("t2_{k}"), u.into(), dx.into());
        let xl = b.op(OpKind::Add, &format!("x{k}"), x.into(), dx.into());
        let t3 = b.op(OpKind::Mul, &format!("t3_{k}"), t1.into(), t2.into());
        let t4 = b.op(OpKind::Mul, &format!("t4_{k}"), c, y.into());
        let yl = b.op(OpKind::Add, &format!("y{k}"), y.into(), t2.into());
        let t5 = b.op(OpKind::Mul, &format!("t5_{k}"), t4.into(), dx.into());
        let t6 = b.op(OpKind::Sub, &format!("t6_{k}"), u.into(), t3.into());
        let ul = b.op(OpKind::Sub, &format!("u{k}"), t6.into(), t5.into());
        x = xl;
        y = yl;
        u = ul;
    }
    b.mark_output(x);
    b.mark_output(y);
    b.mark_output(u);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_unscheduled_dfg, to_text_unscheduled};

    #[test]
    fn every_family_round_trips_through_the_text_format() {
        for kind in KINDS {
            for size in [8, 16, 33] {
                let dfg = generate(kind, size, 1);
                assert!(dfg.num_ops() > 0, "{kind:?} n{size}");
                let text = to_text_unscheduled(&dfg);
                assert!(!text.contains('@'), "unscheduled text: {text}");
                let back = parse_unscheduled_dfg(&text)
                    .unwrap_or_else(|e| panic!("{kind:?} n{size}: {e}"));
                assert_eq!(back.num_ops(), dfg.num_ops());
                assert_eq!(to_text_unscheduled(&back), text, "{kind:?} n{size}");
            }
        }
    }

    #[test]
    fn instances_are_deterministic_and_size_graded() {
        for kind in KINDS {
            let a = to_text_unscheduled(&generate(kind, 16, 7));
            let b = to_text_unscheduled(&generate(kind, 16, 7));
            assert_eq!(a, b, "{kind:?} must be reproducible");
            let small = generate(kind, 8, 7).num_ops();
            let large = generate(kind, 32, 7).num_ops();
            assert!(large > small, "{kind:?}: {large} vs {small}");
        }
    }

    #[test]
    fn seeds_vary_coefficients_but_not_shape() {
        let a = generate(CorpusKind::Fir, 8, 1);
        let b = generate(CorpusKind::Fir, 8, 2);
        assert_eq!(a.num_ops(), b.num_ops());
        assert_ne!(
            to_text_unscheduled(&a),
            to_text_unscheduled(&b),
            "different seeds pick different coefficients"
        );
    }

    #[test]
    fn no_op_multiplies_a_variable_by_itself() {
        // `v * v` modules are untestable without repair; the corpus must
        // synthesize under the plain testable flow.
        for kind in KINDS {
            let dfg = generate(kind, 16, 3);
            for op in dfg.op_ids() {
                let info = dfg.op(op);
                if let (Some(l), Some(r)) = (info.lhs.var(), info.rhs.var()) {
                    assert_ne!(l, r, "{kind:?}: {}", dfg.var(info.out).name);
                }
            }
        }
    }

    #[test]
    fn op_kinds_cover_every_instance() {
        for kind in KINDS {
            let dfg = generate(kind, 16, 3);
            for op in dfg.op_ids() {
                assert!(
                    kind.op_kinds().contains(&dfg.op(op).kind),
                    "{kind:?} uses undeclared {}",
                    dfg.op(op).kind
                );
            }
        }
    }
}
