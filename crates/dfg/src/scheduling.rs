//! ASAP, ALAP and resource-constrained list scheduling.
//!
//! The paper assumes a schedule is given; these standard schedulers make
//! the library usable end-to-end from an unscheduled DFG and feed the
//! random-design experiments. All operations take one control step.

use std::collections::HashMap;

use crate::dfg::Dfg;
use crate::modules::ModuleSet;
use crate::schedule::Schedule;
use crate::types::{OpId, OpKind};

/// As-soon-as-possible schedule: every operation runs one step after its
/// latest-producing predecessor (inputs are available from step 0).
pub fn asap(dfg: &Dfg) -> Schedule {
    let mut steps = vec![0u32; dfg.num_ops()];
    for op in dfg.topo_order() {
        let ready = dfg
            .op(op)
            .input_vars()
            .filter_map(|v| dfg.var(v).producer)
            .map(|p| steps[p.index()])
            .max()
            .unwrap_or(0);
        steps[op.index()] = ready + 1;
    }
    Schedule::new(dfg, steps).expect("ASAP schedules satisfy all dependencies")
}

/// As-late-as-possible schedule for a given overall `latency` (in control
/// steps). Returns `None` if `latency` is smaller than the critical path.
pub fn alap(dfg: &Dfg, latency: u32) -> Option<Schedule> {
    let critical = asap(dfg).max_step();
    if latency < critical {
        return None;
    }
    let mut steps = vec![latency; dfg.num_ops()];
    let order = dfg.topo_order();
    for &op in order.iter().rev() {
        // The earliest consumer of this op's result bounds it from above.
        let out = dfg.op(op).out;
        let bound = dfg
            .var(out)
            .consumers
            .iter()
            .map(|c| steps[c.index()] - 1)
            .min()
            .unwrap_or(latency);
        steps[op.index()] = bound;
    }
    Some(Schedule::new(dfg, steps).expect("ALAP with latency >= critical path is valid"))
}

/// Error from resource-constrained list scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListScheduleError {
    /// No module in the set can execute an operation of this kind.
    NoCapableModule {
        /// The unsupported operation kind.
        kind: OpKind,
    },
}

impl std::fmt::Display for ListScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListScheduleError::NoCapableModule { kind } => {
                write!(f, "no module in the set can execute `{kind}` operations")
            }
        }
    }
}

impl std::error::Error for ListScheduleError {}

/// Resource-constrained list scheduling: at every step, ready operations
/// are started in order of decreasing urgency (smallest ALAP mobility
/// first) as long as a capable module is free.
///
/// Dedicated units are claimed before ALUs so ALUs stay free for the
/// kinds nothing else can serve.
///
/// # Errors
///
/// Returns [`ListScheduleError::NoCapableModule`] if some operation kind
/// has no capable module at all.
pub fn list_schedule(dfg: &Dfg, modules: &ModuleSet) -> Result<Schedule, ListScheduleError> {
    for op in dfg.op_ids() {
        let kind = dfg.op(op).kind;
        if modules.supporting(kind).next().is_none() {
            return Err(ListScheduleError::NoCapableModule { kind });
        }
    }
    let asap_s = asap(dfg);
    let latency = asap_s.max_step();
    let alap_s = alap(dfg, latency).expect("latency equals critical path");
    let mobility: HashMap<OpId, u32> = dfg
        .op_ids()
        .map(|op| (op, alap_s.step(op) - asap_s.step(op)))
        .collect();

    let mut steps = vec![0u32; dfg.num_ops()];
    let mut done = vec![false; dfg.num_ops()];
    let mut remaining = dfg.num_ops();
    let mut step = 0u32;
    while remaining > 0 {
        step += 1;
        // A module is free until claimed this step.
        let mut free: Vec<bool> = vec![true; modules.len()];
        // Ready = all producing predecessors finished in earlier steps.
        let mut ready: Vec<OpId> = dfg
            .op_ids()
            .filter(|&op| !done[op.index()])
            .filter(|&op| {
                dfg.op(op)
                    .input_vars()
                    .filter_map(|v| dfg.var(v).producer)
                    .all(|p| done[p.index()] && steps[p.index()] < step)
            })
            .collect();
        ready.sort_by_key(|&op| (mobility[&op], op.index()));
        for op in ready {
            let kind = dfg.op(op).kind;
            // Prefer dedicated units; fall back to a free ALU.
            let choice = modules
                .supporting(kind)
                .filter(|&m| free[m])
                .min_by_key(|&m| match modules.class(m) {
                    crate::modules::ModuleClass::Op(_) => (0, m),
                    crate::modules::ModuleClass::Alu => (1, m),
                });
            if let Some(m) = choice {
                free[m] = false;
                steps[op.index()] = step;
                done[op.index()] = true;
                remaining -= 1;
            }
        }
        assert!(
            step <= (dfg.num_ops() as u32 + 1) * (latency + 1),
            "list scheduler failed to make progress"
        );
    }
    Ok(Schedule::new(dfg, steps).expect("list schedule respects dependencies by construction"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgBuilder;

    fn ladder() -> Dfg {
        // Four independent adds feeding two mults feeding one final add.
        let mut b = DfgBuilder::new();
        let ins: Vec<_> = (0..8).map(|i| b.input(&format!("x{i}"))).collect();
        let a0 = b.op(OpKind::Add, "a0", ins[0].into(), ins[1].into());
        let a1 = b.op(OpKind::Add, "a1", ins[2].into(), ins[3].into());
        let a2 = b.op(OpKind::Add, "a2", ins[4].into(), ins[5].into());
        let a3 = b.op(OpKind::Add, "a3", ins[6].into(), ins[7].into());
        let m0 = b.op(OpKind::Mul, "m0", a0.into(), a1.into());
        let m1 = b.op(OpKind::Mul, "m1", a2.into(), a3.into());
        let r = b.op(OpKind::Add, "r", m0.into(), m1.into());
        b.mark_output(r);
        b.build().unwrap()
    }

    #[test]
    fn asap_gives_critical_path() {
        let g = ladder();
        let s = asap(&g);
        assert_eq!(s.max_step(), 3);
        assert_eq!(s.step(g.op_by_name("a0_op").unwrap()), 1);
        assert_eq!(s.step(g.op_by_name("m0_op").unwrap()), 2);
        assert_eq!(s.step(g.op_by_name("r_op").unwrap()), 3);
    }

    #[test]
    fn alap_pushes_ops_late() {
        let g = ladder();
        let s = alap(&g, 5).unwrap();
        assert_eq!(s.step(g.op_by_name("r_op").unwrap()), 5);
        assert_eq!(s.step(g.op_by_name("m0_op").unwrap()), 4);
        assert_eq!(s.step(g.op_by_name("a0_op").unwrap()), 3);
    }

    #[test]
    fn alap_rejects_too_tight_latency() {
        let g = ladder();
        assert!(alap(&g, 2).is_none());
        assert!(alap(&g, 3).is_some());
    }

    #[test]
    fn list_schedule_respects_resources() {
        let g = ladder();
        let modules: ModuleSet = "1+,1*".parse().unwrap();
        let s = list_schedule(&g, &modules).unwrap();
        // Only one adder: the four adds occupy four distinct steps.
        for step in 1..=s.max_step() {
            let adds = s
                .ops_in_step(step)
                .into_iter()
                .filter(|&o| g.op(o).kind == OpKind::Add)
                .count();
            let muls = s
                .ops_in_step(step)
                .into_iter()
                .filter(|&o| g.op(o).kind == OpKind::Mul)
                .count();
            assert!(adds <= 1, "step {step} has {adds} adds");
            assert!(muls <= 1, "step {step} has {muls} muls");
        }
    }

    #[test]
    fn list_schedule_uses_parallel_resources() {
        let g = ladder();
        let wide: ModuleSet = "4+,2*".parse().unwrap();
        let s = list_schedule(&g, &wide).unwrap();
        assert_eq!(s.max_step(), 3, "ample resources recover the ASAP latency");
    }

    #[test]
    fn list_schedule_alu_fallback() {
        let g = ladder();
        let modules: ModuleSet = "1*,2ALU".parse().unwrap();
        let s = list_schedule(&g, &modules).unwrap();
        // 2 ALUs + 1 mult: adds go to ALUs.
        assert!(s.max_step() >= 3);
        for step in 1..=s.max_step() {
            assert!(s.ops_in_step(step).len() <= 3);
        }
    }

    #[test]
    fn list_schedule_missing_module_kind() {
        let g = ladder();
        let modules: ModuleSet = "2+".parse().unwrap();
        assert_eq!(
            list_schedule(&g, &modules).unwrap_err(),
            ListScheduleError::NoCapableModule { kind: OpKind::Mul }
        );
    }
}
