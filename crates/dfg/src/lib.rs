//! Scheduled data-flow graphs for high-level synthesis.
//!
//! The input to the DAC'95 allocation algorithms is a behavioural
//! description in the form of a **data flow graph** `G = (V, E)` — `V` the
//! operations, `E` the variables — together with a **schedule**
//! `S : V → {1, 2, 3, ...}` assigning each operation a control step.
//!
//! This crate provides:
//!
//! * [`Dfg`] and [`DfgBuilder`] — the graph itself, with named variables,
//!   binary operations, constant operands and primary inputs/outputs.
//! * [`Schedule`] plus ASAP/ALAP/resource-constrained list scheduling in
//!   [`scheduling`].
//! * [`lifetime`] — variable lifetime intervals and the variable conflict
//!   graph under configurable conventions (port-resident vs. registered
//!   primary inputs).
//! * [`modules`] — functional-unit resource descriptions such as
//!   `"1+,2*,1-"` used by the paper's Tables.
//! * [`benchmarks`] — the paper's five evaluation designs (ex1, ex2, two
//!   Tseng configurations, Paulin) plus larger extras for scaling studies.
//! * [`random`] — seeded random scheduled DFGs for property tests and
//!   benchmarks.
//! * [`dot`] — Graphviz export.
//!
//! # Examples
//!
//! ```
//! use lobist_dfg::{DfgBuilder, OpKind};
//!
//! let mut b = DfgBuilder::new();
//! let x = b.input("x");
//! let y = b.input("y");
//! let s = b.op(OpKind::Add, "sum", x.into(), y.into());
//! b.mark_output(s);
//! let dfg = b.build()?;
//! assert_eq!(dfg.num_ops(), 1);
//! assert_eq!(dfg.num_vars(), 3);
//! # Ok::<(), lobist_dfg::DfgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod canon;
pub mod corpus;
mod dfg;
pub mod dot;
pub mod fds;
pub mod interp;
pub mod lifetime;
pub mod modules;
pub mod parse;
pub mod random;
mod schedule;
pub mod scheduling;
pub mod subcanon;
mod types;

pub use dfg::{Dfg, DfgBuilder, DfgError};
pub use schedule::{Schedule, ScheduleError};
pub use types::{OpId, OpKind, Operand, VarId};
