//! A small text format for scheduled data flow graphs.
//!
//! One statement per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! input a b c d          # declare primary inputs
//! s1 = a + b @ 1         # op: result = lhs OP rhs @ control-step
//! s2 = c + d @ 2
//! y  = s1 * s2 @ 3
//! y  = y * 3 ...         # (constants allowed as operands: plain integers)
//! output y               # declare primary outputs
//! ```
//!
//! Operators: `+ - * / & | ^ <`. Operands are variable names or integer
//! constants. Every computed variable must be defined before use and
//! scheduled at a step after its operands' producers.
//!
//! # Examples
//!
//! ```
//! use lobist_dfg::parse::parse_dfg;
//!
//! let (dfg, schedule) = parse_dfg(
//!     "input a b\n\
//!      s = a + b @ 1\n\
//!      y = s * 3 @ 2\n\
//!      output y\n",
//! )?;
//! assert_eq!(dfg.num_ops(), 2);
//! assert_eq!(schedule.max_step(), 2);
//! # Ok::<(), lobist_dfg::parse::ParseDfgError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::dfg::{Dfg, DfgBuilder, DfgError};
use crate::schedule::{Schedule, ScheduleError};
use crate::types::{OpKind, Operand, VarId};

/// Errors from parsing the DFG text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDfgError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced operand is neither a declared variable nor a constant.
    UnknownOperand {
        /// 1-based line number.
        line: usize,
        /// The operand text.
        name: String,
    },
    /// The assembled graph failed validation.
    Graph(DfgError),
    /// The assembled schedule failed validation.
    Schedule(ScheduleError),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDfgError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseDfgError::UnknownOperand { line, name } => {
                write!(f, "line {line}: unknown operand `{name}`")
            }
            ParseDfgError::Graph(e) => write!(f, "invalid graph: {e}"),
            ParseDfgError::Schedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl std::error::Error for ParseDfgError {}

impl From<DfgError> for ParseDfgError {
    fn from(e: DfgError) -> Self {
        ParseDfgError::Graph(e)
    }
}
impl From<ScheduleError> for ParseDfgError {
    fn from(e: ScheduleError) -> Self {
        ParseDfgError::Schedule(e)
    }
}

/// Parses the text format into a validated DFG and schedule.
///
/// # Errors
///
/// Returns [`ParseDfgError`] for syntax errors, unknown operands, or a
/// graph/schedule that fails validation.
pub fn parse_dfg(text: &str) -> Result<(Dfg, Schedule), ParseDfgError> {
    let mut builder = DfgBuilder::new();
    let mut vars: HashMap<String, VarId> = HashMap::new();
    let mut steps: Vec<Option<u32>> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("input") {
            for name in rest.split_whitespace() {
                let v = builder.input(name);
                vars.insert(name.to_owned(), v);
            }
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("output") {
            outputs.extend(rest.split_whitespace().map(str::to_owned));
            continue;
        }
        // result = lhs OP rhs [@ step]
        let (lhs_txt, rhs_txt) = stmt.split_once('=').ok_or_else(|| ParseDfgError::Syntax {
            line,
            message: "expected `name = a OP b @ step`".to_owned(),
        })?;
        let result = lhs_txt.trim();
        if result.is_empty() || !result.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(ParseDfgError::Syntax {
                line,
                message: format!("bad result name `{result}`"),
            });
        }
        let (expr, step) = match rhs_txt.split_once('@') {
            Some((expr, step_txt)) => {
                let step: u32 = step_txt.trim().parse().map_err(|_| ParseDfgError::Syntax {
                    line,
                    message: format!("bad step `{}`", step_txt.trim()),
                })?;
                (expr, Some(step))
            }
            None => (rhs_txt, None),
        };
        let tokens: Vec<&str> = expr.split_whitespace().collect();
        let [a, op, b] = tokens.as_slice() else {
            return Err(ParseDfgError::Syntax {
                line,
                message: format!("expected `a OP b`, got `{}`", expr.trim()),
            });
        };
        let kind = op
            .chars()
            .next()
            .filter(|_| op.len() == 1)
            .and_then(OpKind::from_symbol)
            .ok_or_else(|| ParseDfgError::Syntax {
                line,
                message: format!("unknown operator `{op}`"),
            })?;
        let operand = |txt: &str| -> Result<Operand, ParseDfgError> {
            if let Ok(c) = txt.parse::<i64>() {
                return Ok(Operand::Const(c));
            }
            vars.get(txt)
                .map(|&v| Operand::Var(v))
                .ok_or_else(|| ParseDfgError::UnknownOperand {
                    line,
                    name: txt.to_owned(),
                })
        };
        let lhs = operand(a)?;
        let rhs = operand(b)?;
        let out = builder.op(kind, result, lhs, rhs);
        vars.insert(result.to_owned(), out);
        steps.push(step);
    }

    for name in &outputs {
        let v = vars.get(name).ok_or_else(|| ParseDfgError::UnknownOperand {
            line: 0,
            name: name.clone(),
        })?;
        builder.mark_output(*v);
    }
    let dfg = builder.build()?;
    let steps: Vec<u32> = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| ParseDfgError::Syntax {
                line: 0,
                message: format!(
                    "operation `{}` has no `@ step` (use parse_unscheduled_dfg for                      unscheduled designs)",
                    dfg.var(dfg.op(crate::OpId(i as u32)).out).name
                ),
            })
        })
        .collect::<Result<_, _>>()?;
    let schedule = Schedule::new(&dfg, steps)?;
    Ok((dfg, schedule))
}

/// Parses the text format ignoring any `@ step` annotations and
/// returning just the graph, for designs to be scheduled by
/// [`crate::scheduling`] or [`crate::fds`].
///
/// # Errors
///
/// As [`parse_dfg`], minus schedule validation.
pub fn parse_unscheduled_dfg(text: &str) -> Result<Dfg, ParseDfgError> {
    // Strip the step annotations, then add trivial ASAP steps so the
    // main parser's machinery can be reused... simpler: re-parse with a
    // dedicated pass that tolerates missing steps.
    let stripped: String = text
        .lines()
        .map(|l| match l.split_once('@') {
            Some((head, _)) if l.trim_start().starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') => head.to_owned(),
            _ => l.to_owned(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    parse_dfg_graph_only(&stripped)
}

fn parse_dfg_graph_only(text: &str) -> Result<Dfg, ParseDfgError> {
    // Reuse parse_dfg by assigning sequential steps (one op per step is
    // always dependency-valid for a builder-ordered program where
    // operands are defined before use).
    let mut rebuilt = String::new();
    let mut next_step = 1u32;
    for line in text.lines() {
        let stmt = line.split('#').next().unwrap_or("").trim();
        if stmt.contains('=') && !stmt.contains('@') {
            rebuilt.push_str(&format!("{stmt} @ {next_step}\n"));
            next_step += 1;
        } else {
            rebuilt.push_str(line);
            rebuilt.push('\n');
        }
    }
    parse_dfg(&rebuilt).map(|(dfg, _)| dfg)
}

/// Renders a DFG into the text format *without* `@ step` annotations
/// (round-trips with [`parse_unscheduled_dfg`]). Builder-ordered
/// programs define every operand before use, which is all the
/// unscheduled parser requires.
pub fn to_text_unscheduled(dfg: &Dfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let inputs: Vec<&str> = dfg
        .primary_inputs()
        .map(|v| dfg.var(v).name.as_str())
        .collect();
    if !inputs.is_empty() {
        let _ = writeln!(out, "input {}", inputs.join(" "));
    }
    for op in dfg.op_ids() {
        let info = dfg.op(op);
        let fmt_operand = |o: Operand| -> String {
            match o {
                Operand::Var(v) => dfg.var(v).name.clone(),
                Operand::Const(c) => c.to_string(),
            }
        };
        let _ = writeln!(
            out,
            "{} = {} {} {}",
            dfg.var(info.out).name,
            fmt_operand(info.lhs),
            info.kind,
            fmt_operand(info.rhs),
        );
    }
    let outputs: Vec<&str> = dfg
        .primary_outputs()
        .map(|v| dfg.var(v).name.as_str())
        .collect();
    if !outputs.is_empty() {
        let _ = writeln!(out, "output {}", outputs.join(" "));
    }
    out
}

/// Renders a scheduled DFG back into the text format (round-trips with
/// [`parse_dfg`] up to whitespace).
pub fn to_text(dfg: &Dfg, schedule: &Schedule) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let inputs: Vec<&str> = dfg
        .primary_inputs()
        .map(|v| dfg.var(v).name.as_str())
        .collect();
    if !inputs.is_empty() {
        let _ = writeln!(out, "input {}", inputs.join(" "));
    }
    for op in dfg.op_ids() {
        let info = dfg.op(op);
        let fmt_operand = |o: Operand| -> String {
            match o {
                Operand::Var(v) => dfg.var(v).name.clone(),
                Operand::Const(c) => c.to_string(),
            }
        };
        let _ = writeln!(
            out,
            "{} = {} {} {} @ {}",
            dfg.var(info.out).name,
            fmt_operand(info.lhs),
            info.kind,
            fmt_operand(info.rhs),
            schedule.step(op)
        );
    }
    let outputs: Vec<&str> = dfg
        .primary_outputs()
        .map(|v| dfg.var(v).name.as_str())
        .collect();
    if !outputs.is_empty() {
        let _ = writeln!(out, "output {}", outputs.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn parse_simple_program() {
        let (dfg, schedule) = parse_dfg(
            "# a comment\n\
             input a b c\n\
             s = a + b @ 1\n\
             t = s * c @ 2   # trailing comment\n\
             u = t - 1 @ 3\n\
             output u\n",
        )
        .unwrap();
        assert_eq!(dfg.num_ops(), 3);
        assert_eq!(schedule.max_step(), 3);
        assert_eq!(dfg.primary_outputs().count(), 1);
        let u = dfg.var_by_name("u").unwrap();
        assert!(dfg.var(u).is_output);
    }

    #[test]
    fn constants_parse_as_operands() {
        let (dfg, _) = parse_dfg("input x\ny = x * 3 @ 1\noutput y\n").unwrap();
        assert_eq!(dfg.num_vars(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_dfg("input a\nbogus line here\n").unwrap_err();
        assert!(matches!(err, ParseDfgError::Syntax { line: 2, .. }), "{err}");
        let err = parse_dfg("input a\ny = a ? a @ 1\noutput y\n").unwrap_err();
        assert!(err.to_string().contains("unknown operator"));
        let err = parse_dfg("input a\ny = a + b @ 1\noutput y\n").unwrap_err();
        assert!(matches!(err, ParseDfgError::UnknownOperand { .. }));
        let err = parse_dfg("input a\ny = a + a @ zero\noutput y\n").unwrap_err();
        assert!(err.to_string().contains("bad step"));
    }

    #[test]
    fn schedule_violations_reported() {
        let err = parse_dfg(
            "input a b\ns = a + b @ 2\ny = s + a @ 1\noutput y\n",
        )
        .unwrap_err();
        assert!(matches!(err, ParseDfgError::Schedule(_)));
    }

    #[test]
    fn dead_variables_reported() {
        let err = parse_dfg("input a b\ns = a + b @ 1\n").unwrap_err();
        assert!(matches!(err, ParseDfgError::Graph(_)));
    }

    #[test]
    fn unscheduled_designs_parse() {
        let dfg = parse_unscheduled_dfg(
            "input a b c\ns = a + b\nt = s * c\noutput t\n",
        )
        .unwrap();
        assert_eq!(dfg.num_ops(), 2);
        // Mixed annotations are tolerated (steps ignored).
        let dfg2 = parse_unscheduled_dfg(
            "input a b c\ns = a + b @ 9\nt = s * c\noutput t\n",
        )
        .unwrap();
        assert_eq!(dfg2.num_ops(), 2);
    }

    #[test]
    fn scheduled_parse_requires_steps() {
        let err = parse_dfg("input a b\ns = a + b\noutput s\n").unwrap_err();
        assert!(err.to_string().contains("no `@ step`"), "{err}");
    }

    #[test]
    fn round_trip_paper_benchmarks() {
        for bench in benchmarks::paper_suite() {
            let text = to_text(&bench.dfg, &bench.schedule);
            let (dfg2, schedule2) = parse_dfg(&text).unwrap_or_else(|e| {
                panic!("{}: {e}\n{text}", bench.name);
            });
            assert_eq!(dfg2.num_ops(), bench.dfg.num_ops(), "{}", bench.name);
            assert_eq!(dfg2.num_vars(), bench.dfg.num_vars(), "{}", bench.name);
            assert_eq!(schedule2.max_step(), bench.schedule.max_step());
            // Same op kinds per step.
            for step in 1..=schedule2.max_step() {
                let kinds = |dfg: &Dfg, s: &Schedule| {
                    let mut ks: Vec<OpKind> =
                        s.ops_in_step(step).iter().map(|&o| dfg.op(o).kind).collect();
                    ks.sort();
                    ks
                };
                assert_eq!(
                    kinds(&dfg2, &schedule2),
                    kinds(&bench.dfg, &bench.schedule),
                    "{} step {step}",
                    bench.name
                );
            }
        }
    }
}
