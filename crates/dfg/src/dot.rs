//! Graphviz (DOT) export of scheduled data flow graphs.

use std::fmt::Write as _;

use crate::dfg::Dfg;
use crate::schedule::Schedule;
use crate::types::Operand;

/// Renders a scheduled DFG as a Graphviz digraph, with operations grouped
/// into one rank per control step (mirroring the paper's Fig. 2 layout).
///
/// # Examples
///
/// ```
/// use lobist_dfg::{benchmarks, dot};
///
/// let b = benchmarks::ex1();
/// let text = dot::to_dot(&b.dfg, &b.schedule);
/// assert!(text.starts_with("digraph"));
/// assert!(text.contains("mul1"));
/// ```
pub fn to_dot(dfg: &Dfg, schedule: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dfg {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    // Input variables as plain nodes.
    for v in dfg.primary_inputs() {
        let name = &dfg.var(v).name;
        let _ = writeln!(out, "  \"{name}\" [shape=plaintext];");
    }
    // Operations as circles labelled with their symbol, ranked by step.
    for step in 1..=schedule.max_step() {
        let ops = schedule.ops_in_step(step);
        if ops.is_empty() {
            continue;
        }
        let _ = write!(out, "  {{ rank=same;");
        for &op in &ops {
            let _ = write!(out, " \"{}\";", dfg.op(op).name);
        }
        let _ = writeln!(out, " }} // step {step}");
    }
    for op in dfg.op_ids() {
        let info = dfg.op(op);
        let _ = writeln!(
            out,
            "  \"{}\" [shape=circle, label=\"{}\"];",
            info.name,
            info.kind.symbol()
        );
    }
    // Edges: operands into ops, ops to their result variables (only shown
    // for results that are consumed elsewhere or outputs).
    for op in dfg.op_ids() {
        let info = dfg.op(op);
        for (slot, operand) in [("l", info.lhs), ("r", info.rhs)] {
            match operand {
                Operand::Var(v) => {
                    let vn = &dfg.var(v).name;
                    match dfg.var(v).producer {
                        Some(p) => {
                            let _ = writeln!(
                                out,
                                "  \"{}\" -> \"{}\" [label=\"{}\", taillabel=\"\"];",
                                dfg.op(p).name,
                                info.name,
                                vn
                            );
                        }
                        None => {
                            let _ = writeln!(out, "  \"{vn}\" -> \"{}\";", info.name);
                        }
                    }
                }
                Operand::Const(c) => {
                    let cid = format!("const_{}_{slot}", info.name);
                    let _ = writeln!(out, "  \"{cid}\" [shape=plaintext, label=\"{c}\"];");
                    let _ = writeln!(out, "  \"{cid}\" -> \"{}\";", info.name);
                }
            }
        }
    }
    // Output markers.
    for v in dfg.primary_outputs() {
        let name = &dfg.var(v).name;
        let sink = format!("out_{name}");
        let _ = writeln!(out, "  \"{sink}\" [shape=plaintext, label=\"{name}\"];");
        if let Some(p) = dfg.var(v).producer {
            let _ = writeln!(out, "  \"{}\" -> \"{sink}\";", dfg.op(p).name);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dot_contains_all_ops_and_inputs() {
        let b = benchmarks::ex1();
        let text = to_dot(&b.dfg, &b.schedule);
        for op in b.dfg.op_ids() {
            assert!(text.contains(&b.dfg.op(op).name));
        }
        for v in b.dfg.primary_inputs() {
            assert!(text.contains(&b.dfg.var(v).name));
        }
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn dot_renders_constants() {
        let b = benchmarks::paulin();
        let text = to_dot(&b.dfg, &b.schedule);
        assert!(text.contains("label=\"3\""));
    }

    #[test]
    fn dot_groups_ranks_by_step() {
        let b = benchmarks::ex1();
        let text = to_dot(&b.dfg, &b.schedule);
        assert!(text.contains("// step 1"));
        assert!(text.contains("// step 3"));
    }
}
