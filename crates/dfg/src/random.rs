//! Seeded random scheduled DFGs for property tests and scaling studies.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dfg::{Dfg, DfgBuilder};
use crate::schedule::Schedule;
use crate::types::{OpKind, VarId};

/// Parameters for random DFG generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// Number of operations to generate.
    pub num_ops: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Maximum operations per control step (controls schedule width).
    pub max_ops_per_step: usize,
    /// Restrict generated operation kinds to this set.
    pub kinds: &'static [OpKind],
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        Self {
            num_ops: 20,
            num_inputs: 6,
            max_ops_per_step: 3,
            kinds: &[OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::And],
        }
    }
}

/// Generates a random scheduled DFG.
///
/// Construction guarantees validity: each operation draws operands from
/// already-defined variables, every otherwise-unconsumed variable is
/// marked as a primary output, and the schedule packs operations greedily
/// into steps of at most `max_ops_per_step` while respecting
/// dependencies. The same `seed` always produces the same design.
///
/// # Panics
///
/// Panics if `num_inputs == 0`, `num_ops == 0` or `max_ops_per_step == 0`.
///
/// # Examples
///
/// ```
/// use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};
///
/// let (dfg, schedule) = random_scheduled_dfg(42, &RandomDfgConfig::default());
/// assert_eq!(dfg.num_ops(), 20);
/// assert!(schedule.max_step() >= 7); // 20 ops / 3 per step
/// ```
pub fn random_scheduled_dfg(seed: u64, cfg: &RandomDfgConfig) -> (Dfg, Schedule) {
    assert!(cfg.num_inputs > 0, "need at least one input");
    assert!(cfg.num_ops > 0, "need at least one op");
    assert!(cfg.max_ops_per_step > 0, "need positive step width");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new();
    let mut pool: Vec<VarId> = (0..cfg.num_inputs)
        .map(|i| b.input(&format!("in{i}")))
        .collect();
    let mut produced: Vec<VarId> = Vec::new();
    for i in 0..cfg.num_ops {
        let kind = *cfg.kinds.choose(&mut rng).expect("non-empty kind set");
        // Bias operand choice toward recent values for realistic chains.
        let pick = |rng: &mut StdRng, pool: &[VarId]| -> VarId {
            if pool.len() > 4 && rng.gen_bool(0.6) {
                pool[pool.len() - 1 - rng.gen_range(0..4usize)]
            } else {
                *pool.choose(rng).expect("non-empty pool")
            }
        };
        let lhs = pick(&mut rng, &pool);
        let rhs = pick(&mut rng, &pool);
        let out = b.op(kind, &format!("t{i}"), lhs.into(), rhs.into());
        pool.push(out);
        produced.push(out);
    }
    // Mark variables without consumers as outputs; the builder would
    // otherwise reject them as dead. Consumer sets are only available on a
    // built graph, so build an everything-is-an-output trial graph first
    // and use it to find the true sinks.
    let dfg = {
        let mut trial = b.clone();
        for &v in pool.iter() {
            trial.mark_output(v);
        }
        let g = trial.build().expect("all-output trial graph is valid");
        let mut final_b = b;
        for v in g.var_ids() {
            if g.var(v).consumers.is_empty() {
                final_b.mark_output(v);
            }
        }
        final_b.build().expect("random DFG with sink outputs is valid")
    };

    // Greedy dependency-respecting schedule with bounded width.
    let mut steps = vec![0u32; dfg.num_ops()];
    let mut width: Vec<usize> = vec![0];
    for op in dfg.topo_order() {
        let ready = dfg
            .op(op)
            .input_vars()
            .filter_map(|v| dfg.var(v).producer)
            .map(|p| steps[p.index()])
            .max()
            .unwrap_or(0);
        let mut s = (ready + 1) as usize;
        loop {
            if width.len() <= s {
                width.resize(s + 1, 0);
            }
            if width[s] < cfg.max_ops_per_step {
                width[s] += 1;
                steps[op.index()] = s as u32;
                break;
            }
            s += 1;
        }
    }
    let schedule = Schedule::new(&dfg, steps).expect("greedy schedule respects dependencies");
    (dfg, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::{LifetimeOptions, Lifetimes};
    use lobist_graph::chordal::is_chordal;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomDfgConfig::default();
        let (g1, s1) = random_scheduled_dfg(7, &cfg);
        let (g2, s2) = random_scheduled_dfg(7, &cfg);
        assert_eq!(g1, g2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomDfgConfig::default();
        let (g1, _) = random_scheduled_dfg(1, &cfg);
        let (g2, _) = random_scheduled_dfg(2, &cfg);
        assert_ne!(g1, g2);
    }

    #[test]
    fn respects_width_limit() {
        let cfg = RandomDfgConfig {
            num_ops: 30,
            max_ops_per_step: 2,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(3, &cfg);
        for step in 1..=schedule.max_step() {
            assert!(schedule.ops_in_step(step).len() <= 2);
        }
        assert_eq!(dfg.num_ops(), 30);
    }

    #[test]
    fn conflict_graphs_are_chordal_across_seeds() {
        let cfg = RandomDfgConfig::default();
        for seed in 0..10 {
            let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
            for opts in [LifetimeOptions::registered_inputs(), LifetimeOptions::port_inputs()] {
                let lt = Lifetimes::compute(&dfg, &schedule, opts);
                assert!(is_chordal(&lt.conflict_graph()), "seed {seed}");
            }
        }
    }

    #[test]
    fn every_variable_defined_and_used_or_output() {
        let (dfg, _) = random_scheduled_dfg(11, &RandomDfgConfig::default());
        for v in dfg.var_ids() {
            let info = dfg.var(v);
            assert!(!info.consumers.is_empty() || info.is_output);
        }
    }
}
