//! Variable lifetimes and the variable conflict graph.
//!
//! Two variables may share a register exactly when their lifetimes do not
//! overlap. Because the behavioural descriptions considered here are
//! straight-line (no mutual exclusion, no loops), the conflict graph is an
//! interval graph and minimum register allocation is a polynomial-time
//! coloring problem (Springer & Thomas).
//!
//! Conventions (see DESIGN.md):
//!
//! * A computed variable is born at its producer's control step and dies
//!   at its last consumer's step (half-open interval).
//! * A primary output stays live through `max_step + 1` so it can be
//!   sampled after the computation completes.
//! * Primary inputs either occupy registers — born one step before first
//!   use ("lazy" arrival) — or are *port-resident* and never allocated,
//!   selected by [`LifetimeOptions::inputs_in_registers`]. Both styles
//!   appear in the HLS-for-testability literature; the paper's `ex1`
//!   conflict graph registers its inputs while the Paulin comparison
//!   (Table III) matches the port-resident convention.

use lobist_graph::interval::{self, Interval};
use lobist_graph::UGraph;

use crate::dfg::Dfg;
use crate::schedule::Schedule;
use crate::types::VarId;

/// Conventions controlling which variables occupy registers and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeOptions {
    /// If `true`, primary inputs are stored in registers from one step
    /// before their first use; if `false` they are read directly from
    /// input ports and never allocated.
    pub inputs_in_registers: bool,
}

impl LifetimeOptions {
    /// Primary inputs occupy registers (the `ex1`/`ex2`/Tseng convention).
    pub fn registered_inputs() -> Self {
        Self {
            inputs_in_registers: true,
        }
    }

    /// Primary inputs are port-resident (the Paulin/Table III convention).
    pub fn port_inputs() -> Self {
        Self {
            inputs_in_registers: false,
        }
    }
}

impl Default for LifetimeOptions {
    fn default() -> Self {
        Self::registered_inputs()
    }
}

/// Lifetime intervals for every variable of a scheduled DFG, plus a dense
/// index over the variables that require registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifetimes {
    intervals: Vec<Option<Interval>>,
    reg_vars: Vec<VarId>,
    dense: Vec<Option<usize>>,
}

impl Lifetimes {
    /// Computes lifetimes for `dfg` under `schedule` and `opts`.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` was not built for `dfg` (length mismatch).
    pub fn compute(dfg: &Dfg, schedule: &Schedule, opts: LifetimeOptions) -> Self {
        assert_eq!(
            schedule.len(),
            dfg.num_ops(),
            "schedule does not match the DFG"
        );
        let smax = schedule.max_step();
        let mut intervals: Vec<Option<Interval>> = Vec::with_capacity(dfg.num_vars());
        for v in dfg.var_ids() {
            let info = dfg.var(v);
            let last_use = info
                .consumers
                .iter()
                .map(|&op| schedule.step(op))
                .max();
            let iv = match info.producer {
                Some(p) => {
                    let birth = schedule.step(p);
                    let death = if info.is_output {
                        smax + 1
                    } else {
                        last_use.expect("non-output variables have consumers (validated)")
                    };
                    Some(Interval::new(birth, death.max(birth)))
                }
                None => {
                    if opts.inputs_in_registers {
                        // An input with no consumers can only be a pass-through
                        // primary output (validated); it is live from step 0.
                        let first = info
                            .consumers
                            .iter()
                            .map(|&op| schedule.step(op))
                            .min()
                            .unwrap_or(1);
                        let death = if info.is_output {
                            smax + 1
                        } else {
                            last_use.expect("non-output inputs have consumers (validated)")
                        };
                        Some(Interval::new(first - 1, death.max(first - 1)))
                    } else {
                        None
                    }
                }
            };
            intervals.push(iv);
        }
        let mut reg_vars = Vec::new();
        let mut dense = vec![None; dfg.num_vars()];
        for v in dfg.var_ids() {
            if intervals[v.index()].is_some() {
                dense[v.index()] = Some(reg_vars.len());
                reg_vars.push(v);
            }
        }
        Self {
            intervals,
            reg_vars,
            dense,
        }
    }

    /// The lifetime of `v`, or `None` for port-resident inputs.
    pub fn interval(&self, v: VarId) -> Option<Interval> {
        self.intervals[v.index()]
    }

    /// Variables that occupy registers, in id order. Indices into this
    /// slice are the vertex numbers of [`conflict_graph`](Self::conflict_graph).
    pub fn reg_vars(&self) -> &[VarId] {
        &self.reg_vars
    }

    /// Dense index of `v` among register variables, if it has one.
    pub fn reg_index(&self, v: VarId) -> Option<usize> {
        self.dense[v.index()]
    }

    /// `true` if `u` and `v` cannot share a register.
    pub fn conflicts(&self, u: VarId, v: VarId) -> bool {
        match (self.interval(u), self.interval(v)) {
            (Some(a), Some(b)) => u != v && a.overlaps(&b),
            _ => false,
        }
    }

    /// The variable conflict graph over register variables (vertex `i`
    /// is `self.reg_vars()[i]`).
    pub fn conflict_graph(&self) -> UGraph {
        let spans: Vec<Interval> = self
            .reg_vars
            .iter()
            .map(|&v| self.intervals[v.index()].expect("reg vars have intervals"))
            .collect();
        interval::conflict_graph(&spans)
    }

    /// Minimum number of registers (the maximum number of simultaneously
    /// live register variables).
    pub fn min_registers(&self) -> usize {
        let spans: Vec<Interval> = self
            .reg_vars
            .iter()
            .map(|&v| self.intervals[v.index()].expect("reg vars have intervals"))
            .collect();
        interval::max_overlap(&spans)
    }

    /// The paper's `MCS` statistic per register variable: the size of the
    /// largest clique each variable belongs to, indexed like
    /// [`reg_vars`](Self::reg_vars).
    pub fn max_clique_sizes(&self) -> Vec<usize> {
        let spans: Vec<Interval> = self
            .reg_vars
            .iter()
            .map(|&v| self.intervals[v.index()].expect("reg vars have intervals"))
            .collect();
        interval::max_clique_sizes(&spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgBuilder;
    use crate::types::OpKind;

    /// d = (a + b) * c over three steps.
    fn small() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let s = b.op(OpKind::Add, "s", a.into(), bb.into());
        let d = b.op(OpKind::Mul, "d", s.into(), c.into());
        b.mark_output(d);
        let dfg = b.build().unwrap();
        let sched = Schedule::new(&dfg, vec![1, 2]).unwrap();
        (dfg, sched)
    }

    #[test]
    fn registered_inputs_get_intervals() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let a = dfg.var_by_name("a").unwrap();
        let c = dfg.var_by_name("c").unwrap();
        // a used at step 1 only: [0, 1). c used at step 2: [1, 2).
        assert_eq!(lt.interval(a), Some(Interval::new(0, 1)));
        assert_eq!(lt.interval(c), Some(Interval::new(1, 2)));
        assert_eq!(lt.reg_vars().len(), 5);
    }

    #[test]
    fn port_inputs_are_excluded() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::port_inputs());
        let a = dfg.var_by_name("a").unwrap();
        assert_eq!(lt.interval(a), None);
        assert_eq!(lt.reg_vars().len(), 2); // s and d
        assert_eq!(lt.reg_index(a), None);
    }

    #[test]
    fn computed_variable_lifetime() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let s = dfg.var_by_name("s").unwrap();
        // Born at step 1 (producer), dies at step 2 (only consumer).
        assert_eq!(lt.interval(s), Some(Interval::new(1, 2)));
    }

    #[test]
    fn outputs_persist_past_the_schedule() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let d = dfg.var_by_name("d").unwrap();
        assert_eq!(lt.interval(d), Some(Interval::new(2, 3))); // max_step+1 = 3
    }

    #[test]
    fn conflict_graph_and_min_registers() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let g = lt.conflict_graph();
        assert_eq!(g.len(), 5);
        // a and b overlap at [0,1); c and s overlap at [1,2).
        let idx = |name: &str| lt.reg_index(dfg.var_by_name(name).unwrap()).unwrap();
        assert!(g.has_edge(idx("a"), idx("b")));
        assert!(g.has_edge(idx("c"), idx("s")));
        assert!(!g.has_edge(idx("a"), idx("d")));
        assert_eq!(lt.min_registers(), 2);
    }

    #[test]
    fn conflicts_predicate_matches_graph() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let a = dfg.var_by_name("a").unwrap();
        let b = dfg.var_by_name("b").unwrap();
        let d = dfg.var_by_name("d").unwrap();
        assert!(lt.conflicts(a, b));
        assert!(!lt.conflicts(a, d));
        assert!(!lt.conflicts(a, a));
    }

    #[test]
    fn mcs_matches_conflict_graph_cliques() {
        let (dfg, sched) = small();
        let lt = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let mcs = lt.max_clique_sizes();
        assert_eq!(mcs.len(), lt.reg_vars().len());
        assert!(mcs.iter().all(|&m| (1..=2).contains(&m)));
    }

    #[test]
    fn port_inputs_reduce_register_pressure() {
        let (dfg, sched) = small();
        let with = Lifetimes::compute(&dfg, &sched, LifetimeOptions::registered_inputs());
        let without = Lifetimes::compute(&dfg, &sched, LifetimeOptions::port_inputs());
        assert!(without.min_registers() <= with.min_registers());
    }
}
