//! The paper's evaluation designs and larger synthetic extras.
//!
//! Five scheduled DFGs drive Tables I–III:
//!
//! * [`ex1`] — the running example of the paper's Fig. 2 (reconstructed;
//!   see DESIGN.md for the reconstruction constraints).
//! * [`ex2`] — a design in the style of Papachristou et al. (DAC'91),
//!   with the paper's module allocation `1/,2*,2+,1&` and 5 registers.
//! * [`tseng`] — the Tseng–Siewiorek benchmark; [`tseng1_modules`] and
//!   [`tseng2_modules`] give the two module allocations of Table I.
//! * [`paulin`] — the Paulin–Knight differential-equation solver (HAL),
//!   port-resident inputs, 4 registers.
//! * [`paulin_full`] — Paulin including the loop comparison, used by the
//!   SYNTEST-style baseline.
//!
//! Extras for scaling studies: [`fir`] and [`diffeq_unrolled`].

use crate::dfg::{Dfg, DfgBuilder};
use crate::lifetime::LifetimeOptions;
use crate::modules::ModuleSet;
use crate::schedule::Schedule;
use crate::scheduling;
use crate::types::OpKind;

/// A scheduled benchmark design with its module allocation and lifetime
/// conventions.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name used in tables (`"ex1"`, `"Paulin"`, ...).
    pub name: String,
    /// The data flow graph.
    pub dfg: Dfg,
    /// The control-step schedule.
    pub schedule: Schedule,
    /// Available functional units (the paper's "Module Assignment" column).
    pub module_allocation: ModuleSet,
    /// Register conventions for primary inputs.
    pub lifetime_options: LifetimeOptions,
    /// The minimum register count this encoding is known to admit
    /// (matching the paper's Table I).
    pub expected_min_registers: usize,
}

/// The paper's running example (Fig. 2): two additions on module `M1`,
/// two multiplications on `M2`, eight variables `a..h`, minimum three
/// registers.
///
/// Reconstruction (the original figure is unavailable):
///
/// ```text
/// step 1:  b := e * g          (mul1 on M2)
/// step 2:  d := a + b          (add1 on M1)
/// step 3:  f := c + d          (add2 on M1)
/// step 3:  h := c * e          (mul2 on M2)
/// ```
///
/// giving `I_M1 = {a,b,c,d}`, `O_M1 = {d,f}`, `I_M2 = {c,e,g}`,
/// `O_M2 = {b,h}` exactly as stated in the paper's Section III, and
/// admitting the paper's final testable assignment
/// `({c,f,a}, {d,g,b,h}, {e})`.
pub fn ex1() -> Benchmark {
    let mut b = DfgBuilder::new();
    let a = b.input("a");
    let c = b.input("c");
    let e = b.input("e");
    let g = b.input("g");
    let bb = b.op_named(OpKind::Mul, "mul1", "b", e.into(), g.into());
    let d = b.op_named(OpKind::Add, "add1", "d", a.into(), bb.into());
    let f = b.op_named(OpKind::Add, "add2", "f", c.into(), d.into());
    let h = b.op_named(OpKind::Mul, "mul2", "h", c.into(), e.into());
    b.mark_output(f);
    b.mark_output(h);
    let dfg = b.build().expect("ex1 is well-formed");
    let schedule = Schedule::new(&dfg, vec![1, 2, 3, 3]).expect("ex1 schedule is valid");
    Benchmark {
        name: "ex1".to_owned(),
        dfg,
        schedule,
        module_allocation: "1+,1*".parse().expect("valid module string"),
        lifetime_options: LifetimeOptions::registered_inputs(),
        expected_min_registers: 3,
    }
}

/// A design in the style of the Papachristou et al. DAC'91 example, sized
/// for the paper's Table I row: module allocation `1/,2*,2+,1&` and a
/// 5-register minimum.
///
/// ```text
/// step 1:  t1 := a * b ;  t2 := c * d
/// step 2:  t3 := t1 + t2 ;  t4 := e + g ;  t5 := t1 * c
/// step 3:  t6 := t3 / t4 ;  t7 := t5 * e
/// step 4:  t8 := t6 & t7
/// ```
pub fn ex2() -> Benchmark {
    let mut b = DfgBuilder::new();
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let g = b.input("g");
    let t1 = b.op_named(OpKind::Mul, "mul1", "t1", a.into(), bb.into());
    let t2 = b.op_named(OpKind::Mul, "mul2", "t2", c.into(), d.into());
    let t3 = b.op_named(OpKind::Add, "add1", "t3", t1.into(), t2.into());
    let t4 = b.op_named(OpKind::Add, "add2", "t4", e.into(), g.into());
    let t5 = b.op_named(OpKind::Mul, "mul3", "t5", t1.into(), c.into());
    let t6 = b.op_named(OpKind::Div, "div1", "t6", t3.into(), t4.into());
    let t7 = b.op_named(OpKind::Mul, "mul4", "t7", t5.into(), e.into());
    let t8 = b.op_named(OpKind::And, "and1", "t8", t6.into(), t7.into());
    b.mark_output(t8);
    let dfg = b.build().expect("ex2 is well-formed");
    let schedule =
        Schedule::new(&dfg, vec![1, 1, 2, 2, 2, 3, 3, 4]).expect("ex2 schedule is valid");
    Benchmark {
        name: "ex2".to_owned(),
        dfg,
        schedule,
        module_allocation: "1/,2*,2+,1&".parse().expect("valid module string"),
        lifetime_options: LifetimeOptions::registered_inputs(),
        expected_min_registers: 5,
    }
}

/// The Tseng–Siewiorek benchmark (canonicalized encoding) with a
/// 5-register minimum. Pair with [`tseng1_modules`] or [`tseng2_modules`]
/// for the paper's two configurations.
///
/// ```text
/// step 1:  t1 := a + b ;  t2 := c + d
/// step 2:  t3 := e & f ;  t4 := t1 | g
/// step 3:  t5 := t2 * t3 ;  t7 := t1 - t2
/// step 4:  t6 := t4 / t5
/// step 5:  t8 := t6 + t7
/// ```
pub fn tseng() -> Benchmark {
    let mut b = DfgBuilder::new();
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let f = b.input("f");
    let g = b.input("g");
    let t1 = b.op_named(OpKind::Add, "add1", "t1", a.into(), bb.into());
    let t2 = b.op_named(OpKind::Add, "add2", "t2", c.into(), d.into());
    let t3 = b.op_named(OpKind::And, "and1", "t3", e.into(), f.into());
    let t4 = b.op_named(OpKind::Or, "or1", "t4", t1.into(), g.into());
    let t5 = b.op_named(OpKind::Mul, "mul1", "t5", t2.into(), t3.into());
    let t7 = b.op_named(OpKind::Sub, "sub1", "t7", t1.into(), t2.into());
    let t6 = b.op_named(OpKind::Div, "div1", "t6", t4.into(), t5.into());
    let t8 = b.op_named(OpKind::Add, "add3", "t8", t6.into(), t7.into());
    b.mark_output(t8);
    let dfg = b.build().expect("tseng is well-formed");
    let schedule =
        Schedule::new(&dfg, vec![1, 1, 2, 2, 3, 3, 4, 5]).expect("tseng schedule is valid");
    Benchmark {
        name: "Tseng".to_owned(),
        dfg,
        schedule,
        module_allocation: tseng1_modules(),
        lifetime_options: LifetimeOptions::registered_inputs(),
        expected_min_registers: 5,
    }
}

/// Table I's `Tseng1` module allocation: `2+,1*,1-,1&,1|,1/`.
pub fn tseng1_modules() -> ModuleSet {
    "2+,1*,1-,1&,1|,1/".parse().expect("valid module string")
}

/// Table I's `Tseng2` module allocation: `1+,3ALU`.
pub fn tseng2_modules() -> ModuleSet {
    "1+,3ALU".parse().expect("valid module string")
}

/// The [`tseng`] benchmark configured with [`tseng2_modules`].
///
/// A different module allocation implies a different resource-driven
/// schedule: step 2 runs three ALU operations at once (`&`, `|`, `-`),
/// which is what motivates three ALUs. Register minimum stays at 5.
///
/// ```text
/// step 1:  t1 := a + b ;  t2 := c + d
/// step 2:  t3 := e & f ;  t4 := t1 | g ;  t7 := t1 - t2
/// step 3:  t5 := t2 * t3
/// step 4:  t6 := t4 / t5
/// step 5:  t8 := t6 + t7
/// ```
pub fn tseng2() -> Benchmark {
    let mut b = tseng();
    b.name = "Tseng2".to_owned();
    b.module_allocation = tseng2_modules();
    // Op order: add1, add2, and1, or1, mul1, sub1, div1, add3.
    b.schedule =
        Schedule::new(&b.dfg, vec![1, 1, 2, 2, 3, 2, 4, 5]).expect("tseng2 schedule is valid");
    b
}

/// The Paulin–Knight second-order differential-equation solver ("HAL"),
/// one loop iteration, common-subexpression-eliminated (5 multiplies),
/// scheduled in 4 steps on `1+,2*,1-`. Primary inputs are port-resident
/// (the Table III convention), yielding the paper's 4-register minimum.
///
/// ```text
/// step 1:  t1 := 3 * x ;  t2 := u * dx ;  xl := x + dx
/// step 2:  t3 := t1 * t2 ;  t4 := 3 * y ;  yl := y + t2
/// step 3:  t5 := t4 * dx ;  t6 := u - t3
/// step 4:  ul := t6 - t5
/// ```
pub fn paulin() -> Benchmark {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let u = b.input("u");
    let dx = b.input("dx");
    let y = b.input("y");
    let t1 = b.op_named(OpKind::Mul, "mul1", "t1", 3i64.into(), x.into());
    let t2 = b.op_named(OpKind::Mul, "mul2", "t2", u.into(), dx.into());
    let xl = b.op_named(OpKind::Add, "add1", "xl", x.into(), dx.into());
    let t3 = b.op_named(OpKind::Mul, "mul3", "t3", t1.into(), t2.into());
    let t4 = b.op_named(OpKind::Mul, "mul4", "t4", 3i64.into(), y.into());
    let yl = b.op_named(OpKind::Add, "add2", "yl", y.into(), t2.into());
    let t5 = b.op_named(OpKind::Mul, "mul5", "t5", t4.into(), dx.into());
    let t6 = b.op_named(OpKind::Sub, "sub1", "t6", u.into(), t3.into());
    let ul = b.op_named(OpKind::Sub, "sub2", "ul", t6.into(), t5.into());
    b.mark_output(xl);
    b.mark_output(yl);
    b.mark_output(ul);
    let dfg = b.build().expect("paulin is well-formed");
    let schedule =
        Schedule::new(&dfg, vec![1, 1, 1, 2, 2, 2, 3, 3, 4]).expect("paulin schedule is valid");
    Benchmark {
        name: "Paulin".to_owned(),
        dfg,
        schedule,
        module_allocation: "1+,2*,1-".parse().expect("valid module string"),
        lifetime_options: LifetimeOptions::port_inputs(),
        expected_min_registers: 4,
    }
}

/// [`paulin`] extended with the loop-bound comparison `c := xl < a`, the
/// variant the SYNTEST-style baseline synthesizes (its templates include
/// a `>`-capable module group).
pub fn paulin_full() -> Benchmark {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let u = b.input("u");
    let dx = b.input("dx");
    let y = b.input("y");
    let a = b.input("a");
    let t1 = b.op_named(OpKind::Mul, "mul1", "t1", 3i64.into(), x.into());
    let t2 = b.op_named(OpKind::Mul, "mul2", "t2", u.into(), dx.into());
    let xl = b.op_named(OpKind::Add, "add1", "xl", x.into(), dx.into());
    let t3 = b.op_named(OpKind::Mul, "mul3", "t3", t1.into(), t2.into());
    let t4 = b.op_named(OpKind::Mul, "mul4", "t4", 3i64.into(), y.into());
    let yl = b.op_named(OpKind::Add, "add2", "yl", y.into(), t2.into());
    let c = b.op_named(OpKind::Lt, "cmp1", "c", xl.into(), a.into());
    let t5 = b.op_named(OpKind::Mul, "mul5", "t5", t4.into(), dx.into());
    let t6 = b.op_named(OpKind::Sub, "sub1", "t6", u.into(), t3.into());
    let ul = b.op_named(OpKind::Sub, "sub2", "ul", t6.into(), t5.into());
    b.mark_output(xl);
    b.mark_output(yl);
    b.mark_output(ul);
    b.mark_output(c);
    let dfg = b.build().expect("paulin_full is well-formed");
    let schedule = Schedule::new(&dfg, vec![1, 1, 1, 2, 2, 2, 2, 3, 3, 4])
        .expect("paulin_full schedule is valid");
    Benchmark {
        name: "Paulin(full)".to_owned(),
        dfg,
        schedule,
        module_allocation: "1+,2*,1-,1<".parse().expect("valid module string"),
        lifetime_options: LifetimeOptions::port_inputs(),
        expected_min_registers: 5,
    }
}

/// An `n`-tap FIR filter `y = Σ cᵢ·xᵢ` with programmable coefficients
/// (each `cᵢ` is a primary input, as in a coefficient-memory filter):
/// `n` multiplies and an addition tree, list-scheduled on `2*,2+`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn fir(n: usize) -> Benchmark {
    assert!(n >= 2, "FIR needs at least two taps");
    let mut b = DfgBuilder::new();
    let xs: Vec<_> = (0..n).map(|i| b.input(&format!("x{i}"))).collect();
    let cs: Vec<_> = (0..n).map(|i| b.input(&format!("c{i}"))).collect();
    let mut layer: Vec<_> = xs
        .iter()
        .zip(&cs)
        .enumerate()
        .map(|(i, (&x, &c))| {
            b.op_named(OpKind::Mul, &format!("mul{i}"), &format!("p{i}"), x.into(), c.into())
        })
        .collect();
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                let s = b.op_named(
                    OpKind::Add,
                    &format!("add{level}_{i}"),
                    &format!("s{level}_{i}"),
                    pair[0].into(),
                    pair[1].into(),
                );
                next.push(s);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        level += 1;
    }
    b.mark_output(layer[0]);
    let dfg = b.build().expect("fir is well-formed");
    let modules: ModuleSet = "2*,2+".parse().expect("valid module string");
    let schedule = scheduling::list_schedule(&dfg, &modules).expect("modules cover FIR kinds");
    Benchmark {
        name: format!("FIR{n}"),
        dfg,
        schedule,
        module_allocation: modules,
        lifetime_options: LifetimeOptions::registered_inputs(),
        expected_min_registers: 0, // not pinned; used for scaling studies
    }
}

/// The Paulin differential-equation body unrolled `k` times (each
/// iteration feeding the next), list-scheduled on `1+,2*,1-`. Produces
/// progressively larger realistic DFGs for scaling experiments.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn diffeq_unrolled(k: usize) -> Benchmark {
    assert!(k >= 1, "need at least one iteration");
    let mut b = DfgBuilder::new();
    let mut x = b.input("x");
    let mut u = b.input("u");
    let mut y = b.input("y");
    let dx = b.input("dx");
    for i in 0..k {
        let t1 = b.op_named(OpKind::Mul, &format!("i{i}_mul1"), &format!("i{i}_t1"), 3i64.into(), x.into());
        let t2 = b.op_named(OpKind::Mul, &format!("i{i}_mul2"), &format!("i{i}_t2"), u.into(), dx.into());
        let xl = b.op_named(OpKind::Add, &format!("i{i}_add1"), &format!("i{i}_xl"), x.into(), dx.into());
        let t3 = b.op_named(OpKind::Mul, &format!("i{i}_mul3"), &format!("i{i}_t3"), t1.into(), t2.into());
        let t4 = b.op_named(OpKind::Mul, &format!("i{i}_mul4"), &format!("i{i}_t4"), 3i64.into(), y.into());
        let yl = b.op_named(OpKind::Add, &format!("i{i}_add2"), &format!("i{i}_yl"), y.into(), t2.into());
        let t5 = b.op_named(OpKind::Mul, &format!("i{i}_mul5"), &format!("i{i}_t5"), t4.into(), dx.into());
        let t6 = b.op_named(OpKind::Sub, &format!("i{i}_sub1"), &format!("i{i}_t6"), u.into(), t3.into());
        let ul = b.op_named(OpKind::Sub, &format!("i{i}_sub2"), &format!("i{i}_ul"), t6.into(), t5.into());
        x = xl;
        u = ul;
        y = yl;
    }
    b.mark_output(x);
    b.mark_output(u);
    b.mark_output(y);
    let dfg = b.build().expect("diffeq_unrolled is well-formed");
    let modules: ModuleSet = "1+,2*,1-".parse().expect("valid module string");
    let schedule = scheduling::list_schedule(&dfg, &modules).expect("modules cover all kinds");
    Benchmark {
        name: format!("DiffEq x{k}"),
        dfg,
        schedule,
        module_allocation: modules,
        lifetime_options: LifetimeOptions::port_inputs(),
        expected_min_registers: 0, // not pinned; used for scaling studies
    }
}

/// A cascade of `n` direct-form-I IIR biquad sections with programmable
/// coefficients: per section five multiplies and four additions
/// (`y = b0·x + b1·x1 + b2·x2 + a1·y1 + a2·y2`), the output feeding the
/// next section. List-scheduled on `2*,2+`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn iir_biquad_cascade(n: usize) -> Benchmark {
    assert!(n >= 1, "need at least one section");
    let mut b = DfgBuilder::new();
    let mut x = b.input("x");
    for s in 0..n {
        let x1 = b.input(&format!("s{s}_x1"));
        let x2 = b.input(&format!("s{s}_x2"));
        let y1 = b.input(&format!("s{s}_y1"));
        let y2 = b.input(&format!("s{s}_y2"));
        let coeff: Vec<_> = ["b0", "b1", "b2", "a1", "a2"]
            .iter()
            .map(|c| b.input(&format!("s{s}_{c}")))
            .collect();
        let p0 = b.op_named(OpKind::Mul, &format!("s{s}_m0"), &format!("s{s}_p0"), x.into(), coeff[0].into());
        let p1 = b.op_named(OpKind::Mul, &format!("s{s}_m1"), &format!("s{s}_p1"), x1.into(), coeff[1].into());
        let p2 = b.op_named(OpKind::Mul, &format!("s{s}_m2"), &format!("s{s}_p2"), x2.into(), coeff[2].into());
        let p3 = b.op_named(OpKind::Mul, &format!("s{s}_m3"), &format!("s{s}_p3"), y1.into(), coeff[3].into());
        let p4 = b.op_named(OpKind::Mul, &format!("s{s}_m4"), &format!("s{s}_p4"), y2.into(), coeff[4].into());
        let t0 = b.op_named(OpKind::Add, &format!("s{s}_a0"), &format!("s{s}_t0"), p0.into(), p1.into());
        let t1 = b.op_named(OpKind::Add, &format!("s{s}_a1x"), &format!("s{s}_t1"), p2.into(), p3.into());
        let t2 = b.op_named(OpKind::Add, &format!("s{s}_a2x"), &format!("s{s}_t2"), t0.into(), t1.into());
        let y = b.op_named(OpKind::Add, &format!("s{s}_a3"), &format!("s{s}_y"), t2.into(), p4.into());
        x = y;
    }
    b.mark_output(x);
    let dfg = b.build().expect("iir cascade is well-formed");
    let modules: ModuleSet = "2*,2+".parse().expect("valid module string");
    let schedule = scheduling::list_schedule(&dfg, &modules).expect("modules cover all kinds");
    Benchmark {
        name: format!("IIR x{n}"),
        dfg,
        schedule,
        module_allocation: modules,
        lifetime_options: LifetimeOptions::port_inputs(),
        expected_min_registers: 0, // not pinned; used for scaling studies
    }
}

/// An `n×n` matrix multiply (`C = A·B`): `n³` multiplies and `n²(n−1)`
/// additions over programmable inputs, list-scheduled on `2*,2+`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn matmul(n: usize) -> Benchmark {
    assert!(n >= 2, "need at least a 2x2 multiply");
    let mut b = DfgBuilder::new();
    let a: Vec<Vec<_>> = (0..n)
        .map(|i| (0..n).map(|j| b.input(&format!("a{i}{j}"))).collect())
        .collect();
    let bm: Vec<Vec<_>> = (0..n)
        .map(|i| (0..n).map(|j| b.input(&format!("b{i}{j}"))).collect())
        .collect();
    for (i, a_row) in a.iter().enumerate() {
        for j in 0..n {
            let mut acc: Option<crate::VarId> = None;
            for (k, bm_row) in bm.iter().enumerate() {
                let p = b.op_named(
                    OpKind::Mul,
                    &format!("m{i}{j}{k}"),
                    &format!("p{i}{j}{k}"),
                    a_row[k].into(),
                    bm_row[j].into(),
                );
                acc = Some(match acc {
                    None => p,
                    Some(prev) => b.op_named(
                        OpKind::Add,
                        &format!("s{i}{j}{k}"),
                        &format!("c{i}{j}{k}"),
                        prev.into(),
                        p.into(),
                    ),
                });
            }
            b.mark_output(acc.expect("n >= 2"));
        }
    }
    let dfg = b.build().expect("matmul is well-formed");
    let modules: ModuleSet = "2*,2+".parse().expect("valid module string");
    let schedule = scheduling::list_schedule(&dfg, &modules).expect("modules cover all kinds");
    Benchmark {
        name: format!("MatMul {n}x{n}"),
        dfg,
        schedule,
        module_allocation: modules,
        lifetime_options: LifetimeOptions::port_inputs(),
        expected_min_registers: 0, // not pinned; used for scaling studies
    }
}

/// All five paper benchmarks in Table I order: ex1, ex2, Tseng1, Tseng2,
/// Paulin.
pub fn paper_suite() -> Vec<Benchmark> {
    let mut t1 = tseng();
    t1.name = "Tseng1".to_owned();
    vec![ex1(), ex2(), t1, tseng2(), paulin()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::Lifetimes;
    use lobist_graph::chordal::is_chordal;
    use lobist_graph::count::count_colorings;

    fn min_regs(b: &Benchmark) -> usize {
        Lifetimes::compute(&b.dfg, &b.schedule, b.lifetime_options).min_registers()
    }

    #[test]
    fn register_minimums_match_table_one() {
        assert_eq!(min_regs(&ex1()), 3);
        assert_eq!(min_regs(&ex2()), 5);
        assert_eq!(min_regs(&tseng()), 5);
        assert_eq!(min_regs(&tseng2()), 5);
        assert_eq!(min_regs(&paulin()), 4);
    }

    #[test]
    fn ex1_matches_paper_structure() {
        let bench = ex1();
        let dfg = &bench.dfg;
        // I_M1 = {a, b, c, d}: operands of the two additions.
        let mut im1: Vec<String> = dfg
            .op_ids()
            .filter(|&o| dfg.op(o).kind == OpKind::Add)
            .flat_map(|o| dfg.op(o).input_vars())
            .map(|v| dfg.var(v).name.clone())
            .collect();
        im1.sort();
        im1.dedup();
        assert_eq!(im1, vec!["a", "b", "c", "d"]);
        // O_M1 = {d, f}: results of the two additions.
        let mut om1: Vec<String> = dfg
            .op_ids()
            .filter(|&o| dfg.op(o).kind == OpKind::Add)
            .map(|o| dfg.var(dfg.op(o).out).name.clone())
            .collect();
        om1.sort();
        assert_eq!(om1, vec!["d", "f"]);
    }

    #[test]
    fn ex1_final_testable_assignment_is_proper() {
        // The paper's worked example ends at ({c,f,a}, {d,g,b,h}, {e}).
        let bench = ex1();
        let lt = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
        let groups = [vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]];
        for group in &groups {
            for (i, n1) in group.iter().enumerate() {
                for n2 in &group[i + 1..] {
                    let u = bench.dfg.var_by_name(n1).unwrap();
                    let v = bench.dfg.var_by_name(n2).unwrap();
                    assert!(!lt.conflicts(u, v), "{n1} conflicts with {n2}");
                }
            }
        }
    }

    #[test]
    fn ex1_conflict_trace_facts() {
        let bench = ex1();
        let lt = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
        let v = |n: &str| bench.dfg.var_by_name(n).unwrap();
        // c and d conflict (the first two colored vertices get distinct
        // registers) and e conflicts with members of both partial
        // registers {c,f} and {d,g}.
        assert!(lt.conflicts(v("c"), v("d")));
        assert!(lt.conflicts(v("e"), v("c")) || lt.conflicts(v("e"), v("f")));
        assert!(lt.conflicts(v("e"), v("d")) || lt.conflicts(v("e"), v("g")));
    }

    #[test]
    fn ex1_assignment_count_is_close_to_paper() {
        // The paper reports 108 distinct assignments to three registers
        // for its exact figure; our reconstruction admits 144 (one
        // lifetime boundary cannot be recovered from the text). Pin the
        // count so the encoding stays stable.
        let bench = ex1();
        let lt = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
        let g = lt.conflict_graph();
        assert_eq!(count_colorings(&g, 3), 144);
    }

    #[test]
    fn all_conflict_graphs_are_interval_hence_chordal() {
        for b in paper_suite() {
            let lt = Lifetimes::compute(&b.dfg, &b.schedule, b.lifetime_options);
            assert!(is_chordal(&lt.conflict_graph()), "{} not chordal", b.name);
        }
    }

    #[test]
    fn module_allocations_cover_every_step() {
        // Each step's operations must be executable on the declared
        // module set (necessary condition for a valid module assignment).
        for b in paper_suite() {
            for step in 1..=b.schedule.max_step() {
                let ops = b.schedule.ops_in_step(step);
                // Greedy bipartite check: dedicated units first.
                let mut free: Vec<bool> = vec![true; b.module_allocation.len()];
                for &op in &ops {
                    let kind = b.dfg.op(op).kind;
                    let slot = b
                        .module_allocation
                        .supporting(kind)
                        .filter(|&m| free[m])
                        .min_by_key(|&m| match b.module_allocation.class(m) {
                            crate::modules::ModuleClass::Op(_) => 0,
                            crate::modules::ModuleClass::Alu => 1,
                        });
                    let m = slot.unwrap_or_else(|| {
                        panic!("{}: step {step} overcommits {kind}", b.name)
                    });
                    free[m] = false;
                }
            }
        }
    }

    #[test]
    fn paulin_full_has_comparison() {
        let b = paulin_full();
        assert!(b.dfg.op_ids().any(|o| b.dfg.op(o).kind == OpKind::Lt));
        assert_eq!(min_regs(&b), 5);
    }

    #[test]
    fn fir_scales() {
        for n in [2, 5, 16] {
            let b = fir(n);
            assert_eq!(
                b.dfg.num_ops(),
                n + (n - 1),
                "FIR{n} should have n muls and n-1 adds"
            );
            assert!(min_regs(&b) >= 1);
        }
    }

    #[test]
    fn diffeq_unrolled_grows_linearly() {
        let b1 = diffeq_unrolled(1);
        let b3 = diffeq_unrolled(3);
        assert_eq!(b1.dfg.num_ops() * 3, b3.dfg.num_ops());
        assert!(b3.schedule.max_step() > b1.schedule.max_step());
    }

    #[test]
    fn iir_cascade_scales_and_chains() {
        let b1 = iir_biquad_cascade(1);
        assert_eq!(b1.dfg.num_ops(), 9);
        let b3 = iir_biquad_cascade(3);
        assert_eq!(b3.dfg.num_ops(), 27);
        // The cascade has exactly one primary output (the last section's y).
        assert_eq!(b3.dfg.primary_outputs().count(), 1);
        assert!(min_regs(&b3) > min_regs(&b1));
    }

    #[test]
    fn matmul_op_counts() {
        let m2 = matmul(2);
        assert_eq!(m2.dfg.num_ops(), 8 + 4); // n³ muls + n²(n−1) adds
        assert_eq!(m2.dfg.primary_outputs().count(), 4);
        let m3 = matmul(3);
        assert_eq!(m3.dfg.num_ops(), 27 + 18);
        assert!(m3.schedule.max_step() >= 14, "2 mults bound the schedule");
    }

    #[test]
    fn paper_suite_names() {
        let names: Vec<String> = paper_suite().into_iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["ex1", "ex2", "Tseng1", "Tseng2", "Paulin"]);
    }
}
