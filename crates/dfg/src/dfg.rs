//! The data flow graph and its builder.

use std::collections::HashMap;
use std::fmt;

use crate::types::{OpId, OpKind, Operand, VarId};

/// Information about one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (unique within a DFG).
    pub name: String,
    /// The operation producing this variable, or `None` for primary inputs.
    pub producer: Option<OpId>,
    /// Operations consuming this variable (deduplicated, in id order).
    pub consumers: Vec<OpId>,
    /// `true` if this variable is a primary output of the design.
    pub is_output: bool,
}

/// Information about one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Human-readable name (unique within a DFG).
    pub name: String,
    /// The operation kind.
    pub kind: OpKind,
    /// Left operand.
    pub lhs: Operand,
    /// Right operand.
    pub rhs: Operand,
    /// The variable this operation defines.
    pub out: VarId,
}

impl OpInfo {
    /// The variable operands of this operation (0, 1 or 2 entries).
    pub fn input_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        [self.lhs, self.rhs].into_iter().filter_map(Operand::var)
    }
}

/// Errors detected while building or validating a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// Two variables (or two operations) share a name.
    DuplicateName(String),
    /// An operation consumes a variable that no operation defines and that
    /// is not a primary input. (Cannot occur via [`DfgBuilder`]; kept for
    /// future deserialization paths.)
    UndefinedVariable(String),
    /// The graph contains a dependency cycle.
    Cycle {
        /// Name of an operation on the cycle.
        op: String,
    },
    /// A variable is never consumed and not marked as a primary output.
    DeadVariable(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            DfgError::UndefinedVariable(n) => write!(f, "variable `{n}` is never defined"),
            DfgError::Cycle { op } => write!(f, "dependency cycle through operation `{op}`"),
            DfgError::DeadVariable(n) => {
                write!(f, "variable `{n}` is never consumed and is not a primary output")
            }
        }
    }
}

impl std::error::Error for DfgError {}

/// A validated data flow graph: binary operations over named variables.
///
/// Construct with [`DfgBuilder`]. Guaranteed acyclic, with every variable
/// defined exactly once (by an operation or as a primary input) and either
/// consumed or marked as a primary output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    vars: Vec<VarInfo>,
    ops: Vec<OpInfo>,
}

impl Dfg {
    /// Number of variables (edges of the DFG).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of operations (vertices of the DFG).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Variable metadata.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Operation metadata.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn op(&self, op: OpId) -> &OpInfo {
        &self.ops[op.index()]
    }

    /// Iterates over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Primary inputs: variables with no producer.
    pub fn primary_inputs(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_ids().filter(|&v| self.var(v).producer.is_none())
    }

    /// Primary outputs: variables flagged as design outputs.
    pub fn primary_outputs(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_ids().filter(|&v| self.var(v).is_output)
    }

    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Looks up an operation by name.
    pub fn op_by_name(&self, name: &str) -> Option<OpId> {
        self.ops
            .iter()
            .position(|o| o.name == name)
            .map(|i| OpId(i as u32))
    }

    /// A topological order of the operations (producers before consumers).
    pub fn topo_order(&self) -> Vec<OpId> {
        // Kahn's algorithm over op→op dependencies.
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            for v in op.input_vars() {
                if let Some(p) = self.var(v).producer {
                    succs[p.index()].push(i);
                    indeg[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(OpId(i as u32));
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated DFGs are acyclic");
        order
    }
}

/// Incremental builder for [`Dfg`].
///
/// # Examples
///
/// ```
/// use lobist_dfg::{DfgBuilder, OpKind};
///
/// let mut b = DfgBuilder::new();
/// let a = b.input("a");
/// let t = b.op(OpKind::Mul, "sq", a.into(), a.into());
/// b.mark_output(t);
/// let dfg = b.build()?;
/// assert_eq!(dfg.var(t).name, "sq");
/// # Ok::<(), lobist_dfg::DfgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DfgBuilder {
    vars: Vec<VarInfo>,
    ops: Vec<OpInfo>,
    names: HashMap<String, ()>,
    errors: Vec<DfgError>,
}

impl DfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn claim_name(&mut self, name: &str) {
        if self.names.insert(name.to_owned(), ()).is_some() {
            self.errors.push(DfgError::DuplicateName(name.to_owned()));
        }
    }

    /// Declares a primary input variable.
    pub fn input(&mut self, name: &str) -> VarId {
        self.claim_name(name);
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_owned(),
            producer: None,
            consumers: Vec::new(),
            is_output: false,
        });
        id
    }

    /// Adds a binary operation whose result variable is named `out_name`.
    /// The operation itself is named `<out_name>_op` implicitly; use
    /// [`op_named`](Self::op_named) for explicit operation names.
    pub fn op(&mut self, kind: OpKind, out_name: &str, lhs: Operand, rhs: Operand) -> VarId {
        let op_name = format!("{out_name}_op");
        self.op_named(kind, &op_name, out_name, lhs, rhs)
    }

    /// Adds a binary operation with explicit operation and result names.
    pub fn op_named(
        &mut self,
        kind: OpKind,
        op_name: &str,
        out_name: &str,
        lhs: Operand,
        rhs: Operand,
    ) -> VarId {
        self.claim_name(op_name);
        self.claim_name(out_name);
        let out = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: out_name.to_owned(),
            producer: Some(OpId(self.ops.len() as u32)),
            consumers: Vec::new(),
            is_output: false,
        });
        let op_id = OpId(self.ops.len() as u32);
        self.ops.push(OpInfo {
            name: op_name.to_owned(),
            kind,
            lhs,
            rhs,
            out,
        });
        for v in [lhs, rhs].into_iter().filter_map(Operand::var) {
            let consumers = &mut self.vars[v.index()].consumers;
            if !consumers.contains(&op_id) {
                consumers.push(op_id);
            }
        }
        out
    }

    /// Flags a variable as a primary output of the design.
    pub fn mark_output(&mut self, v: VarId) {
        self.vars[v.index()].is_output = true;
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`DfgError`] found: duplicate names, dependency
    /// cycles (impossible through this builder but checked anyway), or
    /// variables that are neither consumed nor outputs.
    pub fn build(self) -> Result<Dfg, DfgError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let dfg = Dfg {
            vars: self.vars,
            ops: self.ops,
        };
        // Dead-variable check: every non-output must be consumed.
        for v in dfg.var_ids() {
            let info = dfg.var(v);
            if info.consumers.is_empty() && !info.is_output {
                return Err(DfgError::DeadVariable(info.name.clone()));
            }
        }
        // Cycle check (forward references are impossible via the builder,
        // but topo_order's invariant deserves an explicit guard).
        if dfg.topo_order().len() != dfg.num_ops() {
            return Err(DfgError::Cycle {
                op: "<unknown>".to_owned(),
            });
        }
        Ok(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dfg {
        // d = (a+b) * (a-b)
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let bb = b.input("b");
        let s = b.op(OpKind::Add, "s", a.into(), bb.into());
        let t = b.op(OpKind::Sub, "t", a.into(), bb.into());
        let d = b.op(OpKind::Mul, "d", s.into(), t.into());
        b.mark_output(d);
        b.build().unwrap()
    }

    #[test]
    fn builder_constructs_consumers() {
        let g = diamond();
        let a = g.var_by_name("a").unwrap();
        assert_eq!(g.var(a).consumers.len(), 2);
        let s = g.var_by_name("s").unwrap();
        assert_eq!(g.var(s).consumers.len(), 1);
    }

    #[test]
    fn primary_inputs_and_outputs() {
        let g = diamond();
        let ins: Vec<_> = g.primary_inputs().map(|v| g.var(v).name.clone()).collect();
        assert_eq!(ins, vec!["a", "b"]);
        let outs: Vec<_> = g.primary_outputs().map(|v| g.var(v).name.clone()).collect();
        assert_eq!(outs, vec!["d"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = DfgBuilder::new();
        b.input("x");
        b.input("x");
        assert_eq!(b.build().unwrap_err(), DfgError::DuplicateName("x".into()));
    }

    #[test]
    fn dead_variables_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let t = b.op(OpKind::Add, "t", x.into(), y.into());
        // t not marked output and not consumed.
        let _ = t;
        assert!(matches!(b.build(), Err(DfgError::DeadVariable(n)) if n == "t"));
    }

    #[test]
    fn unused_input_rejected() {
        let mut b = DfgBuilder::new();
        b.input("never_used");
        assert!(matches!(b.build(), Err(DfgError::DeadVariable(_))));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = diamond();
        let order = g.topo_order();
        let pos: Vec<usize> = g
            .op_ids()
            .map(|o| order.iter().position(|&x| x == o).unwrap())
            .collect();
        let d = g.op_by_name("d_op").unwrap();
        let s = g.op_by_name("s_op").unwrap();
        let t = g.op_by_name("t_op").unwrap();
        assert!(pos[s.index()] < pos[d.index()]);
        assert!(pos[t.index()] < pos[d.index()]);
    }

    #[test]
    fn constants_are_not_variables() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Mul, "t", x.into(), 3i64.into());
        b.mark_output(t);
        let g = b.build().unwrap();
        assert_eq!(g.num_vars(), 2); // x and t only
        let op = g.op(OpId(0));
        assert_eq!(op.input_vars().count(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let g = diamond();
        assert!(g.var_by_name("a").is_some());
        assert!(g.var_by_name("zz").is_none());
        assert!(g.op_by_name("s_op").is_some());
        assert!(g.op_by_name("zz").is_none());
    }
}
