//! Deterministic DFG canonization for structural (isomorphism-level)
//! cache keys.
//!
//! [`canonize`] maps a scheduled DFG to a **canonical form**: a relabeled
//! copy of the graph (inputs `i0, i1, ...`, operation results
//! `t0, t1, ...`) whose byte [`CanonForm::encoding`] is identical for any
//! two designs that differ only in variable/operation names or
//! declaration order. Two designs with equal encodings are genuinely
//! isomorphic — the encoding fully determines the canonical graph and
//! schedule, so equal encodings rebuild the *same* design — which is what
//! lets the engine's result cache answer a renamed resubmission without
//! risking a wrong hit.
//!
//! The algorithm is the classic two-stage scheme:
//!
//! 1. **Color refinement** (Weisfeiler–Leman style): every node — one per
//!    operation plus one per primary input — starts with a color built
//!    from invariants (op kind, schedule step, operand shapes, constant
//!    values, output marking) and is iteratively re-colored by the sorted
//!    multiset of `(port role, neighbor color)` pairs until the partition
//!    stops splitting. Port roles distinguish left from right operands,
//!    so `a - b` and `b - a` never collide.
//! 2. **Individualization–refinement**: if symmetric nodes remain, the
//!    smallest ambiguous color class is split one member at a time and
//!    refinement re-runs, recursing until every class is a singleton.
//!    Each discrete leaf yields one candidate labeling; the
//!    lexicographically smallest encoding wins, making the result
//!    independent of which symmetric twin came first in the input.
//!
//! The search is bounded by a leaf budget ([`LEAF_BUDGET`]). Designs too
//! symmetric to finish inside the budget keep the best leaf found and set
//! [`CanonForm::bailed`]; the result is still deterministic for that
//! input and still a valid relabeling, but two isomorphic inputs may then
//! canonize differently — costing a cache hit, never correctness.
//!
//! Initial colors include the schedule step, and refinement only ever
//! *refines* the existing order (each signature starts with the node's
//! previous color), so the canonical operation order is step-major and
//! therefore topological: the canonical graph and schedule always
//! validate.
//!
//! [`permute`] is the adversary: a seeded random renaming/reordering that
//! produces an isomorphic twin, used by property tests
//! (`canon(permute(g)) == canon(g)`) and by `lobist corpus --permute` to
//! build iso-duplicate workloads.

use std::collections::HashMap;

use crate::dfg::{Dfg, DfgBuilder};
use crate::schedule::Schedule;
use crate::types::{OpId, OpKind, Operand, VarId};

/// Maximum individualization leaves explored before bailing out with the
/// best labeling found so far.
pub const LEAF_BUDGET: usize = 64;

/// The canonical form of a scheduled DFG.
#[derive(Debug, Clone)]
pub struct CanonForm {
    /// The relabeled graph: inputs `i0..`, results `t0..`, declared in
    /// canonical order.
    pub dfg: Dfg,
    /// The schedule expressed over the canonical operation order (same
    /// per-operation steps as the original).
    pub schedule: Schedule,
    /// Canonical byte encoding: equal bytes ⟺ isomorphic designs
    /// (modulo [`bailed`](Self::bailed) under-approximation).
    pub encoding: Vec<u8>,
    /// `op_perm[original op index]` = canonical position of that op.
    pub op_perm: Vec<u32>,
    /// `var_perm[original var index]` = canonical [`VarId`] index.
    pub var_perm: Vec<u32>,
    /// `var_inverse[canonical var index]` = original [`VarId`] index.
    pub var_inverse: Vec<u32>,
    /// `true` if the symmetry search exhausted [`LEAF_BUDGET`]; the form
    /// is still valid and deterministic, but isomorphic inputs are no
    /// longer guaranteed to collide.
    pub bailed: bool,
}

impl CanonForm {
    /// Maps an original variable to its canonical id.
    pub fn canonical_var(&self, v: VarId) -> VarId {
        VarId(self.var_perm[v.index()])
    }

    /// Maps a canonical variable back to the original id.
    pub fn original_var(&self, v: VarId) -> VarId {
        VarId(self.var_inverse[v.index()])
    }
}

/// Edge roles in refinement signatures. Left and right ports are kept
/// distinct so non-commutative operand order is structural.
const ROLE_LHS_PRODUCER: u64 = 0;
const ROLE_LHS_INPUT: u64 = 1;
const ROLE_RHS_PRODUCER: u64 = 2;
const ROLE_RHS_INPUT: u64 = 3;
const ROLE_CONSUMED_LHS: u64 = 4;
const ROLE_CONSUMED_RHS: u64 = 5;

/// Node layout inside the refinement: ops first (node `i` = `OpId(i)`),
/// then primary inputs in original id order.
struct Ctx<'a> {
    dfg: &'a Dfg,
    schedule: &'a Schedule,
    /// Primary inputs in original id order.
    inputs: Vec<VarId>,
    /// `input_node[var index]` = node index for input vars, `usize::MAX`
    /// otherwise.
    input_node: Vec<usize>,
}

impl<'a> Ctx<'a> {
    fn new(dfg: &'a Dfg, schedule: &'a Schedule) -> Self {
        let inputs: Vec<VarId> = dfg.primary_inputs().collect();
        let mut input_node = vec![usize::MAX; dfg.num_vars()];
        for (j, &v) in inputs.iter().enumerate() {
            input_node[v.index()] = dfg.num_ops() + j;
        }
        Self {
            dfg,
            schedule,
            inputs,
            input_node,
        }
    }

    fn num_nodes(&self) -> usize {
        self.dfg.num_ops() + self.inputs.len()
    }

    /// The node carrying a variable operand: its producer op, or its
    /// input node.
    fn var_node(&self, v: VarId) -> usize {
        match self.dfg.var(v).producer {
            Some(p) => p.index(),
            None => self.input_node[v.index()],
        }
    }

    /// Initial invariant color of a node, as a flat `u64` tuple.
    fn initial_color(&self, node: usize) -> Vec<u64> {
        let n = self.dfg.num_ops();
        if node < n {
            let op = self.dfg.op(OpId(node as u32));
            let mut c = vec![
                0,
                u64::from(self.schedule.step(OpId(node as u32))),
                kind_index(op.kind),
            ];
            for operand in [op.lhs, op.rhs] {
                match operand {
                    Operand::Var(v) if self.dfg.var(v).producer.is_some() => c.push(0),
                    Operand::Var(_) => c.push(1),
                    Operand::Const(k) => {
                        c.push(2);
                        c.push(k as u64);
                    }
                }
            }
            c.push(u64::from(self.dfg.var(op.out).is_output));
            c
        } else {
            let v = self.inputs[node - n];
            vec![1, u64::from(self.dfg.var(v).is_output)]
        }
    }

    /// Refinement edges of a node: `(role, neighbor node)` pairs.
    fn edges(&self, node: usize) -> Vec<(u64, usize)> {
        let n = self.dfg.num_ops();
        let mut e = Vec::new();
        let consumed_edges = |v: VarId, e: &mut Vec<(u64, usize)>| {
            for &c in &self.dfg.var(v).consumers {
                let op = self.dfg.op(c);
                if op.lhs == Operand::Var(v) {
                    e.push((ROLE_CONSUMED_LHS, c.index()));
                }
                if op.rhs == Operand::Var(v) {
                    e.push((ROLE_CONSUMED_RHS, c.index()));
                }
            }
        };
        if node < n {
            let op = self.dfg.op(OpId(node as u32));
            for (operand, producer_role, input_role) in [
                (op.lhs, ROLE_LHS_PRODUCER, ROLE_LHS_INPUT),
                (op.rhs, ROLE_RHS_PRODUCER, ROLE_RHS_INPUT),
            ] {
                if let Operand::Var(v) = operand {
                    let role = if self.dfg.var(v).producer.is_some() {
                        producer_role
                    } else {
                        input_role
                    };
                    e.push((role, self.var_node(v)));
                }
            }
            consumed_edges(op.out, &mut e);
        } else {
            consumed_edges(self.inputs[node - n], &mut e);
        }
        e
    }

    /// One refinement pass: re-rank nodes by `(old rank, sorted neighbor
    /// signature)`. Prepending the old rank makes this a strict
    /// refinement — class order is preserved, classes only split.
    fn refine(&self, ranks: &mut [usize]) {
        loop {
            let before = distinct(ranks);
            let mut sigs: Vec<(Vec<u64>, usize)> = (0..self.num_nodes())
                .map(|node| {
                    let mut sig = vec![ranks[node] as u64];
                    let mut nb: Vec<(u64, u64)> = self
                        .edges(node)
                        .into_iter()
                        .map(|(role, n)| (role, ranks[n] as u64))
                        .collect();
                    nb.sort_unstable();
                    for (role, r) in nb {
                        sig.push(role);
                        sig.push(r);
                    }
                    (sig, node)
                })
                .collect();
            rerank(&mut sigs, ranks);
            if distinct(ranks) == before {
                return;
            }
        }
    }

    /// Serializes the canonical design under a discrete ranking. The
    /// bytes fully determine the canonical graph and schedule, so equal
    /// encodings imply isomorphic originals.
    fn encode(&self, ranks: &[usize]) -> Vec<u8> {
        let n = self.dfg.num_ops();
        let m = self.inputs.len();
        // Discrete ranks: ops occupy 0..n (step-major), inputs n..n+m.
        let mut op_at = vec![0usize; n];
        let mut input_at = vec![0usize; m];
        for (node, &r) in ranks.iter().enumerate() {
            if node < n {
                op_at[r] = node;
            } else {
                input_at[r - n] = node - n;
            }
        }
        let canonical_var = |v: VarId| -> u32 {
            match self.dfg.var(v).producer {
                Some(p) => (m + ranks[p.index()]) as u32,
                None => (ranks[self.input_node[v.index()]] - n) as u32,
            }
        };
        let mut out = Vec::with_capacity(16 + 24 * n + 2 * m);
        out.extend_from_slice(&(m as u32).to_le_bytes());
        for &j in &input_at {
            out.push(u8::from(self.dfg.var(self.inputs[j]).is_output));
        }
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for &i in &op_at {
            let op = self.dfg.op(OpId(i as u32));
            out.push(kind_index(op.kind) as u8);
            out.extend_from_slice(&self.schedule.step(OpId(i as u32)).to_le_bytes());
            for operand in [op.lhs, op.rhs] {
                match operand {
                    Operand::Var(v) => {
                        out.push(0);
                        out.extend_from_slice(&canonical_var(v).to_le_bytes());
                    }
                    Operand::Const(k) => {
                        out.push(1);
                        out.extend_from_slice(&k.to_le_bytes());
                    }
                }
            }
            out.push(u8::from(self.dfg.var(op.out).is_output));
        }
        out
    }
}

fn kind_index(kind: OpKind) -> u64 {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u64
}

fn distinct(ranks: &[usize]) -> usize {
    let mut seen: Vec<usize> = ranks.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Sorts signatures and writes dense ranks back into `ranks`.
fn rerank(sigs: &mut [(Vec<u64>, usize)], ranks: &mut [usize]) {
    sigs.sort_unstable();
    let mut rank = 0usize;
    for i in 0..sigs.len() {
        if i > 0 && sigs[i].0 != sigs[i - 1].0 {
            rank += 1;
        }
        ranks[sigs[i].1] = rank;
    }
}

struct Search<'a> {
    ctx: &'a Ctx<'a>,
    best: Option<(Vec<u8>, Vec<usize>)>,
    leaves: usize,
    bailed: bool,
}

impl Search<'_> {
    fn descend(&mut self, mut ranks: Vec<usize>) {
        if self.leaves >= LEAF_BUDGET {
            self.bailed = true;
            return;
        }
        self.ctx.refine(&mut ranks);
        // Smallest non-singleton class, lowest rank breaking ties.
        let mut class_size: HashMap<usize, usize> = HashMap::new();
        for &r in &ranks {
            *class_size.entry(r).or_insert(0) += 1;
        }
        let target = class_size
            .iter()
            .filter(|&(_, &size)| size > 1)
            .map(|(&r, &size)| (size, r))
            .min();
        let Some((_, target_rank)) = target else {
            // Discrete: one candidate labeling.
            self.leaves += 1;
            let encoding = self.ctx.encode(&ranks);
            if self.best.as_ref().is_none_or(|(best, _)| encoding < *best) {
                self.best = Some((encoding, ranks));
            }
            return;
        };
        let members: Vec<usize> = (0..ranks.len())
            .filter(|&node| ranks[node] == target_rank)
            .collect();
        for &chosen in &members {
            let branched: Vec<usize> = (0..ranks.len())
                .map(|node| {
                    2 * ranks[node]
                        + usize::from(ranks[node] == target_rank && node != chosen)
                })
                .collect();
            self.descend(branched);
            if self.leaves >= LEAF_BUDGET {
                self.bailed = true;
                return;
            }
        }
    }
}

/// Canonizes a scheduled DFG. Pure and deterministic: the same design
/// always yields the same [`CanonForm`], and isomorphic designs yield
/// byte-identical encodings unless the symmetry search
/// [bails out](CanonForm::bailed).
pub fn canonize(dfg: &Dfg, schedule: &Schedule) -> CanonForm {
    let ctx = Ctx::new(dfg, schedule);
    let mut sigs: Vec<(Vec<u64>, usize)> = (0..ctx.num_nodes())
        .map(|node| (ctx.initial_color(node), node))
        .collect();
    let mut ranks = vec![0usize; ctx.num_nodes()];
    rerank(&mut sigs, &mut ranks);
    let mut search = Search {
        ctx: &ctx,
        best: None,
        leaves: 0,
        bailed: false,
    };
    search.descend(ranks);
    let (encoding, ranks) = search.best.expect("at least one leaf is always reached");
    build_form(&ctx, encoding, &ranks, search.bailed)
}

fn build_form(ctx: &Ctx<'_>, encoding: Vec<u8>, ranks: &[usize], bailed: bool) -> CanonForm {
    let dfg = ctx.dfg;
    let n = dfg.num_ops();
    let m = ctx.inputs.len();
    let mut op_perm = vec![0u32; n];
    let mut op_at = vec![OpId(0); n];
    for i in 0..n {
        op_perm[i] = ranks[i] as u32;
        op_at[ranks[i]] = OpId(i as u32);
    }
    let mut var_perm = vec![0u32; dfg.num_vars()];
    for v in dfg.var_ids() {
        var_perm[v.index()] = match dfg.var(v).producer {
            Some(p) => (m + ranks[p.index()]) as u32,
            None => (ranks[ctx.input_node[v.index()]] - n) as u32,
        };
    }
    let mut var_inverse = vec![0u32; dfg.num_vars()];
    for (orig, &canon) in var_perm.iter().enumerate() {
        var_inverse[canon as usize] = orig as u32;
    }

    let mut b = DfgBuilder::new();
    let mut canon_vars: Vec<VarId> = Vec::with_capacity(dfg.num_vars());
    for j in 0..m {
        canon_vars.push(b.input(&format!("i{j}")));
    }
    let map_operand = |o: Operand| -> Operand {
        match o {
            Operand::Var(v) => Operand::Var(VarId(var_perm[v.index()])),
            c @ Operand::Const(_) => c,
        }
    };
    let mut steps = Vec::with_capacity(n);
    for (p, &old) in op_at.iter().enumerate() {
        let op = dfg.op(old);
        let out = b.op(op.kind, &format!("t{p}"), map_operand(op.lhs), map_operand(op.rhs));
        debug_assert_eq!(out.index(), m + p);
        canon_vars.push(out);
        steps.push(ctx.schedule.step(old));
    }
    for v in dfg.var_ids() {
        if dfg.var(v).is_output {
            b.mark_output(canon_vars[var_perm[v.index()] as usize]);
        }
    }
    let canon_dfg = b.build().expect("canonical relabeling preserves validity");
    let canon_schedule = Schedule::new(&canon_dfg, steps)
        .expect("canonical op order is step-major, hence topological");
    CanonForm {
        dfg: canon_dfg,
        schedule: canon_schedule,
        encoding,
        op_perm,
        var_perm,
        var_inverse,
        bailed,
    }
}

/// The simulator's splitmix64 step, reused for seeded permutations.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffle<T>(items: &mut [T], rng: &mut u64) {
    for i in (1..items.len()).rev() {
        let j = (splitmix64(rng) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Produces a seeded isomorphic twin of `dfg`: primary inputs are
/// re-declared in shuffled order, operations are emitted in a random
/// topological order, and every name is rewritten to a seed-tagged
/// fresh one. Returns the twin plus the op map (`ops[i]` = new [`OpId`]
/// of original op `i`) and the var map (`vars[i]` = new [`VarId`] of
/// original var `i`).
pub fn permute_dfg(dfg: &Dfg, seed: u64) -> (Dfg, Vec<OpId>, Vec<VarId>) {
    let mut rng = seed ^ 0x5bf0_3635;
    let tag = splitmix64(&mut rng) % 1000;
    let mut b = DfgBuilder::new();
    let mut new_var = vec![VarId(0); dfg.num_vars()];

    let mut inputs: Vec<VarId> = dfg.primary_inputs().collect();
    shuffle(&mut inputs, &mut rng);
    for (j, &v) in inputs.iter().enumerate() {
        new_var[v.index()] = b.input(&format!("p{tag}_{j}"));
    }

    // Random topological order: repeatedly emit a random ready op.
    let n = dfg.num_ops();
    let mut pending: Vec<usize> = Vec::with_capacity(n);
    let mut indeg = vec![0usize; n];
    for op in dfg.op_ids() {
        // Count *distinct* produced inputs: `consumers` lists an op once
        // per variable (not per operand), so an op reading the same var
        // on both sides gets exactly one ready-decrement for it.
        let mut ins: Vec<VarId> = dfg
            .op(op)
            .input_vars()
            .filter(|&v| dfg.var(v).producer.is_some())
            .collect();
        ins.dedup();
        indeg[op.index()] = ins.len();
        if indeg[op.index()] == 0 {
            pending.push(op.index());
        }
    }
    let mut op_map = vec![OpId(0); n];
    let mut emitted = 0usize;
    while !pending.is_empty() {
        let pick = (splitmix64(&mut rng) % pending.len() as u64) as usize;
        let i = pending.swap_remove(pick);
        let op = dfg.op(OpId(i as u32));
        let map_operand = |o: Operand| -> Operand {
            match o {
                Operand::Var(v) => Operand::Var(new_var[v.index()]),
                c @ Operand::Const(_) => c,
            }
        };
        op_map[i] = OpId(emitted as u32);
        new_var[op.out.index()] = b.op(
            op.kind,
            &format!("q{tag}_{emitted}"),
            map_operand(op.lhs),
            map_operand(op.rhs),
        );
        emitted += 1;
        for &c in &dfg.var(op.out).consumers {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                pending.push(c.index());
            }
        }
    }
    debug_assert_eq!(emitted, n, "validated DFGs are acyclic");
    for v in dfg.var_ids() {
        if dfg.var(v).is_output {
            b.mark_output(new_var[v.index()]);
        }
    }
    (
        b.build().expect("permutation preserves validity"),
        op_map,
        new_var,
    )
}

/// As [`permute_dfg`], also carrying the schedule over (each operation
/// keeps its step, so the twin's schedule is valid and step-identical).
pub fn permute(dfg: &Dfg, schedule: &Schedule, seed: u64) -> (Dfg, Schedule) {
    let (twin, schedule, _) = permute_scheduled(dfg, schedule, seed);
    (twin, schedule)
}

/// As [`permute`], also returning the var map (`vars[i]` = twin
/// [`VarId`] of original var `i`) so callers can translate results
/// computed on the twin back into the original's coordinates.
pub fn permute_scheduled(dfg: &Dfg, schedule: &Schedule, seed: u64) -> (Dfg, Schedule, Vec<VarId>) {
    let (twin, op_map, var_map) = permute_dfg(dfg, seed);
    let mut steps = vec![0u32; dfg.num_ops()];
    for op in dfg.op_ids() {
        steps[op_map[op.index()].index()] = schedule.step(op);
    }
    let schedule = Schedule::new(&twin, steps).expect("steps are per-op invariants");
    (twin, schedule, var_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::parse::to_text;

    fn all_benches() -> Vec<(Dfg, Schedule)> {
        benchmarks::paper_suite()
            .into_iter()
            .map(|b| (b.dfg, b.schedule))
            .collect()
    }

    #[test]
    fn canonization_is_idempotent() {
        for (dfg, schedule) in all_benches() {
            let c1 = canonize(&dfg, &schedule);
            let c2 = canonize(&c1.dfg, &c1.schedule);
            assert_eq!(c1.encoding, c2.encoding);
            assert_eq!(
                to_text(&c1.dfg, &c1.schedule),
                to_text(&c2.dfg, &c2.schedule)
            );
        }
    }

    #[test]
    fn permuted_twins_share_the_encoding() {
        for (dfg, schedule) in all_benches() {
            let base = canonize(&dfg, &schedule);
            assert!(!base.bailed, "paper suite fits the leaf budget");
            for seed in 0..8 {
                let (twin, twin_schedule) = permute(&dfg, &schedule, seed);
                assert_ne!(
                    to_text(&dfg, &schedule),
                    to_text(&twin, &twin_schedule),
                    "permutation must actually rename"
                );
                let c = canonize(&twin, &twin_schedule);
                assert_eq!(base.encoding, c.encoding, "seed {seed}");
                assert_eq!(
                    to_text(&base.dfg, &base.schedule),
                    to_text(&c.dfg, &c.schedule)
                );
            }
        }
    }

    #[test]
    fn permutations_are_bijections() {
        for (dfg, schedule) in all_benches() {
            let c = canonize(&dfg, &schedule);
            let mut seen_ops = vec![false; dfg.num_ops()];
            for &p in &c.op_perm {
                assert!(!seen_ops[p as usize]);
                seen_ops[p as usize] = true;
            }
            for v in dfg.var_ids() {
                assert_eq!(c.original_var(c.canonical_var(v)), v);
            }
        }
    }

    #[test]
    fn canonical_form_preserves_structure() {
        for (dfg, schedule) in all_benches() {
            let c = canonize(&dfg, &schedule);
            assert_eq!(c.dfg.num_ops(), dfg.num_ops());
            assert_eq!(c.dfg.num_vars(), dfg.num_vars());
            assert_eq!(c.schedule.max_step(), schedule.max_step());
            for op in dfg.op_ids() {
                let canon_op = OpId(c.op_perm[op.index()]);
                assert_eq!(c.dfg.op(canon_op).kind, dfg.op(op).kind);
                assert_eq!(c.schedule.step(canon_op), schedule.step(op));
                assert_eq!(
                    c.dfg.var(c.dfg.op(canon_op).out).is_output,
                    dfg.var(dfg.op(op).out).is_output
                );
            }
        }
    }

    #[test]
    fn operand_order_is_structural() {
        let build = |flip: bool| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let y = b.input("y");
            let d = if flip {
                b.op(OpKind::Sub, "d", y.into(), x.into())
            } else {
                b.op(OpKind::Sub, "d", x.into(), y.into())
            };
            let e = b.op(OpKind::Add, "e", d.into(), x.into());
            b.mark_output(e);
            let dfg = b.build().unwrap();
            let schedule = Schedule::new(&dfg, vec![1, 2]).unwrap();
            canonize(&dfg, &schedule).encoding
        };
        assert_ne!(build(false), build(true), "x - y is not y - x");
    }

    #[test]
    fn distinct_designs_get_distinct_encodings() {
        let build = |kind: OpKind| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let y = b.input("y");
            let t = b.op(kind, "t", x.into(), y.into());
            b.mark_output(t);
            let dfg = b.build().unwrap();
            let schedule = Schedule::new(&dfg, vec![1]).unwrap();
            canonize(&dfg, &schedule).encoding
        };
        assert_ne!(build(OpKind::Add), build(OpKind::Mul));
    }

    #[test]
    fn symmetric_twins_are_broken_deterministically() {
        // Two interchangeable multiply trees feeding one add: refinement
        // alone cannot split them; individualization must, and the result
        // must not depend on declaration order.
        let build = |swap: bool| {
            let mut b = DfgBuilder::new();
            let a = b.input("a");
            let c = b.input("c");
            let d = b.input("d");
            let e = b.input("e");
            let (p, q) = if swap { ((d, e), (a, c)) } else { ((a, c), (d, e)) };
            let m1 = b.op(OpKind::Mul, "m1", p.0.into(), p.1.into());
            let m2 = b.op(OpKind::Mul, "m2", q.0.into(), q.1.into());
            let s = b.op(OpKind::Add, "s", m1.into(), m2.into());
            b.mark_output(s);
            let dfg = b.build().unwrap();
            let schedule = Schedule::new(&dfg, vec![1, 1, 2]).unwrap();
            canonize(&dfg, &schedule)
        };
        let c1 = build(false);
        let c2 = build(true);
        assert!(!c1.bailed);
        assert_eq!(c1.encoding, c2.encoding);
        assert_eq!(
            to_text(&c1.dfg, &c1.schedule),
            to_text(&c2.dfg, &c2.schedule)
        );
    }

    #[test]
    fn encoding_equality_implies_identical_canonical_text() {
        // The encoding determines the canonical design, so two equal
        // encodings must rebuild the same text — spot-check on a corpus
        // family against its own permutation.
        use crate::corpus::{generate, CorpusKind};
        use crate::scheduling::asap;
        let dfg = generate(CorpusKind::Fir, 8, 3);
        let schedule = asap(&dfg);
        let c1 = canonize(&dfg, &schedule);
        let (twin, twin_schedule) = permute(&dfg, &schedule, 17);
        let c2 = canonize(&twin, &twin_schedule);
        assert_eq!(c1.encoding, c2.encoding);
        assert_eq!(
            to_text(&c1.dfg, &c1.schedule),
            to_text(&c2.dfg, &c2.schedule)
        );
    }
}
