//! Core identifier and operation-kind types.

use std::fmt;

/// Identifier of a variable (an edge of the data flow graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable's index into [`crate::Dfg`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an operation (a vertex of the data flow graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The operation's index into [`crate::Dfg`] storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The kind of a binary operation.
///
/// The paper assumes binary, commutative operators; non-commutative
/// operators (subtraction, division, comparison) are handled by adding
/// port constraints during interconnect assignment, and unary operators
/// are treated as binary with a constant second operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Addition (`+`), commutative.
    Add,
    /// Subtraction (`-`), non-commutative.
    Sub,
    /// Multiplication (`*`), commutative.
    Mul,
    /// Division (`/`), non-commutative.
    Div,
    /// Bitwise AND (`&`), commutative.
    And,
    /// Bitwise OR (`|`), commutative.
    Or,
    /// Bitwise XOR (`^`), commutative.
    Xor,
    /// Less-than comparison (`<`), non-commutative.
    Lt,
}

impl OpKind {
    /// All operation kinds, in a fixed order.
    pub const ALL: [OpKind; 8] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Lt,
    ];

    /// `true` if operand order is irrelevant.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Mul | OpKind::And | OpKind::Or | OpKind::Xor
        )
    }

    /// The conventional one-character symbol (`<` is rendered as `<`).
    pub fn symbol(self) -> char {
        match self {
            OpKind::Add => '+',
            OpKind::Sub => '-',
            OpKind::Mul => '*',
            OpKind::Div => '/',
            OpKind::And => '&',
            OpKind::Or => '|',
            OpKind::Xor => '^',
            OpKind::Lt => '<',
        }
    }

    /// Parses a symbol as produced by [`OpKind::symbol`].
    pub fn from_symbol(c: char) -> Option<OpKind> {
        OpKind::ALL.iter().copied().find(|k| k.symbol() == c)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// An operand of an operation: either a variable or an inline constant.
///
/// Constants (e.g. the literal `3` in the Paulin differential-equation
/// benchmark) are hard-wired and never occupy a register, so they are
/// excluded from lifetime analysis and allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A variable operand.
    Var(VarId),
    /// A hard-wired constant operand.
    Const(i64),
}

impl Operand {
    /// The variable, if this operand is one.
    pub fn var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// `true` for constant operands.
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "#{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_table() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(OpKind::And.is_commutative());
        assert!(OpKind::Or.is_commutative());
        assert!(OpKind::Xor.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Div.is_commutative());
        assert!(!OpKind::Lt.is_commutative());
    }

    #[test]
    fn symbol_round_trip() {
        for k in OpKind::ALL {
            assert_eq!(OpKind::from_symbol(k.symbol()), Some(k));
        }
        assert_eq!(OpKind::from_symbol('?'), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(OpId(7).to_string(), "op7");
        assert_eq!(OpKind::Mul.to_string(), "*");
        assert_eq!(Operand::Var(VarId(1)).to_string(), "v1");
        assert_eq!(Operand::Const(3).to_string(), "#3");
    }

    #[test]
    fn operand_conversions() {
        let v: Operand = VarId(2).into();
        assert_eq!(v.var(), Some(VarId(2)));
        assert!(!v.is_const());
        let c: Operand = 5i64.into();
        assert_eq!(c.var(), None);
        assert!(c.is_const());
    }
}
