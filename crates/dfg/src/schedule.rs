//! Control-step schedules.

use std::fmt;

use crate::dfg::Dfg;
use crate::types::OpId;

/// A schedule `S : V → {1, 2, ...}` mapping each operation to the control
/// step in which it executes. Steps start at 1, matching the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<u32>,
}

/// Errors detected when validating a schedule against a DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule does not cover every operation exactly once.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Operations in the DFG.
        expected: usize,
    },
    /// Control steps must be ≥ 1.
    ZeroStep {
        /// The offending operation.
        op: OpId,
    },
    /// A data dependency is violated: the consumer runs no later than the
    /// producer.
    DependencyViolation {
        /// The producing operation.
        producer: OpId,
        /// The consuming operation.
        consumer: OpId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongLength { got, expected } => {
                write!(f, "schedule covers {got} operations but the DFG has {expected}")
            }
            ScheduleError::ZeroStep { op } => write!(f, "operation {op} scheduled at step 0"),
            ScheduleError::DependencyViolation { producer, consumer } => write!(
                f,
                "operation {consumer} consumes the result of {producer} in the same or an earlier step"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Wraps and validates a step vector indexed by operation id.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the vector has the wrong length, any
    /// step is 0, or a consumer is scheduled at or before its producer.
    pub fn new(dfg: &Dfg, steps: Vec<u32>) -> Result<Self, ScheduleError> {
        if steps.len() != dfg.num_ops() {
            return Err(ScheduleError::WrongLength {
                got: steps.len(),
                expected: dfg.num_ops(),
            });
        }
        for op in dfg.op_ids() {
            if steps[op.index()] == 0 {
                return Err(ScheduleError::ZeroStep { op });
            }
        }
        for op in dfg.op_ids() {
            for v in dfg.op(op).input_vars() {
                if let Some(p) = dfg.var(v).producer {
                    if steps[p.index()] >= steps[op.index()] {
                        return Err(ScheduleError::DependencyViolation {
                            producer: p,
                            consumer: op,
                        });
                    }
                }
            }
        }
        Ok(Self { steps })
    }

    /// The control step of operation `op`.
    pub fn step(&self, op: OpId) -> u32 {
        self.steps[op.index()]
    }

    /// The largest control step used (0 for an empty schedule).
    pub fn max_step(&self) -> u32 {
        self.steps.iter().copied().max().unwrap_or(0)
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if no operations are scheduled.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Operations scheduled in control step `s`, in id order.
    pub fn ops_in_step(&self, s: u32) -> Vec<OpId> {
        self.steps
            .iter()
            .enumerate()
            .filter(|&(_, &st)| st == s)
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }

    /// The underlying step vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.steps
    }

    /// Rebuilds a schedule from a step vector previously obtained via
    /// [`Schedule::as_slice`], skipping validation.
    ///
    /// Intended for trusted round-trips — deserializing a schedule that
    /// was serialized from a validated one (the persistent result store
    /// does this). Feeding it a vector that never passed
    /// [`Schedule::new`] silently breaks the schedule invariants.
    pub fn from_trusted_steps(steps: Vec<u32>) -> Self {
        Self { steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgBuilder;
    use crate::types::OpKind;

    fn chain() -> Dfg {
        let mut b = DfgBuilder::new();
        let a = b.input("a");
        let t1 = b.op(OpKind::Add, "t1", a.into(), 1i64.into());
        let t2 = b.op(OpKind::Mul, "t2", t1.into(), 2i64.into());
        b.mark_output(t2);
        b.build().unwrap()
    }

    #[test]
    fn valid_schedule_accepted() {
        let g = chain();
        let s = Schedule::new(&g, vec![1, 2]).unwrap();
        assert_eq!(s.max_step(), 2);
        assert_eq!(s.step(OpId(0)), 1);
        assert_eq!(s.ops_in_step(2), vec![OpId(1)]);
    }

    #[test]
    fn wrong_length_rejected() {
        let g = chain();
        assert!(matches!(
            Schedule::new(&g, vec![1]),
            Err(ScheduleError::WrongLength { got: 1, expected: 2 })
        ));
    }

    #[test]
    fn zero_step_rejected() {
        let g = chain();
        assert!(matches!(
            Schedule::new(&g, vec![0, 1]),
            Err(ScheduleError::ZeroStep { op: OpId(0) })
        ));
    }

    #[test]
    fn same_step_dependency_rejected() {
        let g = chain();
        let err = Schedule::new(&g, vec![1, 1]).unwrap_err();
        assert!(matches!(err, ScheduleError::DependencyViolation { .. }));
        assert!(err.to_string().contains("same or an earlier step"));
    }

    #[test]
    fn reversed_dependency_rejected() {
        let g = chain();
        assert!(Schedule::new(&g, vec![2, 1]).is_err());
    }

    #[test]
    fn empty_schedule() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        b.mark_output(x);
        let g = b.build().unwrap();
        let s = Schedule::new(&g, vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.max_step(), 0);
    }
}
