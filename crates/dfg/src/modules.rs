//! Functional-unit resource descriptions.
//!
//! The paper's Tables describe module allocations as strings such as
//! `"1+,2*,1-"` (one adder, two multipliers, one subtractor) or
//! `"1+,3ALU"`. A [`ModuleSet`] is the multiset of available functional
//! units against which operations are assigned.

use std::fmt;
use std::str::FromStr;

use crate::types::OpKind;

/// The class of a functional-unit module: a dedicated operator or a
/// general ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModuleClass {
    /// A dedicated unit performing exactly one operation kind.
    Op(OpKind),
    /// A general ALU capable of any operation kind.
    Alu,
}

impl ModuleClass {
    /// `true` if this module can execute operations of kind `k`.
    pub fn supports(self, k: OpKind) -> bool {
        match self {
            ModuleClass::Op(mk) => mk == k,
            ModuleClass::Alu => true,
        }
    }
}

impl fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleClass::Op(k) => write!(f, "{k}"),
            ModuleClass::Alu => write!(f, "ALU"),
        }
    }
}

/// A multiset of available functional units, one entry per physical
/// module.
///
/// # Examples
///
/// ```
/// use lobist_dfg::modules::{ModuleClass, ModuleSet};
/// use lobist_dfg::OpKind;
///
/// let set: ModuleSet = "1+,2*,1-".parse()?;
/// assert_eq!(set.len(), 4);
/// assert_eq!(set.count(ModuleClass::Op(OpKind::Mul)), 2);
/// assert_eq!(set.to_string(), "1+,2*,1-");
/// # Ok::<(), lobist_dfg::modules::ParseModuleSetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSet {
    classes: Vec<ModuleClass>,
}

impl ModuleSet {
    /// Creates a module set from explicit classes (order preserved; the
    /// index in this list is the module id used by assignment).
    pub fn new(classes: Vec<ModuleClass>) -> Self {
        Self { classes }
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the set has no modules.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class of module `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn class(&self, i: usize) -> ModuleClass {
        self.classes[i]
    }

    /// All classes, by module id.
    pub fn classes(&self) -> &[ModuleClass] {
        &self.classes
    }

    /// How many modules of the given class are available.
    pub fn count(&self, class: ModuleClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Module ids able to execute operation kind `k`.
    pub fn supporting(&self, k: OpKind) -> impl Iterator<Item = usize> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.supports(k))
            .map(|(i, _)| i)
    }
}

impl FromIterator<ModuleClass> for ModuleSet {
    fn from_iter<T: IntoIterator<Item = ModuleClass>>(iter: T) -> Self {
        ModuleSet::new(iter.into_iter().collect())
    }
}

impl Extend<ModuleClass> for ModuleSet {
    fn extend<T: IntoIterator<Item = ModuleClass>>(&mut self, iter: T) {
        self.classes.extend(iter);
    }
}

/// Error parsing a module-set string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModuleSetError {
    /// The offending component of the input.
    pub component: String,
}

impl fmt::Display for ParseModuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid module component `{}`", self.component)
    }
}

impl std::error::Error for ParseModuleSetError {}

impl FromStr for ModuleSet {
    type Err = ParseModuleSetError;

    /// Parses strings like `"1+,2*,1-"`, `"1+,3ALU"`, `"1/,2*,2+,1&"`.
    /// Whitespace around components is ignored; a missing count means 1.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut classes = Vec::new();
        for raw in s.split(',') {
            let comp = raw.trim();
            if comp.is_empty() {
                return Err(ParseModuleSetError {
                    component: raw.to_owned(),
                });
            }
            let digits: String = comp.chars().take_while(|c| c.is_ascii_digit()).collect();
            let rest = comp[digits.len()..].trim();
            let count: usize = if digits.is_empty() {
                1
            } else {
                digits.parse().map_err(|_| ParseModuleSetError {
                    component: comp.to_owned(),
                })?
            };
            let class = if rest.eq_ignore_ascii_case("alu") || rest.eq_ignore_ascii_case("alus") {
                ModuleClass::Alu
            } else if rest.chars().count() == 1 {
                let c = rest.chars().next().expect("one char");
                match OpKind::from_symbol(c) {
                    Some(k) => ModuleClass::Op(k),
                    None => {
                        return Err(ParseModuleSetError {
                            component: comp.to_owned(),
                        })
                    }
                }
            } else {
                return Err(ParseModuleSetError {
                    component: comp.to_owned(),
                });
            };
            classes.extend(std::iter::repeat_n(class, count));
        }
        Ok(ModuleSet::new(classes))
    }
}

impl fmt::Display for ModuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Group runs of equal classes in first-appearance order.
        let mut groups: Vec<(ModuleClass, usize)> = Vec::new();
        for &c in &self.classes {
            match groups.iter_mut().find(|(gc, _)| *gc == c) {
                Some((_, n)) => *n += 1,
                None => groups.push((c, 1)),
            }
        }
        for (i, (c, n)) in groups.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_allocations() {
        for s in ["1+,1*", "1/,2*,2+,1&", "2+,1*,1-,1&,1|,1/", "1+,3ALU", "1+,2*,1-"] {
            let set: ModuleSet = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn parse_counts_and_classes() {
        let set: ModuleSet = "2+,1*".parse().unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.count(ModuleClass::Op(OpKind::Add)), 2);
        assert_eq!(set.count(ModuleClass::Op(OpKind::Mul)), 1);
        assert_eq!(set.class(0), ModuleClass::Op(OpKind::Add));
        assert_eq!(set.class(2), ModuleClass::Op(OpKind::Mul));
    }

    #[test]
    fn implicit_count_is_one() {
        let set: ModuleSet = "+,*".parse().unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn alu_supports_everything() {
        let set: ModuleSet = "1+,3ALU".parse().unwrap();
        assert_eq!(set.count(ModuleClass::Alu), 3);
        let mul_capable: Vec<usize> = set.supporting(OpKind::Mul).collect();
        assert_eq!(mul_capable, vec![1, 2, 3]);
        let add_capable: Vec<usize> = set.supporting(OpKind::Add).collect();
        assert_eq!(add_capable, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2?".parse::<ModuleSet>().is_err());
        assert!("".parse::<ModuleSet>().is_err());
        assert!("1+,,1*".parse::<ModuleSet>().is_err());
        assert!("1plus".parse::<ModuleSet>().is_err());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut set: ModuleSet =
            [ModuleClass::Op(OpKind::Add), ModuleClass::Alu].into_iter().collect();
        assert_eq!(set.len(), 2);
        set.extend([ModuleClass::Op(OpKind::Mul)]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.class(2), ModuleClass::Op(OpKind::Mul));
    }

    #[test]
    fn display_round_trips() {
        for s in ["1+,2*,1-", "1+,3ALU", "1/,2*,2+,1&"] {
            let set: ModuleSet = s.parse().unwrap();
            let printed = set.to_string();
            let reparsed: ModuleSet = printed.parse().unwrap();
            assert_eq!(set, reparsed, "{s} -> {printed}");
        }
    }
}
