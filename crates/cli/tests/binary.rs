//! End-to-end smoke test of the built `lobist` binary.

use std::process::Command;

#[test]
fn binary_runs_the_suite() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .arg("suite")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Paulin"), "{text}");
}

#[test]
fn binary_reports_errors_on_stderr_with_nonzero_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args(["synth", "/nonexistent.dfg", "--modules", "1+"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn binary_help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .arg("help")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn binary_runs_a_parallel_batch() {
    let dir = std::env::temp_dir();
    let a = dir.join("lobist_bin_batch_a.dfg");
    let b = dir.join("lobist_bin_batch_b.dfg");
    std::fs::write(&a, "input a b\ny = a + b @ 1\noutput y\n").expect("write");
    std::fs::write(&b, "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n")
        .expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args([
            "batch",
            a.to_str().expect("utf8"),
            b.to_str().expect("utf8"),
            "--modules",
            "1+,1*",
            "--jobs",
            "2",
            "--metrics",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lobist_bin_batch_a.dfg"), "{text}");
    assert!(text.contains("lobist_bin_batch_b.dfg"), "{text}");
    assert!(text.contains("\"cache\":"), "{text}");
}

#[test]
fn binary_rejects_zero_jobs() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args(["explore", "x.dfg", "--candidates", "1+", "--jobs", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs 0"), "{err}");
}

#[test]
fn binary_lints_a_clean_design_and_exits_zero() {
    let path = std::env::temp_dir().join("lobist_bin_lint.dfg");
    std::fs::write(
        &path,
        "input a b c d\ns1 = a + b @ 1\ns2 = c + d @ 2\ny = s1 * s2 @ 3\noutput y\n",
    )
    .expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args([
            "lint",
            path.to_str().expect("utf8"),
            "--modules",
            "1+,1*",
            "--deny",
            "all",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lint: clean"), "{text}");
}

#[test]
fn binary_lint_rejects_unknown_codes_with_nonzero_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args(["lint", "x.dfg", "--modules", "1+", "--deny", "Q123"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown lint code"), "{err}");
}

#[test]
fn binary_help_documents_jobs_flag() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .arg("help")
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--jobs"), "{text}");
    assert!(text.contains("batch"), "{text}");
}
