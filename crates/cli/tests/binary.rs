//! End-to-end smoke test of the built `lobist` binary.

use std::process::Command;

#[test]
fn binary_runs_the_suite() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .arg("suite")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Paulin"), "{text}");
}

#[test]
fn binary_reports_errors_on_stderr_with_nonzero_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .args(["synth", "/nonexistent.dfg", "--modules", "1+"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn binary_help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_lobist"))
        .arg("help")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
