//! Command-line interface for BIST-aware data path synthesis.
//!
//! ```text
//! lobist synth <design.dfg> --modules "1+,1*" [--flow testable|traditional]
//!        [--width N] [--port-inputs] [--netlist] [--trace]
//! lobist compare <design.dfg> --modules "1+,1*" [--width N] [--port-inputs]
//! lobist suite
//! ```
//!
//! The design file uses the text format of [`lobist_dfg::parse`]. All
//! command logic lives in [`run`], which returns the output as a string
//! so the test suite can drive it without a subprocess.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use lobist_alloc::flow::{synthesize, Design, FlowError, FlowOptions};
use lobist_datapath::area::AreaModel;
use lobist_dfg::lifetime::LifetimeOptions;
use lobist_dfg::modules::ModuleSet;
use lobist_dfg::parse::parse_dfg;
use lobist_lint::{Code, LintPolicy, LintUnit, PassRegistry, Report};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Could not read the design file.
    Io(String, std::io::Error),
    /// The design file failed to parse.
    Parse(lobist_dfg::parse::ParseDfgError),
    /// The module set string failed to parse.
    Modules(lobist_dfg::modules::ParseModuleSetError),
    /// Synthesis failed.
    Flow(FlowError),
    /// Lint findings were denied by the active policy. Carries the full
    /// report text so the binary can still print it before exiting
    /// nonzero.
    Lint {
        /// Everything the command produced up to and including the
        /// report (belongs on stdout).
        output: String,
        /// How many findings the policy denied.
        denied: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(path, e) => write!(f, "cannot read `{path}`: {e}"),
            CliError::Parse(e) => write!(f, "design file: {e}"),
            CliError::Modules(e) => write!(f, "--modules: {e}"),
            CliError::Flow(e) => write!(f, "synthesis failed: {e}"),
            CliError::Lint { denied, .. } => {
                write!(f, "lint: {denied} finding(s) denied by policy")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
lobist — BIST-aware data path synthesis (DAC'95 reproduction)

USAGE:
  lobist synth <design.dfg> --modules <SET> [OPTIONS]
  lobist compare <design.dfg> --modules <SET> [OPTIONS]
  lobist schedule <design.dfg> --latency <N>
  lobist faultsim <design.dfg> --modules <SET> [--jobs <N>] [--lanes <W>]
                  [--metrics] [OPTIONS]
  lobist explore <design.dfg> --candidates <SET;SET;...> [--jobs <N>] [--metrics]
  lobist batch [<design.dfg>... | -] --modules <SET> [--faultsim] [--jobs <N>]
               [--lanes <W>] [--metrics]
  lobist corpus [--sizes <N,N,...>] [--seed <S>] [--permute <S>]
                [--twin-kernels <S>] [--out <DIR>]
  lobist anneal <design.dfg> --modules <SET> [--iterations <N>] [--seed <S>]
                [--batch <K>] [--chains <C>] [--jobs <N>] [--metrics]
  lobist lint <design.dfg> --modules <SET> [--deny <CODE|all>] [--allow <CODE>]
              [--json] [--jobs <N>] [--metrics] [OPTIONS]
  lobist analyze <design.dfg> --modules <SET> [--json] [--full] [--jobs <N>]
              [--metrics] [OPTIONS]
  lobist serve [--tcp <ADDR>] [--unix <PATH>] [--store <FILE>] [--jobs <N>]
               [--max-request-jobs <N>] [--max-active <N>] [--metrics]
  lobist submit [<design.dfg>] [--cmd <C>] [--tcp <ADDR> | --unix <PATH>]
                [--modules <SET>] [OPTIONS]
  lobist suite

COMMANDS:
  synth     synthesize one design and report its BIST solution
  compare   run the testable and traditional flows side by side
  schedule  force-directed-schedule an unscheduled design (steps optional)
  faultsim  gate-level stuck-at fault simulation of the BIST sessions
  explore   Pareto exploration over candidate module allocations
  batch     synthesize many design files in one parallel run; reads a
            path list from stdin when no files are given (or with `-`),
            so `lobist corpus ... | lobist batch ...` composes
  corpus    emit the parametric scaling corpus (seeded, size-swept
            fir/iir/matmul/diffeq instances) and print one design path
            per line
  anneal    simulated-annealing register search (yardstick for the
            constructive heuristic); deterministic for any --jobs value
  lint      synthesize, then run the static verifier passes (netlist
            structure L0xx, allocation invariants A1xx, BIST legality
            B2xx); exits nonzero if the policy denies any finding
  analyze   synthesize, then run the static testability analyses (COP
            detection probabilities, constant/redundant faults, test-mode
            register reachability) over every module cone — no
            simulation; advisory, always exits zero
  serve     run the persistent synthesis daemon: line-delimited JSON
            over TCP and/or a Unix socket, request queue onto the shared
            engine, optional on-disk content-addressed result store
  submit    send one request to a running daemon and print its streamed
            JSONL response
  suite     run the five paper benchmarks (Table I summary)

OPTIONS:
  --modules <SET>   functional units, e.g. \"1+,2*,1-\" or \"1+,3ALU\"
  --flow <F>        testable (default) | traditional
  --width <N>       data-path bit width (default 8)
  --port-inputs     primary inputs live on ports (not registers)
  --netlist         print the structural netlist
  --trace           print the allocator's decision trace (testable flow)
  --verilog         emit the synthesized design as Verilog RTL
  --json            machine-readable output for `synth` and `compare`
  --full            `analyze`: list every fault score, not just the
                    flagged ones
  --repair          insert test points for otherwise-untestable modules
  --latency <N>     target latency for `schedule` (default: critical path)
  --candidates <L>  semicolon-separated module sets for `explore`
  --iterations <N>  evaluated moves for `anneal` (default 400)
  --seed <S>        RNG seed for `anneal` (decimal or 0x hex)
  --batch <K>       candidate moves speculated per `anneal` step
                    (default 1; a pure performance knob — the committed
                    trajectory is identical for every K)
  --chains <C>      independent `anneal` chains, merged best-of
                    (default 1; chain 0 reproduces the serial run)
  --deny <C|all>    deny a lint code (repeatable) on top of the default
                    policy (errors denied, warnings allowed); `all`
                    denies every finding including warnings
  --allow <CODE>    never deny a lint code (repeatable; overrides any
                    deny rule)
  --lint            after `explore`/`batch`, lint every synthesized
                    design and fail if the policy denies a finding
  --faultsim        after `batch`, fault-simulate the BIST sessions of
                    every synthesized design and append coverage lines
  --lanes <W>       fault-simulation lane width: 64 | 256 | 512 | auto
                    (default auto — 256 for sessions of ≥192 patterns,
                    64 for coverage; byte-identical at every width)
  --sizes <L>       comma-separated size sweep for `corpus`
                    (default 8,16)
  --permute <S>     `corpus`: also emit a seeded isomorphic twin of
                    every design (names rewritten, declarations
                    reordered) — structurally identical, textually
                    disjoint, so a canonical-cache batch answers the
                    twins as iso hits
  --canon <on|off>  isomorphism-level cache keys for `explore`/`batch`/
                    `serve` (default on): a renamed/reordered twin of a
                    cached design is answered from cache, remapped,
                    byte-identically; `off` restores exact-text keying
  --subcanon <on|off>  subgraph-level fragment tier for `explore`/
                    `batch`/`serve` (default on): the shift-invariant
                    synthesis core is memoized by rebased canonical
                    encoding and canonical DFG fragments are tracked
                    across designs, so twin kernels inside otherwise
                    different designs reuse work; results are
                    byte-identical either way
  --twin-kernels <S>  `corpus`: also emit a scheduled sibling of every
                    design, permute-renamed and schedule-shifted by one
                    step — not whole-design isomorphic, but identical in
                    its rebased synthesis core, so a batch over the list
                    (with matching --modules) exercises the subcanon
                    tier
  --out <DIR>       output directory for `corpus` (default
                    lobist-corpus)
  --jobs <N>        worker threads for `explore`/`batch`/`faultsim`/
                    `anneal`/`lint` (default: all cores; at least 1)
  --tcp <ADDR>      daemon TCP address: listen address for `serve`
                    (default 127.0.0.1:7420 unless --unix is given),
                    connect address for `submit`
  --unix <PATH>     daemon Unix socket path (listen for `serve`,
                    connect for `submit`)
  --store <FILE>    `serve`: durable content-addressed result store
                    (append-only log; repeated jobs are answered from
                    disk across restarts, byte-identically)
  --store-max-bytes <N>  `serve`: store size budget before compaction
  --max-request-jobs <N> `serve`: ceiling on any request's `jobs` field
  --max-active <N>  `serve`: requests allowed to execute concurrently
  --cmd <C>         `submit` command: synth | explore | anneal |
                    faultsim | lint | analyze | ping | metrics | shutdown
                    (default synth)
  --progress        `batch`: stream engine progress as JSONL (flushed
                    per event) and append a terminal done record
  --metrics         print engine metrics as JSON after `explore`/`batch`/
                    `faultsim`/`anneal`/`lint` (fault-sim counters: cone
                    evaluations, events propagated, faults collapsed;
                    anneal counters: moves, stalls, oracle hit rate;
                    lint counters: runs, findings, per-pass timings)

DESIGN FILE FORMAT (one statement per line):
  input a b c
  s = a + b @ 1      # result = lhs OP rhs @ control-step
  y = s * c @ 2      # operators: + - * / & | ^ <
  output y
";

struct Options {
    modules: Option<String>,
    flow: String,
    width: u32,
    port_inputs: bool,
    netlist: bool,
    trace: bool,
    verilog: bool,
    json: bool,
    full: bool,
    repair: bool,
    latency: Option<u32>,
    candidates: Option<String>,
    jobs: Option<usize>,
    metrics: bool,
    iterations: Option<u32>,
    seed: Option<u64>,
    batch: Option<u32>,
    chains: Option<usize>,
    deny: Vec<String>,
    allow: Vec<String>,
    lint: bool,
    tcp: Option<String>,
    unix_sock: Option<String>,
    store: Option<String>,
    store_max_bytes: Option<u64>,
    max_request_jobs: Option<usize>,
    max_active: Option<usize>,
    cmd: Option<String>,
    progress: bool,
    faultsim: bool,
    lanes: lobist_engine::LaneSelect,
    sizes: Option<String>,
    out_dir: Option<String>,
    permute: Option<u64>,
    twin_kernels: Option<u64>,
    canon: bool,
    subcanon: bool,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        modules: None,
        flow: "testable".to_owned(),
        width: 8,
        port_inputs: false,
        netlist: false,
        trace: false,
        verilog: false,
        json: false,
        full: false,
        repair: false,
        latency: None,
        candidates: None,
        jobs: None,
        metrics: false,
        iterations: None,
        seed: None,
        batch: None,
        chains: None,
        deny: Vec::new(),
        allow: Vec::new(),
        lint: false,
        tcp: None,
        unix_sock: None,
        store: None,
        store_max_bytes: None,
        max_request_jobs: None,
        max_active: None,
        cmd: None,
        progress: false,
        faultsim: false,
        lanes: lobist_engine::LaneSelect::Auto,
        sizes: None,
        out_dir: None,
        permute: None,
        twin_kernels: None,
        canon: true,
        subcanon: true,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--modules" => {
                o.modules = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--modules needs a value".into()))?
                        .clone(),
                )
            }
            "--flow" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--flow needs a value".into()))?;
                if v != "testable" && v != "traditional" {
                    return Err(CliError::Usage(format!("unknown flow `{v}`")));
                }
                o.flow = v.clone();
            }
            "--width" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--width needs a value".into()))?;
                o.width = v
                    .parse()
                    .ok()
                    .filter(|w| (2..=64).contains(w))
                    .ok_or_else(|| CliError::Usage(format!("bad width `{v}` (expected 2..=64)")))?;
            }
            "--port-inputs" => o.port_inputs = true,
            "--netlist" => o.netlist = true,
            "--trace" => o.trace = true,
            "--verilog" => o.verilog = true,
            "--json" => o.json = true,
            "--full" => o.full = true,
            "--repair" => o.repair = true,
            "--candidates" => {
                o.candidates = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--candidates needs a value".into()))?
                        .clone(),
                )
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--jobs needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad job count `{v}`")))?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--jobs 0 makes no sense: the engine needs at least one worker".into(),
                    ));
                }
                o.jobs = Some(n);
            }
            "--metrics" => o.metrics = true,
            "--iterations" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--iterations needs a value".into()))?;
                o.iterations = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad iteration count `{v}`")))?,
                );
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed needs a value".into()))?;
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                o.seed = Some(parsed.map_err(|_| CliError::Usage(format!("bad seed `{v}`")))?);
            }
            "--batch" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--batch needs a value".into()))?;
                let k: u32 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad batch size `{v}`")))?;
                if k == 0 {
                    return Err(CliError::Usage("--batch must be at least 1".into()));
                }
                o.batch = Some(k);
            }
            "--chains" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--chains needs a value".into()))?;
                let c: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chain count `{v}`")))?;
                if c == 0 {
                    return Err(CliError::Usage("--chains must be at least 1".into()));
                }
                o.chains = Some(c);
            }
            "--deny" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--deny needs a value".into()))?;
                o.deny.push(v.clone());
            }
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--allow needs a value".into()))?;
                o.allow.push(v.clone());
            }
            "--lint" => o.lint = true,
            "--progress" => o.progress = true,
            "--faultsim" => o.faultsim = true,
            "--lanes" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--lanes needs a value".into()))?;
                o.lanes = lobist_engine::LaneSelect::parse(v).ok_or_else(|| {
                    CliError::Usage(format!(
                        "bad lane width `{v}` (expected 64, 256, 512 or auto)"
                    ))
                })?;
            }
            "--permute" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--permute needs a seed".into()))?;
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                o.permute =
                    Some(parsed.map_err(|_| CliError::Usage(format!("bad permute seed `{v}`")))?);
            }
            "--canon" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--canon needs on|off".into()))?;
                o.canon = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(CliError::Usage(format!(
                            "bad --canon value `{other}` (expected on|off)"
                        )))
                    }
                };
            }
            "--subcanon" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--subcanon needs on|off".into()))?;
                o.subcanon = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(CliError::Usage(format!(
                            "bad --subcanon value `{other}` (expected on|off)"
                        )))
                    }
                };
            }
            "--twin-kernels" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--twin-kernels needs a seed".into()))?;
                let parsed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse(), |hex| u64::from_str_radix(hex, 16));
                o.twin_kernels = Some(
                    parsed.map_err(|_| CliError::Usage(format!("bad twin-kernels seed `{v}`")))?,
                );
            }
            "--sizes" => {
                o.sizes = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--sizes needs a value".into()))?
                        .clone(),
                )
            }
            "--out" => {
                o.out_dir = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--out needs a directory".into()))?
                        .clone(),
                )
            }
            "--tcp" => {
                o.tcp = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--tcp needs an address".into()))?
                        .clone(),
                )
            }
            "--unix" => {
                o.unix_sock = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--unix needs a path".into()))?
                        .clone(),
                )
            }
            "--store" => {
                o.store = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--store needs a path".into()))?
                        .clone(),
                )
            }
            "--store-max-bytes" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--store-max-bytes needs a value".into()))?;
                let n: u64 = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad store budget `{v}`")))?;
                o.store_max_bytes = Some(n);
            }
            "--max-request-jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-request-jobs needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::Usage(format!("bad request-job ceiling `{v}`")))?;
                o.max_request_jobs = Some(n);
            }
            "--max-active" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-active needs a value".into()))?;
                let n: usize =
                    v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        CliError::Usage(format!("bad active-request count `{v}`"))
                    })?;
                o.max_active = Some(n);
            }
            "--cmd" => {
                o.cmd = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--cmd needs a value".into()))?
                        .clone(),
                )
            }
            "--latency" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--latency needs a value".into()))?;
                o.latency = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad latency `{v}`")))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option `{other}`")))
            }
            other => o.positional.push(other.to_owned()),
        }
    }
    Ok(o)
}

/// The engine worker budget: `--jobs` if given, otherwise every
/// available core.
fn worker_count(o: &Options) -> usize {
    o.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

fn flow_options(o: &Options, traditional: bool) -> FlowOptions {
    let mut f = if traditional {
        FlowOptions::traditional()
    } else {
        FlowOptions::testable()
    };
    f.area = AreaModel::with_width(o.width);
    f.lifetime_options = if o.port_inputs {
        LifetimeOptions::port_inputs()
    } else {
        LifetimeOptions::registered_inputs()
    };
    f.repair_untestable = o.repair;
    f
}

fn load_design(
    o: &Options,
) -> Result<(lobist_dfg::Dfg, lobist_dfg::Schedule, ModuleSet), CliError> {
    let path = o
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("missing design file".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
    let (dfg, schedule) = parse_dfg(&text).map_err(CliError::Parse)?;
    let modules: ModuleSet = o
        .modules
        .as_deref()
        .ok_or_else(|| CliError::Usage("missing --modules".into()))?
        .parse()
        .map_err(CliError::Modules)?;
    Ok((dfg, schedule, modules))
}

/// Renders one synthesized design as a JSON object (hand-rolled: the
/// schema is tiny and the crate stays dependency-free).
fn design_json(flow: &str, d: &lobist_alloc::flow::Design) -> String {
    use lobist_datapath::area::BistStyle;
    let styles: Vec<String> = d
        .bist
        .styles
        .iter()
        .map(|s| format!("\"{}\"", s.label()))
        .collect();
    let sessions: Vec<String> = d.bist.sessions.iter().map(u32::to_string).collect();
    format!(
        concat!(
            "{{\"flow\":\"{flow}\",\"registers\":{regs},\"muxes\":{muxes},",
            "\"functional_gates\":{func},\"bist\":{{\"overhead_gates\":{ov},",
            "\"overhead_percent\":{pct:.4},\"mix\":\"{mix}\",",
            "\"cbilbos\":{cb},\"styles\":[{styles}],\"sessions\":[{sessions}]}}}}"
        ),
        flow = flow,
        regs = d.data_path.num_registers(),
        muxes = d.data_path.num_muxes(),
        func = d.stats.functional_gates.get(),
        ov = d.bist.overhead.get(),
        pct = d.bist.overhead_percent,
        mix = d.bist.mix(),
        cb = d.bist.count(BistStyle::Cbilbo),
        styles = styles.join(","),
        sessions = sessions.join(","),
    )
}

/// Builds the lint policy from the repeatable `--deny`/`--allow` flags.
/// The baseline (no flags) denies errors and allows warnings.
fn lint_policy(o: &Options) -> Result<LintPolicy, CliError> {
    let mut policy = LintPolicy::new();
    for name in &o.deny {
        if name == "all" {
            policy.deny_all = true;
        } else {
            let code = Code::parse(name)
                .ok_or_else(|| CliError::Usage(format!("--deny: unknown lint code `{name}`")))?;
            policy.deny.insert(code);
        }
    }
    for name in &o.allow {
        let code = Code::parse(name)
            .ok_or_else(|| CliError::Usage(format!("--allow: unknown lint code `{name}`")))?;
        policy.allow.insert(code);
    }
    Ok(policy)
}

/// Lints one synthesized design on the worker pool.
fn lint_design(
    dfg: &lobist_dfg::Dfg,
    schedule: &lobist_dfg::Schedule,
    design: &Design,
    flow: &FlowOptions,
    workers: usize,
    metrics: Option<&lobist_engine::Metrics>,
) -> (Report, lobist_engine::LintRunStats) {
    let unit = LintUnit::of_design(dfg, schedule, design, flow.lifetime_options, &flow.area);
    let registry = PassRegistry::default_registry();
    lobist_engine::lint_parallel(&unit, &registry, workers, metrics)
}

/// The `"timing"` object spliced into `lint --json` output: run wall
/// time plus a per-pass log2-microsecond histogram (same bucketing as
/// the engine metrics), so a saved report is self-contained.
fn lint_timing_json(stats: &lobist_engine::LintRunStats) -> String {
    use std::fmt::Write as _;
    let mut passes = String::new();
    for (i, (name, took)) in stats.passes.iter().enumerate() {
        if i > 0 {
            passes.push(',');
        }
        let mut hist = vec![0u64; lobist_engine::bucket_micros(took.as_micros()) + 1];
        *hist.last_mut().expect("nonempty histogram") = 1;
        let cells: Vec<String> = hist.iter().map(u64::to_string).collect();
        let _ = write!(passes, "\"{}\": [{}]", name, cells.join(","));
    }
    format!(
        "{{\"wall_micros\": {}, \"workers\": {}, \"pass_micros_log2_histograms\": {{{passes}}}}}",
        stats.wall.as_micros(),
        stats.workers,
    )
}

/// Runs the BIST sessions of every module of a synthesized design on
/// the parallel fault simulator, recording each run into `metrics`.
/// Returns `(module label, session report)` rows in module order.
fn fault_sim_design(
    dfg: &lobist_dfg::Dfg,
    d: &Design,
    width: u32,
    sim_opts: lobist_engine::FaultSimOptions,
    metrics: &lobist_engine::Metrics,
) -> Vec<(String, lobist_gatesim::bist_mode::SessionReport)> {
    use lobist_dfg::modules::ModuleClass;
    let patterns = lobist_gatesim::lfsr::max_useful_patterns(width);
    let mut rows = Vec::new();
    for m in d.data_path.module_ids() {
        let seeds = (0xACE1 + m.index() as u64, 0x1BAD + m.index() as u64);
        let (report, stats) = match d.data_path.module_class(m) {
            ModuleClass::Op(kind) => {
                let net = lobist_gatesim::modules::unit_for(kind, width);
                lobist_engine::bist_session_parallel(&net, &[], width, patterns, seeds, sim_opts)
            }
            ModuleClass::Alu => {
                let mut kinds: Vec<lobist_dfg::OpKind> = d
                    .data_path
                    .module_ops(m)
                    .iter()
                    .map(|&op| dfg.op(op).kind)
                    .collect();
                kinds.sort();
                kinds.dedup();
                let net = lobist_gatesim::modules::alu(&kinds, width);
                let mut controls = vec![false; kinds.len()];
                controls[0] = true;
                lobist_engine::bist_session_parallel(
                    &net, &controls, width, patterns, seeds, sim_opts,
                )
            }
        };
        metrics.record_fault_sim(&stats);
        rows.push((
            format!("M{} ({})", m.index() + 1, d.data_path.module_class(m)),
            report,
        ));
    }
    rows
}

/// Appends one design's lint verdict to `out` (the `--lint` gate format).
fn append_lint_verdict(out: &mut String, label: &str, report: &Report) {
    use std::fmt::Write as _;
    if report.is_clean() {
        let _ = writeln!(out, "lint {label}: clean");
    } else {
        let _ = writeln!(
            out,
            "lint {label}: {} error(s), {} warning(s)",
            report.error_count(),
            report.warning_count()
        );
        out.push_str(&report.render_text());
    }
}

/// Executes a CLI invocation, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, unreadable or invalid design
/// files, and synthesis failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let o = parse_args(args)?;
    let command = o.positional.first().map(String::as_str).unwrap_or("help");
    let mut out = String::new();
    match command {
        "help" | "--help" | "-h" => out.push_str(USAGE),
        "synth" => {
            let (dfg, schedule, modules) = load_design(&o)?;
            let opts = flow_options(&o, o.flow == "traditional");
            let d = synthesize(&dfg, &schedule, &modules, &opts).map_err(CliError::Flow)?;
            if o.json {
                let _ = writeln!(out, "{}", design_json(&o.flow, &d));
                return Ok(out);
            }
            let _ = writeln!(
                out,
                "{} flow: {} registers, {} muxes, {} functional gates",
                o.flow,
                d.data_path.num_registers(),
                d.data_path.num_muxes(),
                d.stats.functional_gates.get()
            );
            let _ = write!(out, "{}", d.bist);
            if o.netlist {
                let _ = writeln!(out, "\nNetlist:");
                let _ = write!(
                    out,
                    "{}",
                    lobist_datapath::stats::describe(&d.data_path, &dfg)
                );
            }
            if o.trace {
                if let Some(trace) = &d.trace {
                    let _ = writeln!(out, "\nAllocator trace:");
                    let _ = write!(out, "{trace}");
                } else {
                    let _ = writeln!(out, "\n(no trace: traditional flow)");
                }
            }
            if o.verilog {
                let _ = writeln!(out, "\n// ---- Verilog ----");
                let _ = write!(
                    out,
                    "{}",
                    lobist_datapath::verilog::to_verilog(
                        &d.data_path,
                        &dfg,
                        &schedule,
                        "lobist_design",
                        o.width,
                    )
                );
            }
        }
        "compare" => {
            let (dfg, schedule, modules) = load_design(&o)?;
            let mut rows = Vec::new();
            for (label, traditional) in [("testable", false), ("traditional", true)] {
                let opts = flow_options(&o, traditional);
                let d = synthesize(&dfg, &schedule, &modules, &opts).map_err(CliError::Flow)?;
                rows.push((label, d));
            }
            if o.json {
                let items: Vec<String> = rows.iter().map(|(l, d)| design_json(l, d)).collect();
                let _ = writeln!(out, "[{}]", items.join(","));
                return Ok(out);
            }
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>5} {:>12} {:>22} {:>8}",
                "flow", "reg", "mux", "func gates", "BIST mix", "BIST %"
            );
            for (label, d) in &rows {
                let _ = writeln!(
                    out,
                    "{:<12} {:>4} {:>5} {:>12} {:>22} {:>7.2}%",
                    label,
                    d.data_path.num_registers(),
                    d.data_path.num_muxes(),
                    d.stats.functional_gates.get(),
                    d.bist.mix(),
                    d.bist.overhead_percent
                );
            }
            let (_, t) = &rows[0];
            let (_, tr) = &rows[1];
            if tr.bist.overhead.get() > 0 {
                let red = 100.0 * (tr.bist.overhead.get() as f64 - t.bist.overhead.get() as f64)
                    / tr.bist.overhead.get() as f64;
                let _ = writeln!(out, "BIST area reduction: {red:.1}%");
            }
        }
        "schedule" => {
            let path = o
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("missing design file".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
            let dfg = lobist_dfg::parse::parse_unscheduled_dfg(&text).map_err(CliError::Parse)?;
            let critical = lobist_dfg::scheduling::asap(&dfg).max_step();
            let latency = o.latency.unwrap_or(critical);
            let schedule = lobist_dfg::fds::force_directed_schedule(&dfg, latency)
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let _ = writeln!(
                out,
                "force-directed schedule, latency {latency} (critical path {critical}):"
            );
            for step in 1..=schedule.max_step() {
                let ops: Vec<String> = schedule
                    .ops_in_step(step)
                    .iter()
                    .map(|&op| dfg.var(dfg.op(op).out).name.clone())
                    .collect();
                let _ = writeln!(out, "  step {step}: {}", ops.join(", "));
            }
            let peaks = lobist_dfg::fds::peak_usage(&dfg, &schedule);
            let mut peaks: Vec<(String, usize)> =
                peaks.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
            peaks.sort();
            let summary: Vec<String> = peaks.into_iter().map(|(k, c)| format!("{c}{k}")).collect();
            let _ = writeln!(out, "peak units: {}", summary.join(","));
            let _ = writeln!(out, "{}", lobist_dfg::parse::to_text(&dfg, &schedule));
        }
        "faultsim" => {
            let (dfg, schedule, modules) = load_design(&o)?;
            let opts = flow_options(&o, false);
            let d = synthesize(&dfg, &schedule, &modules, &opts).map_err(CliError::Flow)?;
            let width = o.width.clamp(2, 32);
            let patterns = lobist_gatesim::lfsr::max_useful_patterns(width);
            // The sessions run on the engine's cone-limited differential
            // simulator: faults are collapsed into structural
            // equivalence classes and the classes partitioned across the
            // worker pool; the report is byte-identical to a serial,
            // uncollapsed, 64-lane run for any --jobs or --lanes value.
            let sim_opts = lobist_engine::FaultSimOptions {
                workers: worker_count(&o),
                collapse: true,
                lanes: o.lanes,
            };
            let metrics = lobist_engine::Metrics::new();
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>9} {:>11} {:>8}",
                "module", "faults", "ideal", "signature", "aliased"
            );
            for (label, report) in fault_sim_design(&dfg, &d, width, sim_opts, &metrics) {
                let _ = writeln!(
                    out,
                    "{:<10} {:>7} {:>8.1}% {:>10.1}% {:>8}",
                    label,
                    report.total_faults,
                    report.detected_ideal as f64 * 100.0 / report.total_faults.max(1) as f64,
                    report.coverage() * 100.0,
                    report.aliased()
                );
            }
            let _ = writeln!(out, "({patterns} patterns per session, width {width})");
            if o.metrics {
                let _ = writeln!(out, "{}", metrics.snapshot().to_json());
            }
        }
        "explore" => {
            let path = o
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("missing design file".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
            let dfg = lobist_dfg::parse::parse_unscheduled_dfg(&text).map_err(CliError::Parse)?;
            let candidates: Vec<ModuleSet> = o
                .candidates
                .as_deref()
                .ok_or_else(|| CliError::Usage("missing --candidates".into()))?
                .split(';')
                .map(|s| s.trim().parse().map_err(CliError::Modules))
                .collect::<Result<_, _>>()?;
            let mut config = lobist_alloc::explore::ExploreConfig::new(candidates);
            config.flow = flow_options(&o, false);
            let engine = lobist_engine::Engine::new(worker_count(&o))
                .with_canon(o.canon)
                .with_subcanon(o.subcanon);
            let result = lobist_engine::explore_parallel(&dfg, &config, &engine);
            out.push_str(&lobist_engine::render_report(&result));
            if o.lint {
                let policy = lint_policy(&o)?;
                let mut denied = 0;
                for p in &result.points {
                    let d = synthesize(&dfg, &p.schedule, &p.modules, &config.flow)
                        .map_err(CliError::Flow)?;
                    let (report, _) =
                        lint_design(&dfg, &p.schedule, &d, &config.flow, worker_count(&o), None);
                    append_lint_verdict(
                        &mut out,
                        &format!("{} latency {}", p.modules, p.latency),
                        &report,
                    );
                    denied += policy.denied_count(&report);
                }
                if denied > 0 {
                    return Err(CliError::Lint {
                        output: out,
                        denied,
                    });
                }
            }
            if o.metrics {
                let _ = writeln!(out, "{}", engine.metrics().to_json());
            }
        }
        "batch" => {
            // Design list: positional paths, or — with `-` or an empty
            // list on a pipe — one path per stdin line, so
            // `lobist corpus ... | lobist batch ...` composes.
            let mut design_paths: Vec<String> = o.positional[1..].to_vec();
            let dash = design_paths == ["-"];
            if dash || design_paths.is_empty() {
                use std::io::{IsTerminal as _, Read as _};
                let mut stdin = std::io::stdin();
                if !dash && stdin.is_terminal() {
                    return Err(CliError::Usage(
                        "batch needs at least one design file (or a path list on stdin)".into(),
                    ));
                }
                let mut buf = String::new();
                stdin
                    .read_to_string(&mut buf)
                    .map_err(|e| CliError::Io("stdin".into(), e))?;
                design_paths = buf
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(str::to_owned)
                    .collect();
                if design_paths.is_empty() {
                    return Err(CliError::Usage(
                        "batch needs at least one design file (stdin listed none)".into(),
                    ));
                }
            }
            let modules: ModuleSet = o
                .modules
                .as_deref()
                .ok_or_else(|| CliError::Usage("missing --modules".into()))?
                .parse()
                .map_err(CliError::Modules)?;
            let flow = flow_options(&o, o.flow == "traditional");
            let mut jobs = Vec::new();
            let mut parsed = Vec::new();
            for path in &design_paths {
                let text =
                    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
                // Scheduled files keep their `@ step` annotations;
                // unscheduled ones get a resource-constrained list
                // schedule under the shared module set.
                let (dfg, schedule) = match parse_dfg(&text) {
                    Ok(parsed) => parsed,
                    Err(_) => {
                        let dfg = lobist_dfg::parse::parse_unscheduled_dfg(&text)
                            .map_err(CliError::Parse)?;
                        let schedule = lobist_dfg::scheduling::list_schedule(&dfg, &modules)
                            .map_err(|e| {
                                CliError::Usage(format!("{path}: cannot schedule: {e}"))
                            })?;
                        (dfg, schedule)
                    }
                };
                let dfg = std::sync::Arc::new(dfg);
                jobs.push(lobist_engine::Job {
                    dfg: dfg.clone(),
                    candidate: lobist_alloc::explore::Candidate {
                        modules: modules.clone(),
                        schedule: schedule.clone(),
                    },
                    flow: flow.clone(),
                    label: path.clone(),
                });
                parsed.push((dfg, schedule));
            }
            let mut engine = lobist_engine::Engine::new(worker_count(&o))
                .with_canon(o.canon)
                .with_subcanon(o.subcanon);
            if o.progress {
                // Stream each engine event as its own flushed JSONL
                // line so a pipe consumer sees progress live, not at
                // exit.
                engine = engine.with_progress(|line| {
                    use std::io::Write as _;
                    let mut stdout = std::io::stdout().lock();
                    let _ = writeln!(stdout, "{line}");
                    let _ = stdout.flush();
                });
            }
            let outcomes = engine.run(jobs);
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>5} {:>12} {:>10} {:>8}",
                "design", "latency", "regs", "func gates", "BIST gates", "BIST %"
            );
            for outcome in &outcomes {
                match &outcome.result {
                    Ok(p) => {
                        let _ = writeln!(
                            out,
                            "{:<28} {:>7} {:>5} {:>12} {:>10} {:>7.2}%",
                            outcome.label,
                            p.latency,
                            p.registers,
                            p.functional_gates.get(),
                            p.bist_gates.get(),
                            p.bist.overhead_percent
                        );
                    }
                    Err((_, e)) => {
                        let _ = writeln!(out, "failed {}: {e}", outcome.label);
                    }
                }
            }
            if o.progress {
                let failed = outcomes.iter().filter(|x| x.result.is_err()).count();
                let _ = writeln!(
                    out,
                    "{{\"event\":\"done\",\"designs\":{},\"ok\":{},\"failed\":{}}}",
                    outcomes.len(),
                    outcomes.len() - failed,
                    failed
                );
            }
            if o.faultsim {
                // Fault-simulate each synthesized design's BIST
                // sessions, recording the counters on the engine's
                // metrics so `--metrics` reports them.
                let width = o.width.clamp(2, 32);
                let sim_opts = lobist_engine::FaultSimOptions {
                    workers: worker_count(&o),
                    collapse: true,
                    lanes: o.lanes,
                };
                for (outcome, (dfg, schedule)) in outcomes.iter().zip(&parsed) {
                    if outcome.result.is_err() {
                        continue;
                    }
                    let d = synthesize(dfg, schedule, &modules, &flow).map_err(CliError::Flow)?;
                    for (label, report) in
                        fault_sim_design(dfg, &d, width, sim_opts, engine.metrics_handle())
                    {
                        let _ = writeln!(
                            out,
                            "faultsim {}: {label} {} faults, {:.1}% coverage, {} aliased",
                            outcome.label,
                            report.total_faults,
                            report.coverage() * 100.0,
                            report.aliased()
                        );
                    }
                }
            }
            if o.lint {
                let policy = lint_policy(&o)?;
                let workers = worker_count(&o);
                let mut denied = 0;
                for (outcome, (dfg, schedule)) in outcomes.iter().zip(&parsed) {
                    if outcome.result.is_err() {
                        continue;
                    }
                    let d = synthesize(dfg, schedule, &modules, &flow).map_err(CliError::Flow)?;
                    let (report, _) = lint_design(dfg, schedule, &d, &flow, workers, None);
                    append_lint_verdict(&mut out, &outcome.label, &report);
                    denied += policy.denied_count(&report);
                }
                if denied > 0 {
                    return Err(CliError::Lint {
                        output: out,
                        denied,
                    });
                }
            }
            if o.metrics {
                let _ = writeln!(out, "{}", engine.metrics().to_json());
            }
        }
        "corpus" => {
            let sizes: Vec<u32> =
                o.sizes
                    .as_deref()
                    .unwrap_or("8,16")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                            CliError::Usage(format!("bad corpus size `{}`", s.trim()))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            let seed = o.seed.unwrap_or(1);
            let dir = std::path::PathBuf::from(o.out_dir.as_deref().unwrap_or("lobist-corpus"));
            std::fs::create_dir_all(&dir)
                .map_err(|e| CliError::Io(dir.display().to_string(), e))?;
            // One path per line and nothing else, so the output pipes
            // straight into `lobist batch -`.
            for &size in &sizes {
                for kind in lobist_dfg::corpus::KINDS {
                    let dfg = lobist_dfg::corpus::generate(kind, size, seed);
                    let text = lobist_dfg::parse::to_text_unscheduled(&dfg);
                    let path = dir.join(format!("{}_n{size}_s{seed}.dfg", kind.name()));
                    std::fs::write(&path, text)
                        .map_err(|e| CliError::Io(path.display().to_string(), e))?;
                    let _ = writeln!(out, "{}", path.display());
                    // With `--permute`, a seeded isomorphic twin rides
                    // along: same structure, every name rewritten and
                    // every declaration reordered. A batch over the
                    // list then exercises the canonical cache — the
                    // twins are answered as iso hits.
                    if let Some(pseed) = o.permute {
                        let (twin, _, _) = lobist_dfg::canon::permute_dfg(&dfg, pseed);
                        let twin_text = lobist_dfg::parse::to_text_unscheduled(&twin);
                        let twin_path =
                            dir.join(format!("{}_n{size}_s{seed}_p{pseed}.dfg", kind.name()));
                        std::fs::write(&twin_path, twin_text)
                            .map_err(|e| CliError::Io(twin_path.display().to_string(), e))?;
                        let _ = writeln!(out, "{}", twin_path.display());
                    }
                    // With `--twin-kernels`, a *scheduled* sibling rides
                    // along: permute-renamed and shifted one control
                    // step later. It is not whole-design isomorphic to
                    // the base (the canonical job keys differ), but its
                    // rebased synthesis core is identical — a batch over
                    // the list (with matching --modules) answers it from
                    // the subcanon tier's core memo.
                    if let Some(kseed) = o.twin_kernels {
                        let modules: ModuleSet = o
                            .modules
                            .as_deref()
                            .unwrap_or("1+,1*,1-")
                            .parse()
                            .map_err(CliError::Modules)?;
                        let schedule = lobist_dfg::scheduling::list_schedule(&dfg, &modules)
                            .map_err(|e| {
                                CliError::Usage(format!(
                                    "corpus design does not schedule under `{modules}`: {e}"
                                ))
                            })?;
                        let (twin, twin_schedule, _) =
                            lobist_dfg::canon::permute_scheduled(&dfg, &schedule, kseed);
                        let steps: Vec<u32> =
                            twin_schedule.as_slice().iter().map(|s| s + 1).collect();
                        let moved = lobist_dfg::Schedule::new(&twin, steps)
                            .expect("uniform shifts stay topological");
                        let twin_text = lobist_dfg::parse::to_text(&twin, &moved);
                        let twin_path =
                            dir.join(format!("{}_n{size}_s{seed}_k{kseed}.dfg", kind.name()));
                        std::fs::write(&twin_path, twin_text)
                            .map_err(|e| CliError::Io(twin_path.display().to_string(), e))?;
                        let _ = writeln!(out, "{}", twin_path.display());
                    }
                }
            }
        }
        "anneal" => {
            let (dfg, schedule, modules) = load_design(&o)?;
            let flow = flow_options(&o, false);
            let ma = lobist_alloc::module_assign::assign_modules(&dfg, &schedule, &modules)
                .map_err(|e| CliError::Flow(e.into()))?;
            let config = lobist_alloc::anneal::AnnealConfig {
                iterations: o.iterations.unwrap_or(400),
                seed: o.seed.unwrap_or(0xA11EA1),
                batch: o.batch.unwrap_or(16),
                ..Default::default()
            };
            let workers = worker_count(&o);
            let chains = o.chains.unwrap_or(1);
            // One chain anneals with pool-backed speculative batches;
            // several run serial chains across the pool with a
            // deterministic best-of merge. Either way the report is
            // byte-identical for any --jobs value.
            let (result, stats) = if chains > 1 {
                lobist_engine::anneal_multichain(
                    &dfg,
                    &schedule,
                    flow.lifetime_options,
                    &ma,
                    &flow,
                    &config,
                    chains,
                    workers,
                )
            } else {
                lobist_engine::anneal_parallel(
                    &dfg,
                    &schedule,
                    flow.lifetime_options,
                    &ma,
                    &flow,
                    &config,
                    workers,
                )
            }
            .map_err(CliError::Flow)?;
            let heuristic = synthesize(&dfg, &schedule, &modules, &flow)
                .map(|d| d.bist.overhead.get())
                .ok();
            let _ = writeln!(
                out,
                "annealed search: {} iterations, seed 0x{:X}, batch {}, {} chain(s), {} worker(s)",
                config.iterations, config.seed, config.batch, chains, workers
            );
            let _ = writeln!(
                out,
                "initial (left-edge) overhead: {} gates",
                result.initial_overhead
            );
            let _ = writeln!(
                out,
                "annealed best overhead:       {} gates",
                result.overhead
            );
            if let Some(h) = heuristic {
                let _ = writeln!(out, "constructive heuristic:       {h} gates");
            }
            if chains > 1 {
                let per: Vec<String> = stats.chain_overheads.iter().map(u64::to_string).collect();
                let _ = writeln!(
                    out,
                    "chains: [{}] gates, best from chain {}",
                    per.join(", "),
                    stats.best_chain
                );
            }
            let _ = writeln!(
                out,
                "moves: {} evaluated, {} accepted, {} skipped, {} stalled, {} infeasible",
                result.evaluated,
                result.accepted,
                result.skipped,
                result.stalled,
                result.infeasible
            );
            let _ = writeln!(
                out,
                "oracle: {} hits / {} misses ({:.1}% hit rate), {:.0} moves/s",
                result.oracle_hits,
                result.oracle_misses,
                100.0 * result.oracle_hits as f64
                    / (result.oracle_hits + result.oracle_misses).max(1) as f64,
                stats.moves_per_sec(&result)
            );
            if o.metrics {
                let metrics = lobist_engine::Metrics::new();
                metrics.record_anneal(&result, &stats);
                let _ = writeln!(out, "{}", metrics.snapshot().to_json());
            }
        }
        "lint" => {
            let policy = lint_policy(&o)?;
            let path = o
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("missing design file".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
            let modules: ModuleSet = o
                .modules
                .as_deref()
                .ok_or_else(|| CliError::Usage("missing --modules".into()))?
                .parse()
                .map_err(CliError::Modules)?;
            // Same fallback as `batch`: unscheduled files get a
            // resource-constrained list schedule under the module set.
            let (dfg, schedule) = match parse_dfg(&text) {
                Ok(parsed) => parsed,
                Err(_) => {
                    let dfg =
                        lobist_dfg::parse::parse_unscheduled_dfg(&text).map_err(CliError::Parse)?;
                    let schedule = lobist_dfg::scheduling::list_schedule(&dfg, &modules)
                        .map_err(|e| CliError::Usage(format!("{path}: cannot schedule: {e}")))?;
                    (dfg, schedule)
                }
            };
            let flow = flow_options(&o, o.flow == "traditional");
            let d = synthesize(&dfg, &schedule, &modules, &flow).map_err(CliError::Flow)?;
            let metrics = o.metrics.then(lobist_engine::Metrics::new);
            let (report, stats) = lint_design(
                &dfg,
                &schedule,
                &d,
                &flow,
                worker_count(&o),
                metrics.as_ref(),
            );
            if o.json {
                // Splice the run timing in as the report's last key so
                // `lint --json` output is self-contained; the report
                // body itself stays byte-stable across worker counts.
                let json = report.to_json();
                let body = json
                    .strip_suffix("\n}")
                    .expect("report JSON ends with a closing brace");
                let _ = writeln!(
                    out,
                    "{body},\n  \"timing\": {}\n}}",
                    lint_timing_json(&stats)
                );
            } else if report.is_clean() {
                let _ = writeln!(
                    out,
                    "lint: clean ({} registers, {} modules audited)",
                    d.data_path.num_registers(),
                    d.data_path.num_modules()
                );
            } else {
                out.push_str(&report.render_text());
                let _ = writeln!(
                    out,
                    "lint: {} error(s), {} warning(s)",
                    report.error_count(),
                    report.warning_count()
                );
            }
            if let Some(m) = &metrics {
                let _ = writeln!(out, "{}", m.snapshot().to_json());
            }
            let denied = policy.denied_count(&report);
            if denied > 0 {
                return Err(CliError::Lint {
                    output: out,
                    denied,
                });
            }
        }
        "analyze" => {
            let path = o
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("missing design file".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
            let modules: ModuleSet = o
                .modules
                .as_deref()
                .ok_or_else(|| CliError::Usage("missing --modules".into()))?
                .parse()
                .map_err(CliError::Modules)?;
            // Same fallback as `lint`: unscheduled files get a
            // resource-constrained list schedule under the module set.
            let (dfg, schedule) = match parse_dfg(&text) {
                Ok(parsed) => parsed,
                Err(_) => {
                    let dfg =
                        lobist_dfg::parse::parse_unscheduled_dfg(&text).map_err(CliError::Parse)?;
                    let schedule = lobist_dfg::scheduling::list_schedule(&dfg, &modules)
                        .map_err(|e| CliError::Usage(format!("{path}: cannot schedule: {e}")))?;
                    (dfg, schedule)
                }
            };
            let flow = flow_options(&o, o.flow == "traditional");
            let d = synthesize(&dfg, &schedule, &modules, &flow).map_err(CliError::Flow)?;
            let unit = LintUnit::of_design(&dfg, &schedule, &d, flow.lifetime_options, &flow.area);
            let metrics = o.metrics.then(lobist_engine::Metrics::new);
            let (report, _) =
                lobist_engine::analyze_parallel(&unit, worker_count(&o), metrics.as_ref());
            if o.json {
                let _ = writeln!(out, "{}", report.to_json(o.full));
            } else {
                out.push_str(&report.render_text());
            }
            if let Some(m) = &metrics {
                let _ = writeln!(out, "{}", m.snapshot().to_json());
            }
        }
        "serve" => {
            use std::path::PathBuf;
            let workers = worker_count(&o);
            let unix = o.unix_sock.as_ref().map(PathBuf::from);
            // Default to loopback TCP unless the user asked for
            // Unix-only; both listeners run when both flags are given.
            let tcp = match (&o.tcp, &unix) {
                (Some(addr), _) => Some(addr.clone()),
                (None, Some(_)) => None,
                (None, None) => Some("127.0.0.1:7420".to_owned()),
            };
            let defaults = lobist_server::ServerConfig::default();
            let config = lobist_server::ServerConfig {
                tcp,
                unix,
                workers,
                max_request_jobs: o.max_request_jobs.unwrap_or(workers.max(1)),
                max_active: o.max_active.unwrap_or(defaults.max_active),
                store: o.store.as_ref().map(PathBuf::from),
                store_max_bytes: o.store_max_bytes.unwrap_or(defaults.store_max_bytes),
                canon: o.canon,
                subcanon: o.subcanon,
                ..defaults
            };
            let server =
                lobist_server::Server::bind(config).map_err(|e| CliError::Io("serve".into(), e))?;
            // Announce the endpoints on stdout immediately (before the
            // blocking run), so scripts binding an ephemeral `:0` port
            // can discover it and connect.
            {
                use std::io::Write as _;
                let tcp = server
                    .tcp_addr()
                    .map_or_else(|| "null".to_owned(), |a| format!("\"{a}\""));
                let unix = server
                    .unix_path()
                    .map_or_else(|| "null".to_owned(), |p| format!("\"{}\"", p.display()));
                let mut stdout = std::io::stdout().lock();
                let _ = writeln!(
                    stdout,
                    "{{\"event\":\"listening\",\"tcp\":{tcp},\"unix\":{unix}}}"
                );
                let _ = stdout.flush();
            }
            let handle = server.handle();
            server.run().map_err(|e| CliError::Io("serve".into(), e))?;
            let _ = writeln!(out, "{{\"event\":\"stopped\"}}");
            if o.metrics {
                let _ = writeln!(out, "{}", handle.metrics_json());
            }
        }
        "submit" => {
            let endpoint = if let Some(path) = &o.unix_sock {
                lobist_server::Endpoint::Unix(path.into())
            } else {
                lobist_server::Endpoint::Tcp(
                    o.tcp.clone().unwrap_or_else(|| "127.0.0.1:7420".to_owned()),
                )
            };
            let cmd = o.cmd.as_deref().unwrap_or("synth");
            let mut fields = vec![format!("\"cmd\":\"{cmd}\"")];
            if let Some(path) = o.positional.get(1) {
                let text =
                    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
                fields.push(format!(
                    "\"design\":\"{}\"",
                    lobist_server::json::escape(&text)
                ));
            }
            if let Some(m) = &o.modules {
                fields.push(format!(
                    "\"modules\":\"{}\"",
                    lobist_server::json::escape(m)
                ));
            }
            if let Some(c) = &o.candidates {
                fields.push(format!(
                    "\"candidates\":\"{}\"",
                    lobist_server::json::escape(c)
                ));
            }
            fields.push(format!("\"flow\":\"{}\"", o.flow));
            fields.push(format!("\"width\":{}", o.width));
            if o.repair {
                fields.push("\"repair\":true".to_owned());
            }
            if o.port_inputs {
                fields.push("\"port_inputs\":true".to_owned());
            }
            if let Some(j) = o.jobs {
                fields.push(format!("\"jobs\":{j}"));
            }
            if let Some(n) = o.iterations {
                fields.push(format!("\"iterations\":{n}"));
            }
            if let Some(seed) = o.seed {
                fields.push(format!("\"seed\":{seed}"));
            }
            if let Some(k) = o.batch {
                fields.push(format!("\"batch\":{k}"));
            }
            if let Some(c) = o.chains {
                fields.push(format!("\"chains\":{c}"));
            }
            if let Some(w) = o.lanes.fixed() {
                fields.push(format!("\"lanes\":{w}"));
            }
            let request = format!("{{{}}}", fields.join(","));
            let events = lobist_server::submit(&endpoint, &request)
                .map_err(|e| CliError::Io(endpoint.to_string(), e))?;
            for line in events {
                let _ = writeln!(out, "{line}");
            }
        }
        "suite" => {
            let _ = writeln!(
                out,
                "{:<8} {:<20} {:>4} {:>12} {:>12} {:>10}",
                "design", "modules", "reg", "trad BIST%", "test BIST%", "reduction"
            );
            for bench in lobist_dfg::benchmarks::paper_suite() {
                let mk = |traditional: bool| {
                    let mut f = if traditional {
                        FlowOptions::traditional()
                    } else {
                        FlowOptions::testable()
                    };
                    f.area = AreaModel::with_width(o.width);
                    f.lifetime_options = bench.lifetime_options;
                    f
                };
                let t = synthesize(
                    &bench.dfg,
                    &bench.schedule,
                    &bench.module_allocation,
                    &mk(false),
                )
                .map_err(CliError::Flow)?;
                let tr = synthesize(
                    &bench.dfg,
                    &bench.schedule,
                    &bench.module_allocation,
                    &mk(true),
                )
                .map_err(CliError::Flow)?;
                let red = 100.0 * (tr.bist.overhead.get() as f64 - t.bist.overhead.get() as f64)
                    / tr.bist.overhead.get() as f64;
                let _ = writeln!(
                    out,
                    "{:<8} {:<20} {:>4} {:>11.2}% {:>11.2}% {:>9.1}%",
                    bench.name,
                    bench.module_allocation.to_string(),
                    t.data_path.num_registers(),
                    tr.bist.overhead_percent,
                    t.bist.overhead_percent,
                    red
                );
            }
        }
        other => {
            return Err(CliError::Usage(format!("unknown command `{other}`")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, contents).expect("temp file");
        path.to_string_lossy().into_owned()
    }

    const DESIGN: &str = "input a b c d\n\
                          s1 = a + b @ 1\n\
                          s2 = c + d @ 2\n\
                          y = s1 * s2 @ 3\n\
                          output y\n";

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn synth_reports_bist_solution() {
        let path = write_temp("lobist_cli_synth.dfg", DESIGN);
        let out = run(&argv(&[
            "synth",
            &path,
            "--modules",
            "1+,1*",
            "--netlist",
            "--trace",
        ]))
        .unwrap();
        assert!(out.contains("testable flow: 3 registers"), "{out}");
        assert!(out.contains("BIST solution:"));
        assert!(out.contains("Netlist:"));
        assert!(out.contains("Allocator trace:"));
    }

    #[test]
    fn compare_shows_reduction() {
        let path = write_temp("lobist_cli_compare.dfg", DESIGN);
        let out = run(&argv(&["compare", &path, "--modules", "1+,1*"])).unwrap();
        assert!(out.contains("testable"));
        assert!(out.contains("traditional"));
        assert!(out.contains("BIST area reduction"), "{out}");
    }

    #[test]
    fn suite_lists_five_benchmarks() {
        let out = run(&argv(&["suite"])).unwrap();
        for name in ["ex1", "ex2", "Tseng1", "Tseng2", "Paulin"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn width_option_changes_costs() {
        let path = write_temp("lobist_cli_width.dfg", DESIGN);
        let narrow = run(&argv(&[
            "synth",
            &path,
            "--modules",
            "1+,1*",
            "--width",
            "4",
        ]))
        .unwrap();
        let wide = run(&argv(&[
            "synth",
            &path,
            "--modules",
            "1+,1*",
            "--width",
            "16",
        ]))
        .unwrap();
        assert_ne!(narrow, wide);
    }

    #[test]
    fn width_bounds_are_enforced() {
        let path = write_temp("lobist_cli_width_bounds.dfg", DESIGN);
        for bad in ["0", "1", "65", "-4", "wide"] {
            let err = run(&argv(&[
                "synth",
                &path,
                "--modules",
                "1+,1*",
                "--width",
                bad,
            ]))
            .unwrap_err();
            assert!(err.to_string().contains("bad width"), "{bad}: {err}");
        }
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run(&argv(&["synth"])), Err(CliError::Usage(_))));
        let path = write_temp("lobist_cli_err.dfg", DESIGN);
        assert!(matches!(
            run(&argv(&["synth", &path])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["synth", &path, "--modules", "9?"])),
            Err(CliError::Modules(_))
        ));
        assert!(matches!(run(&argv(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["synth", "/nonexistent/x.dfg", "--modules", "1+"])),
            Err(CliError::Io(..))
        ));
        let err = run(&argv(&[
            "synth",
            &path,
            "--flow",
            "magic",
            "--modules",
            "1+",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown flow"));
    }

    #[test]
    fn anneal_command_reports_the_search() {
        let path = write_temp("lobist_cli_anneal.dfg", DESIGN);
        let out = run(&argv(&[
            "anneal",
            &path,
            "--modules",
            "1+,1*",
            "--iterations",
            "40",
            "--seed",
            "0xBEEF",
        ]))
        .unwrap();
        assert!(
            out.contains("annealed search: 40 iterations, seed 0xBEEF"),
            "{out}"
        );
        assert!(out.contains("initial (left-edge) overhead:"), "{out}");
        assert!(out.contains("annealed best overhead:"), "{out}");
        assert!(out.contains("constructive heuristic:"), "{out}");
        assert!(out.contains("oracle:"), "{out}");
    }

    #[test]
    fn anneal_report_is_identical_for_any_jobs_value() {
        let path = write_temp("lobist_cli_anneal_jobs.dfg", DESIGN);
        let base = argv(&["anneal", &path, "--modules", "1+,1*", "--iterations", "30"]);
        let strip_rates = |s: String| {
            // Drop the header (it echoes --jobs) and the oracle line:
            // cache hit counts may differ when workers race to evaluate
            // the same coloring. Everything else is the committed
            // trajectory, which must not move.
            s.lines()
                .skip(1)
                .filter(|l| !l.starts_with("oracle:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let mut reference: Option<String> = None;
        for jobs in ["1", "2", "8"] {
            let mut args = base.clone();
            args.extend(argv(&["--jobs", jobs, "--batch", "8"]));
            let out = strip_rates(run(&args).unwrap());
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "--jobs {jobs} changed the report"),
            }
        }
    }

    #[test]
    fn anneal_multichain_runs_and_reports_chains() {
        let path = write_temp("lobist_cli_anneal_mc.dfg", DESIGN);
        let out = run(&argv(&[
            "anneal",
            &path,
            "--modules",
            "1+,1*",
            "--iterations",
            "20",
            "--chains",
            "3",
            "--jobs",
            "2",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("3 chain(s)"), "{out}");
        assert!(out.contains("best from chain"), "{out}");
        assert!(out.contains("\"anneal\":{\"runs\":1,\"chains\":3"), "{out}");
    }

    #[test]
    fn anneal_metrics_report_flow_cache_hits() {
        // The differential-equation benchmark the paper anneals (Paulin),
        // as parser text; 200 moves is plenty for the incremental layer's
        // stage caches to see repeated shapes.
        let paulin = "input x u dx y\n\
                      t1 = 3 * x @ 1\n\
                      t2 = u * dx @ 1\n\
                      xl = x + dx @ 1\n\
                      t3 = t1 * t2 @ 2\n\
                      t4 = 3 * y @ 2\n\
                      yl = y + t2 @ 2\n\
                      t5 = t4 * dx @ 3\n\
                      t6 = u - t3 @ 3\n\
                      ul = t6 - t5 @ 4\n\
                      output xl yl ul\n";
        let path = write_temp("lobist_cli_anneal_fc.dfg", paulin);
        let out = run(&argv(&[
            "anneal",
            &path,
            "--modules",
            "1+,2*,1-",
            "--iterations",
            "200",
            "--metrics",
        ]))
        .unwrap();
        let json = out.lines().last().expect("metrics line");
        let fc = json
            .split("\"flow_cache\":")
            .nth(1)
            .expect("flow_cache section in metrics JSON");
        // First stage counter in the section is the interconnect cache's.
        let hits: u64 = fc
            .split("\"hits\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .expect("interconnect hits counter");
        assert!(hits > 0, "flow-cache hit rate must be nonzero: {json}");
    }

    #[test]
    fn anneal_flag_validation() {
        let path = write_temp("lobist_cli_anneal_bad.dfg", DESIGN);
        for bad in [
            vec!["anneal", &path, "--modules", "1+,1*", "--batch", "0"],
            vec!["anneal", &path, "--modules", "1+,1*", "--chains", "0"],
            vec!["anneal", &path, "--modules", "1+,1*", "--seed", "zzz"],
            vec![
                "anneal",
                &path,
                "--modules",
                "1+,1*",
                "--iterations",
                "many",
            ],
            vec!["anneal", &path],
        ] {
            assert!(
                matches!(run(&argv(&bad)), Err(CliError::Usage(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn schedule_command_runs_fds() {
        let path = write_temp(
            "lobist_cli_sched.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&["schedule", &path, "--latency", "3"])).unwrap();
        assert!(out.contains("force-directed schedule"), "{out}");
        assert!(out.contains("step 3"), "{out}");
        assert!(out.contains("peak units"), "{out}");
        assert!(out.contains("@ "), "round-trip text emitted: {out}");
        // Too-tight latency reports the critical path.
        let err = run(&argv(&["schedule", &path, "--latency", "1"])).unwrap_err();
        assert!(err.to_string().contains("critical path"), "{err}");
    }

    #[test]
    fn repair_flag_rescues_untestable_designs() {
        let path = write_temp(
            "lobist_cli_repair.dfg",
            "input x y\nt = x * x @ 1\nu = t + y @ 2\noutput u\n",
        );
        let err = run(&argv(&["synth", &path, "--modules", "1*,1+"])).unwrap_err();
        assert!(err.to_string().contains("no BIST embedding"), "{err}");
        let out = run(&argv(&["synth", &path, "--modules", "1*,1+", "--repair"])).unwrap();
        assert!(out.contains("BIST solution:"), "{out}");
    }

    #[test]
    fn json_output_is_parseable_shape() {
        let path = write_temp("lobist_cli_json.dfg", DESIGN);
        let out = run(&argv(&["synth", &path, "--modules", "1+,1*", "--json"])).unwrap();
        let line = out.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for key in [
            "\"flow\":\"testable\"",
            "\"registers\":3",
            "\"overhead_gates\"",
            "\"styles\":[",
            "\"sessions\":[",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.matches('[').count(), line.matches(']').count());
        let both = run(&argv(&["compare", &path, "--modules", "1+,1*", "--json"])).unwrap();
        let line = both.trim();
        assert!(line.starts_with('[') && line.ends_with(']'), "{line}");
        assert!(line.contains("\"flow\":\"traditional\""), "{line}");
    }

    #[test]
    fn explore_lists_pareto_front() {
        let path = write_temp(
            "lobist_cli_explore.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&["explore", &path, "--candidates", "1+,1*;2+,1*"])).unwrap();
        assert!(out.contains("Pareto front"), "{out}");
        assert!(out.contains('*'), "{out}");
        assert!(out.contains("1+,1*"), "{out}");
    }

    #[test]
    fn explore_output_is_identical_across_worker_counts() {
        let path = write_temp(
            "lobist_cli_explore_jobs.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let base = argv(&["explore", &path, "--candidates", "1+,1*;2+,1*;1+,2*"]);
        let serial = run(&[base.clone(), argv(&["--jobs", "1"])].concat()).unwrap();
        let parallel = run(&[base.clone(), argv(&["--jobs", "4"])].concat()).unwrap();
        let default = run(&base).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, default);
    }

    #[test]
    fn jobs_zero_is_rejected_with_a_clear_error() {
        let path = write_temp("lobist_cli_jobs0.dfg", DESIGN);
        let err = run(&argv(&[
            "explore",
            &path,
            "--candidates",
            "1+,1*",
            "--jobs",
            "0",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("--jobs 0"), "{err}");
        let err = run(&argv(&[
            "explore",
            &path,
            "--candidates",
            "1+,1*",
            "--jobs",
            "many",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("bad job count"), "{err}");
    }

    #[test]
    fn batch_synthesizes_multiple_designs() {
        let scheduled = write_temp("lobist_cli_batch_a.dfg", DESIGN);
        let unscheduled = write_temp(
            "lobist_cli_batch_b.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&[
            "batch",
            &scheduled,
            &unscheduled,
            "--modules",
            "1+,1*",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("design"), "{out}");
        assert!(out.contains(&scheduled), "{out}");
        assert!(out.contains(&unscheduled), "{out}");
        // Both designs synthesize: two data rows with a BIST percentage.
        assert_eq!(
            out.matches('%').count() - usize::from(out.contains("BIST %")),
            2,
            "{out}"
        );
    }

    #[test]
    fn batch_requires_designs_and_modules() {
        let err = run(&argv(&["batch", "--modules", "1+"])).unwrap_err();
        assert!(err.to_string().contains("at least one design"), "{err}");
        let path = write_temp("lobist_cli_batch_nomod.dfg", DESIGN);
        let err = run(&argv(&["batch", &path])).unwrap_err();
        assert!(err.to_string().contains("missing --modules"), "{err}");
    }

    #[test]
    fn metrics_flag_appends_engine_json() {
        let path = write_temp("lobist_cli_metrics.dfg", DESIGN);
        let out = run(&argv(&[
            "batch",
            &path,
            "--modules",
            "1+,1*",
            "--jobs",
            "2",
            "--metrics",
        ]))
        .unwrap();
        let json = out.lines().last().expect("metrics line");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"jobs\":",
            "\"cache\":",
            "\"utilization\":",
            "\"stage_micros_log2_histograms\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn faultsim_reports_coverage() {
        let path = write_temp("lobist_cli_faultsim.dfg", DESIGN);
        let out = run(&argv(&[
            "faultsim",
            &path,
            "--modules",
            "1+,1*",
            "--width",
            "6",
        ]))
        .unwrap();
        assert!(out.contains("signature"), "{out}");
        assert!(out.contains("M1 (+)"), "{out}");
        assert!(out.contains("M2 (*)"), "{out}");
        assert!(out.contains("63 patterns per session, width 6"), "{out}");
    }

    #[test]
    fn faultsim_output_is_identical_across_worker_counts() {
        let path = write_temp("lobist_cli_faultsim_jobs.dfg", DESIGN);
        let runs: Vec<String> = ["1", "2", "5"]
            .iter()
            .map(|jobs| {
                run(&argv(&[
                    "faultsim",
                    &path,
                    "--modules",
                    "1+,1*",
                    "--width",
                    "5",
                    "--jobs",
                    jobs,
                ]))
                .unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn faultsim_metrics_flag_appends_fault_sim_json() {
        let path = write_temp("lobist_cli_faultsim_metrics.dfg", DESIGN);
        let out = run(&argv(&[
            "faultsim",
            &path,
            "--modules",
            "1+,1*",
            "--width",
            "5",
            "--metrics",
        ]))
        .unwrap();
        let json = out.lines().last().expect("metrics line");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"fault_sim\":",
            "\"cone_evals\":",
            "\"events_propagated\":",
            "\"collapsed_away\":",
            "\"wall_micros\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Both modules ran real differential work and collapsing bit.
        assert!(!json.contains("\"cone_evals\":0,"), "{json}");
        assert!(!json.contains("\"collapsed_away\":0,"), "{json}");
    }

    #[test]
    fn verilog_flag_emits_rtl() {
        let path = write_temp("lobist_cli_verilog.dfg", DESIGN);
        let out = run(&argv(&["synth", &path, "--modules", "1+,1*", "--verilog"])).unwrap();
        assert!(out.contains("module lobist_design ("), "{out}");
        assert!(out.contains("endmodule"), "{out}");
    }

    #[test]
    fn parse_errors_surface_line_numbers() {
        let path = write_temp("lobist_cli_bad.dfg", "input a\nthis is wrong\n");
        let err = run(&argv(&["synth", &path, "--modules", "1+"])).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn lint_reports_clean_on_a_shipped_design() {
        let path = write_temp("lobist_cli_lint.dfg", DESIGN);
        let out = run(&argv(&["lint", &path, "--modules", "1+,1*"])).unwrap();
        assert!(
            out.contains("lint: clean (3 registers, 2 modules audited)"),
            "{out}"
        );
        // `--deny all` also passes: the design really has no findings.
        let out = run(&argv(&[
            "lint",
            &path,
            "--modules",
            "1+,1*",
            "--deny",
            "all",
        ]))
        .unwrap();
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn lint_accepts_unscheduled_designs() {
        let path = write_temp(
            "lobist_cli_lint_unsched.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&["lint", &path, "--modules", "1+,1*"])).unwrap();
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn lint_json_lists_the_diagnostics_array() {
        let path = write_temp("lobist_cli_lint_json.dfg", DESIGN);
        let out = run(&argv(&["lint", &path, "--modules", "1+,1*", "--json"])).unwrap();
        assert!(out.contains("\"diagnostics\": []"), "{out}");
    }

    #[test]
    fn lint_output_is_identical_across_worker_counts() {
        let path = write_temp("lobist_cli_lint_jobs.dfg", DESIGN);
        let base = argv(&["lint", &path, "--modules", "1+,1*", "--json"]);
        let serial = run(&[base.clone(), argv(&["--jobs", "1"])].concat()).unwrap();
        let parallel = run(&[base, argv(&["--jobs", "4"])].concat()).unwrap();
        // Wall times differ run to run, so compare the report body —
        // everything before the spliced `"timing"` key.
        let body = |s: &str| s.split("\"timing\"").next().unwrap().to_owned();
        assert_eq!(body(&serial), body(&parallel));
    }

    #[test]
    fn lint_json_carries_per_pass_timing() {
        let path = write_temp("lobist_cli_lint_timing.dfg", DESIGN);
        let out = run(&argv(&["lint", &path, "--modules", "1+,1*", "--json"])).unwrap();
        assert!(out.contains("\"timing\": {\"wall_micros\": "), "{out}");
        assert!(out.contains("\"pass_micros_log2_histograms\""), "{out}");
        // Every default-registry pass reports a one-entry histogram.
        for pass in ["structure", "gates", "coloring", "binding", "bist-legality", "lemma2-audit"] {
            assert!(out.contains(&format!("\"{pass}\": [")), "{pass}: {out}");
        }
    }

    #[test]
    fn lint_rejects_unknown_codes() {
        let path = write_temp("lobist_cli_lint_bad.dfg", DESIGN);
        let err = run(&argv(&[
            "lint",
            &path,
            "--modules",
            "1+,1*",
            "--deny",
            "Z999",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown lint code `Z999`"),
            "{err}"
        );
        let err = run(&argv(&[
            "lint",
            &path,
            "--modules",
            "1+,1*",
            "--allow",
            "nope",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown lint code `nope`"),
            "{err}"
        );
        // Real codes parse, case-insensitively.
        let out = run(&argv(&[
            "lint",
            &path,
            "--modules",
            "1+,1*",
            "--deny",
            "b208",
            "--allow",
            "L007",
        ]))
        .unwrap();
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn analyze_reports_testability_without_simulation() {
        let path = write_temp("lobist_cli_analyze.dfg", DESIGN);
        let out = run(&argv(&["analyze", &path, "--modules", "1+,1*"])).unwrap();
        assert!(out.contains("analyze: 2 cone(s)"), "{out}");
        assert!(out.contains("hard (T301)"), "{out}");
    }

    #[test]
    fn analyze_json_is_identical_across_worker_counts() {
        let path = write_temp("lobist_cli_analyze_jobs.dfg", DESIGN);
        let base = argv(&["analyze", &path, "--modules", "1+,1*", "--json"]);
        let serial = run(&[base.clone(), argv(&["--jobs", "1"])].concat()).unwrap();
        for jobs in ["2", "4", "7"] {
            let parallel = run(&[base.clone(), argv(&["--jobs", jobs])].concat()).unwrap();
            assert_eq!(serial, parallel, "--jobs {jobs}");
        }
        assert!(serial.contains("\"summary\""), "{serial}");
    }

    #[test]
    fn analyze_full_lists_every_fault_score() {
        let path = write_temp("lobist_cli_analyze_full.dfg", DESIGN);
        let brief = run(&argv(&["analyze", &path, "--modules", "1+,1*", "--json"])).unwrap();
        let full = run(&argv(&[
            "analyze", &path, "--modules", "1+,1*", "--json", "--full",
        ]))
        .unwrap();
        assert!(full.len() > brief.len(), "full should be strictly larger");
        assert!(full.contains("\"scores\""), "{full}");
    }

    #[test]
    fn analyze_metrics_prints_the_testability_section() {
        let path = write_temp("lobist_cli_analyze_metrics.dfg", DESIGN);
        let out = run(&argv(&[
            "analyze", &path, "--modules", "1+,1*", "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("\"testability\":{\"runs\":1"), "{out}");
    }

    #[test]
    fn lint_metrics_flag_appends_lint_json() {
        let path = write_temp("lobist_cli_lint_metrics.dfg", DESIGN);
        let out = run(&argv(&["lint", &path, "--modules", "1+,1*", "--metrics"])).unwrap();
        let json = out.lines().last().expect("metrics line");
        assert!(
            json.contains("\"lint\":{\"runs\":1,\"errors\":0,\"warnings\":0"),
            "{json}"
        );
        assert!(json.contains("\"pass_micros_log2_histograms\":"), "{json}");
        for pass in [
            "structure",
            "gates",
            "coloring",
            "binding",
            "bist-legality",
            "lemma2-audit",
        ] {
            assert!(
                json.contains(&format!("\"{pass}\":[")),
                "missing {pass} in {json}"
            );
        }
    }

    #[test]
    fn batch_lint_gate_audits_every_design() {
        let scheduled = write_temp("lobist_cli_batch_lint_a.dfg", DESIGN);
        let unscheduled = write_temp(
            "lobist_cli_batch_lint_b.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&[
            "batch",
            &scheduled,
            &unscheduled,
            "--modules",
            "1+,1*",
            "--lint",
            "--deny",
            "all",
        ]))
        .unwrap();
        assert!(out.contains(&format!("lint {scheduled}: clean")), "{out}");
        assert!(out.contains(&format!("lint {unscheduled}: clean")), "{out}");
    }

    #[test]
    fn explore_lint_gate_audits_every_point() {
        let path = write_temp(
            "lobist_cli_explore_lint.dfg",
            "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n",
        );
        let out = run(&argv(&[
            "explore",
            &path,
            "--candidates",
            "1+,1*;2+,1*",
            "--lint",
        ]))
        .unwrap();
        assert!(out.contains("lint 1+,1* latency"), "{out}");
        assert!(out.contains(": clean"), "{out}");
    }

    #[test]
    fn lint_error_carries_the_report_for_stdout() {
        let err = CliError::Lint {
            output: "the report\n".into(),
            denied: 3,
        };
        assert_eq!(err.to_string(), "lint: 3 finding(s) denied by policy");
    }

    #[test]
    fn overcommitted_modules_fail_cleanly() {
        let path = write_temp(
            "lobist_cli_over.dfg",
            "input a b c d\ns1 = a + b @ 1\ns2 = c + d @ 1\ny = s1 * s2 @ 2\noutput y\n",
        );
        let err = run(&argv(&["synth", &path, "--modules", "1+,1*"])).unwrap_err();
        assert!(matches!(err, CliError::Flow(_)));
        assert!(err.to_string().contains("synthesis failed"));
    }
    #[test]
    fn batch_progress_streams_and_ends_with_a_done_record() {
        let a = write_temp("lobist_cli_prog_a.dfg", DESIGN);
        let b = write_temp(
            "lobist_cli_prog_b.dfg",
            "input a b\ny = a + b @ 1\noutput y\n",
        );
        let out = run(&argv(&[
            "batch",
            &a,
            &b,
            "--modules",
            "1+,1*",
            "--progress",
        ]))
        .unwrap();
        assert!(
            out.contains("{\"event\":\"done\",\"designs\":2,\"ok\":2,\"failed\":0}"),
            "{out}"
        );
    }

    #[test]
    fn serve_and_submit_round_trip_over_a_unix_socket() {
        let sock = std::env::temp_dir().join("lobist_cli_serve.sock");
        let store = std::env::temp_dir().join("lobist_cli_serve.store");
        let _ = std::fs::remove_file(&sock);
        let _ = std::fs::remove_file(&store);
        let sock_arg = sock.to_string_lossy().into_owned();
        let store_arg = store.to_string_lossy().into_owned();
        let serve_args = argv(&[
            "serve",
            "--unix",
            &sock_arg,
            "--store",
            &store_arg,
            "--jobs",
            "2",
            "--metrics",
        ]);
        let daemon = std::thread::spawn(move || run(&serve_args));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !sock.exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never listened"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let design = write_temp("lobist_cli_submit.dfg", DESIGN);
        let first = run(&argv(&[
            "submit",
            &design,
            "--unix",
            &sock_arg,
            "--modules",
            "1+,1*",
        ]))
        .unwrap();
        assert!(first.contains("\"event\":\"result\""), "{first}");
        assert!(first.contains("\"cache\":\"fresh\""), "{first}");
        let second = run(&argv(&[
            "submit",
            &design,
            "--unix",
            &sock_arg,
            "--modules",
            "1+,1*",
        ]))
        .unwrap();
        assert!(second.contains("\"cache\":\"memory\""), "{second}");

        let pong = run(&argv(&["submit", "--unix", &sock_arg, "--cmd", "ping"])).unwrap();
        assert!(pong.contains("\"event\":\"pong\""), "{pong}");

        let bye = run(&argv(&["submit", "--unix", &sock_arg, "--cmd", "shutdown"])).unwrap();
        assert!(bye.contains("\"event\":\"shutdown\""), "{bye}");
        let summary = daemon.join().expect("serve thread").unwrap();
        assert!(summary.contains("{\"event\":\"stopped\"}"), "{summary}");
        assert!(summary.contains("\"store\":{"), "{summary}");
        assert!(store.exists(), "store file persists after shutdown");
        let _ = std::fs::remove_file(&store);
    }

    #[test]
    fn faultsim_output_is_identical_across_lane_widths() {
        let path = write_temp("lobist_cli_faultsim_lanes.dfg", DESIGN);
        let base = argv(&["faultsim", &path, "--modules", "1+,1*", "--width", "5"]);
        let runs: Vec<String> = ["64", "256", "512", "auto"]
            .iter()
            .map(|lanes| run(&[base.clone(), argv(&["--lanes", lanes])].concat()).unwrap())
            .collect();
        for wider in &runs[1..] {
            assert_eq!(&runs[0], wider, "lane width changed the report");
        }
        assert_eq!(runs[0], run(&base).unwrap(), "default is --lanes auto");
    }

    #[test]
    fn lanes_flag_is_validated() {
        let path = write_temp("lobist_cli_lanes_bad.dfg", DESIGN);
        for bad in ["128", "0", "wide", "1024"] {
            let err = run(&argv(&[
                "faultsim",
                &path,
                "--modules",
                "1+,1*",
                "--lanes",
                bad,
            ]))
            .unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}");
            assert!(err.to_string().contains("bad lane width"), "{bad}: {err}");
        }
    }

    #[test]
    fn faultsim_metrics_tally_runs_under_the_resolved_width() {
        let path = write_temp("lobist_cli_faultsim_lanes_m.dfg", DESIGN);
        let out = run(&argv(&[
            "faultsim",
            &path,
            "--modules",
            "1+,1*",
            "--width",
            "5",
            "--lanes",
            "512",
            "--metrics",
        ]))
        .unwrap();
        let json = out.lines().last().expect("metrics line");
        assert!(json.contains("\"lanes\":{\"64\":{\"runs\":0,"), "{json}");
        // Both modules ran at the requested 512-lane width.
        assert!(json.contains("\"512\":{\"runs\":2,"), "{json}");
    }

    #[test]
    fn corpus_emits_seeded_instances_that_batch_fault_simulates() {
        let dir = std::env::temp_dir().join("lobist_cli_corpus");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();
        let out = run(&argv(&[
            "corpus", "--sizes", "8,16", "--seed", "1", "--out", &dir_arg,
        ]))
        .unwrap();
        // One path per line and nothing else, so the output pipes
        // straight into `lobist batch -`.
        let paths: Vec<&str> = out.lines().collect();
        assert_eq!(paths.len(), 8, "{out}");
        for (kind, path) in ["fir", "iir", "matmul", "diffeq"].iter().zip(&paths) {
            assert!(path.ends_with(&format!("{kind}_n8_s1.dfg")), "{path}");
            assert!(std::path::Path::new(path).exists(), "{path}");
        }
        // Regenerating with the same seed is byte-identical; a new seed
        // moves the coefficients.
        let text = std::fs::read_to_string(paths[0]).unwrap();
        run(&argv(&[
            "corpus", "--sizes", "8,16", "--seed", "1", "--out", &dir_arg,
        ]))
        .unwrap();
        assert_eq!(text, std::fs::read_to_string(paths[0]).unwrap());

        // The whole corpus drives through batch with in-loop fault
        // simulation; diffeq needs the `-` module. Every instance must
        // synthesize: short-lived operands can starve a module of
        // distinct I-path registers (the original fir generator failed
        // exactly this way at 16 taps), so the sweep covers two sizes.
        let mut args = argv(&["batch"]);
        args.extend(paths.iter().map(|p| p.to_string()));
        args.extend(argv(&[
            "--modules",
            "1+,1*,1-",
            "--faultsim",
            "--lanes",
            "256",
            "--progress",
        ]));
        let out = run(&args).unwrap();
        assert!(
            out.contains("\"event\":\"done\",\"designs\":8,\"ok\":8,\"failed\":0"),
            "{out}"
        );
        assert!(out.contains("faultsim"), "{out}");
        assert!(out.contains("% coverage"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_permute_twins_batch_as_iso_hits() {
        let dir = std::env::temp_dir().join("lobist_cli_corpus_permute");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();
        let out = run(&argv(&[
            "corpus",
            "--sizes",
            "8",
            "--seed",
            "1",
            "--permute",
            "11",
            "--out",
            &dir_arg,
        ]))
        .unwrap();
        // Each design is followed by its isomorphic twin.
        let paths: Vec<&str> = out.lines().collect();
        assert_eq!(paths.len(), 8, "{out}");
        for pair in paths.chunks(2) {
            assert!(pair[0].ends_with("_s1.dfg"), "{}", pair[0]);
            assert!(pair[1].ends_with("_s1_p11.dfg"), "{}", pair[1]);
            // Twins are textually disjoint from their originals (every
            // name is rewritten) but structurally identical.
            let base = std::fs::read_to_string(pair[0]).unwrap();
            let twin = std::fs::read_to_string(pair[1]).unwrap();
            assert_ne!(base, twin);
            assert_eq!(base.lines().count(), twin.lines().count());
        }
        // A canonical-cache batch over the list answers twins from
        // cache as iso hits (where the list scheduler lands both on the
        // same structural schedule), and reports them under `canon`.
        let mut args = argv(&["batch"]);
        args.extend(paths.iter().map(|p| p.to_string()));
        args.extend(argv(&["--modules", "1+,1*,1-", "--metrics"]));
        let canon_on = run(&args.clone()).unwrap();
        let json = canon_on.lines().last().expect("metrics line");
        let iso_hits: u64 = json
            .split("\"iso_hits\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no canon section in {json}"));
        assert!(iso_hits > 0, "no iso hits over permuted twins: {json}");
        // `--canon off` re-keys by exact text: no iso hits, but every
        // reported design row is byte-identical — canonization is a
        // cache strategy, never a result change.
        args.extend(argv(&["--canon", "off"]));
        let canon_off = run(&args).unwrap();
        let rows = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('{'))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&canon_on), rows(&canon_off));
        let off_json = canon_off.lines().last().expect("metrics line");
        assert!(off_json.contains("\"iso_hits\":0"), "{off_json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canon_flag_rejects_unknown_values() {
        let path = write_temp("lobist_cli_canon_bad.dfg", DESIGN);
        let err = run(&argv(&[
            "batch",
            &path,
            "--modules",
            "1+,1*",
            "--canon",
            "maybe",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("bad --canon value"), "{err}");
        let err = run(&argv(&["corpus", "--permute", "x"])).unwrap_err();
        assert!(err.to_string().contains("bad permute seed"), "{err}");
        let err = run(&argv(&[
            "batch",
            &path,
            "--modules",
            "1+,1*",
            "--subcanon",
            "maybe",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("bad --subcanon value"), "{err}");
        let err = run(&argv(&["corpus", "--twin-kernels", "x"])).unwrap_err();
        assert!(err.to_string().contains("bad twin-kernels seed"), "{err}");
    }

    #[test]
    fn corpus_twin_kernels_batch_through_the_fragment_tier() {
        let dir = std::env::temp_dir().join("lobist_cli_corpus_twin_kernels");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = dir.to_string_lossy().into_owned();
        let out = run(&argv(&[
            "corpus",
            "--sizes",
            "8",
            "--seed",
            "1",
            "--twin-kernels",
            "9",
            "--modules",
            "1+,1*,1-",
            "--out",
            &dir_arg,
        ]))
        .unwrap();
        // Each design is followed by its scheduled, shifted sibling.
        let paths: Vec<&str> = out.lines().collect();
        assert_eq!(paths.len(), 8, "{out}");
        for pair in paths.chunks(2) {
            assert!(pair[0].ends_with("_s1.dfg"), "{}", pair[0]);
            assert!(pair[1].ends_with("_s1_k9.dfg"), "{}", pair[1]);
            // The sibling is scheduled (carries `@ step` annotations);
            // the base is not.
            let base = std::fs::read_to_string(pair[0]).unwrap();
            let twin = std::fs::read_to_string(pair[1]).unwrap();
            assert!(!base.contains('@'), "{}", pair[0]);
            assert!(twin.contains('@'), "{}", pair[1]);
        }
        // A batch over the list (same --modules as corpus scheduling)
        // misses the whole-design cache on every sibling — the shifted
        // schedule is a different canonical design — but the fragment
        // tier answers its synthesis core.
        let mut args = argv(&["batch"]);
        args.extend(paths.iter().map(|p| p.to_string()));
        args.extend(argv(&["--modules", "1+,1*,1-", "--metrics"]));
        let on = run(&args.clone()).unwrap();
        let json = on.lines().last().expect("metrics line");
        let core_hits: u64 = json
            .split("\"core_hits\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no subcanon section in {json}"));
        assert!(core_hits > 0, "no core hits over twin kernels: {json}");
        assert!(json.contains("\"cache\":{\"hits\":0"), "{json}");
        // `--subcanon off` synthesizes every sibling from scratch: no
        // subcanon section, byte-identical design rows.
        args.extend(argv(&["--subcanon", "off"]));
        let off = run(&args).unwrap();
        let rows = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('{'))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&on), rows(&off));
        let off_json = off.lines().last().expect("metrics line");
        assert!(!off_json.contains("\"subcanon\""), "{off_json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_rejects_bad_sizes() {
        for bad in ["0", "8,x", ""] {
            let err = run(&argv(&["corpus", "--sizes", bad])).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}");
            assert!(err.to_string().contains("bad corpus size"), "{bad}: {err}");
        }
    }

    #[test]
    fn submit_reports_an_unreachable_daemon() {
        let err = run(&argv(&[
            "submit",
            "--unix",
            "/nonexistent/lobist-nowhere.sock",
            "--cmd",
            "ping",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_, _)));
        assert!(err.to_string().contains("lobist-nowhere"), "{err}");
    }
}
