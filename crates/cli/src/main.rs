//! The `lobist` command-line entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lobist_cli::run(&args) {
        Ok(output) => print!("{output}"),
        // A denied lint finding still prints the full report on stdout
        // (tooling parses it); only the verdict goes to stderr.
        Err(lobist_cli::CliError::Lint { output, denied }) => {
            print!("{output}");
            eprintln!("error: lint: {denied} finding(s) denied by policy");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
