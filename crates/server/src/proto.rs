//! The wire protocol: one JSON object per line, in both directions.
//!
//! A request names a command and carries the design text inline —
//! the daemon never touches the client's filesystem, and the store's
//! content addressing keys on exactly what was sent:
//!
//! ```json
//! {"cmd":"synth","design":"input a b\n...","modules":"1+,1*"}
//! {"cmd":"explore","design":"...","candidates":"1+,1*;2+,1*"}
//! {"cmd":"anneal","design":"...","modules":"1+,1*","iterations":100}
//! {"cmd":"faultsim","design":"...","modules":"1+,1*","width":6}
//! {"cmd":"lint","design":"...","modules":"1+,1*"}
//! {"cmd":"analyze","design":"...","modules":"1+,1*"}
//! {"cmd":"ping"}   {"cmd":"metrics"}   {"cmd":"shutdown"}
//! ```
//!
//! The response is a stream of JSONL events, flushed per line:
//! `accepted` (queue position), then `result` (the payload — rendered
//! only from the job's result, so a store-served replay is
//! byte-identical to the original), then the terminal `done` record
//! (timing and cache provenance, which legitimately vary between
//! runs). Failures end with a terminal `error` event instead.

use lobist_engine::LaneSelect;

use crate::json::Json;

/// The commands a request line can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Synthesize one design.
    Synth,
    /// Pareto exploration over candidate module sets.
    Explore,
    /// Simulated-annealing register search.
    Anneal,
    /// Gate-level stuck-at fault simulation of the BIST sessions.
    FaultSim,
    /// Static verifier passes over the synthesized design.
    Lint,
    /// Static testability analysis (COP probabilities, redundant
    /// faults, test-mode reachability) — no simulation.
    Analyze,
    /// Liveness probe.
    Ping,
    /// Engine + store + server metrics snapshot.
    Metrics,
    /// Graceful shutdown: drain in-flight work, flush the store.
    Shutdown,
}

impl Command {
    fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "synth" => Command::Synth,
            "explore" => Command::Explore,
            "anneal" => Command::Anneal,
            "faultsim" => Command::FaultSim,
            "lint" => Command::Lint,
            "analyze" => Command::Analyze,
            "ping" => Command::Ping,
            "metrics" => Command::Metrics,
            "shutdown" => Command::Shutdown,
            _ => return None,
        })
    }

    /// `true` for commands that run synthesis work and therefore pass
    /// through the admission queue (the others are answered inline).
    pub fn is_job(self) -> bool {
        matches!(
            self,
            Command::Synth
                | Command::Explore
                | Command::Anneal
                | Command::FaultSim
                | Command::Lint
                | Command::Analyze
        )
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The command.
    pub cmd: Command,
    /// Inline design text (the `.dfg` file contents).
    pub design: Option<String>,
    /// Module set, e.g. `"1+,1*"`.
    pub modules: Option<String>,
    /// Semicolon-separated module sets for `explore`.
    pub candidates: Option<String>,
    /// `"testable"` (default) or `"traditional"`.
    pub flow: String,
    /// Data-path bit width (default 8).
    pub width: u32,
    /// Insert test points for otherwise-untestable modules.
    pub repair: bool,
    /// Primary inputs live on ports instead of registers.
    pub port_inputs: bool,
    /// Per-request worker budget (clamped by server policy).
    pub jobs: Option<usize>,
    /// Annealing iterations.
    pub iterations: Option<u32>,
    /// Annealing seed.
    pub seed: Option<u64>,
    /// Annealing speculative batch size.
    pub batch: Option<u32>,
    /// Annealing chain count.
    pub chains: Option<usize>,
    /// Fault-simulation lane width (64, 256, 512 or `"auto"`).
    /// Results are byte-identical at every width; this is a
    /// performance knob only, so it never enters the job key.
    pub lanes: LaneSelect,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown command, or ill-typed fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let cmd_name = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string field `cmd`")?;
    let cmd = Command::parse(cmd_name).ok_or_else(|| format!("unknown command `{cmd_name}`"))?;
    let str_field = |key: &str| -> Result<Option<String>, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(format!("field `{key}` must be a string")),
        }
    };
    let flow = str_field("flow")?.unwrap_or_else(|| "testable".to_owned());
    if flow != "testable" && flow != "traditional" {
        return Err(format!("unknown flow `{flow}`"));
    }
    let width = match v.get("width") {
        None | Some(Json::Null) => 8,
        Some(n) => n
            .as_u32()
            .filter(|w| (2..=64).contains(w))
            .ok_or("field `width` must be an integer in 2..=64")?,
    };
    let num = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(n) => n
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
        }
    };
    let jobs = num("jobs")?.map(|n| n as usize);
    if jobs == Some(0) {
        return Err("field `jobs` must be at least 1".into());
    }
    const LANES_ERR: &str = "field `lanes` must be 64, 256, 512 or \"auto\"";
    let lanes = match v.get("lanes") {
        None | Some(Json::Null) => LaneSelect::Auto,
        Some(Json::Str(s)) => LaneSelect::parse(s).ok_or(LANES_ERR)?,
        Some(n) => n
            .as_u64()
            .and_then(|w| LaneSelect::parse(&w.to_string()))
            .ok_or(LANES_ERR)?,
    };
    Ok(Request {
        cmd,
        design: str_field("design")?,
        modules: str_field("modules")?,
        candidates: str_field("candidates")?,
        flow,
        width,
        repair: v.get("repair").and_then(Json::as_bool).unwrap_or(false),
        port_inputs: v.get("port_inputs").and_then(Json::as_bool).unwrap_or(false),
        jobs,
        iterations: num("iterations")?.map(|n| n as u32),
        seed: num("seed")?,
        batch: num("batch")?.map(|n| n as u32),
        chains: num("chains")?.map(|n| n as usize),
        lanes,
    })
}

/// `true` if a response line is a terminal event — the last line the
/// server sends for one request.
pub fn is_terminal_event(line: &str) -> bool {
    ["done", "error", "pong", "metrics", "shutdown"]
        .iter()
        .any(|e| line.contains(&format!("\"event\":\"{e}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_synth_request() {
        let r = parse_request(
            r#"{"cmd":"synth","design":"input a\n","modules":"1+","flow":"traditional","width":16,"jobs":2,"repair":true}"#,
        )
        .expect("valid");
        assert_eq!(r.cmd, Command::Synth);
        assert!(r.cmd.is_job());
        assert_eq!(r.design.as_deref(), Some("input a\n"));
        assert_eq!(r.modules.as_deref(), Some("1+"));
        assert_eq!(r.flow, "traditional");
        assert_eq!(r.width, 16);
        assert_eq!(r.jobs, Some(2));
        assert!(r.repair);
    }

    #[test]
    fn defaults_match_the_cli() {
        let r = parse_request(r#"{"cmd":"ping"}"#).expect("valid");
        assert_eq!(r.cmd, Command::Ping);
        assert!(!r.cmd.is_job());
        assert_eq!(r.flow, "testable");
        assert_eq!(r.width, 8);
        assert_eq!(r.jobs, None);
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"design":"x"}"#, "missing string field `cmd`"),
            (r#"{"cmd":"fly"}"#, "unknown command"),
            (r#"{"cmd":"synth","flow":"magic"}"#, "unknown flow"),
            (r#"{"cmd":"synth","width":1}"#, "`width`"),
            (r#"{"cmd":"synth","jobs":0}"#, "`jobs`"),
            (r#"{"cmd":"synth","modules":7}"#, "`modules` must be a string"),
            (r#"{"cmd":"faultsim","lanes":128}"#, "`lanes`"),
            (r#"{"cmd":"faultsim","lanes":"wide"}"#, "`lanes`"),
            (r#"{"cmd":"faultsim","lanes":1024}"#, "`lanes`"),
            (r#"{"cmd":"faultsim","lanes":true}"#, "`lanes`"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parses_an_analyze_request() {
        let r = parse_request(r#"{"cmd":"analyze","design":"input a
","modules":"1+"}"#)
            .expect("parses");
        assert_eq!(r.cmd, Command::Analyze);
        assert!(r.cmd.is_job());
    }

    #[test]
    fn lanes_accept_numbers_and_auto() {
        for (line, want) in [
            (r#"{"cmd":"faultsim"}"#, LaneSelect::Auto),
            (r#"{"cmd":"faultsim","lanes":null}"#, LaneSelect::Auto),
            (r#"{"cmd":"faultsim","lanes":"auto"}"#, LaneSelect::Auto),
            (r#"{"cmd":"faultsim","lanes":64}"#, LaneSelect::W64),
            (r#"{"cmd":"faultsim","lanes":"256"}"#, LaneSelect::W256),
            (r#"{"cmd":"faultsim","lanes":512}"#, LaneSelect::W512),
        ] {
            assert_eq!(parse_request(line).expect(line).lanes, want, "{line}");
        }
    }

    #[test]
    fn terminal_events_are_recognized() {
        assert!(is_terminal_event(r#"{"event":"done","id":1}"#));
        assert!(is_terminal_event(r#"{"event":"error","id":1}"#));
        assert!(is_terminal_event(r#"{"event":"pong","id":1}"#));
        assert!(!is_terminal_event(r#"{"event":"accepted","id":1}"#));
        assert!(!is_terminal_event(r#"{"event":"result","id":1}"#));
    }
}
