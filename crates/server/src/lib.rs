//! `lobist serve`: a persistent synthesis daemon in front of the
//! engine and its durable result store.
//!
//! The daemon keeps one [`lobist_engine::Engine`] alive across
//! requests, so the in-memory result cache and the on-disk
//! content-addressed store ([`lobist_store`]) amortize synthesis work
//! across clients *and* across daemon restarts: the same design
//! submitted twice is answered from memory the second time, and after
//! a restart from disk — byte-identically, because the `result` wire
//! event is rendered purely from the stored job result.
//!
//! The wire protocol is line-delimited JSON over TCP and/or a Unix
//! socket ([`proto`] documents the schema). Everything is `std`-only:
//! hand-rolled JSON, `std::net` + `std::os::unix::net` listeners, a
//! `Mutex`/`Condvar` admission gate.
//!
//! ```no_run
//! use lobist_server::{client, Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! let addr = server.tcp_addr().expect("tcp enabled").to_string();
//! let handle = server.handle();
//! std::thread::spawn(move || server.run());
//! let events = client::submit(&client::Endpoint::Tcp(addr), r#"{"cmd":"ping"}"#)?;
//! assert!(events[0].contains("pong"));
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod exec;
pub mod json;
pub mod proto;
mod server;

pub use client::{submit, submit_with, Endpoint};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
