//! A minimal JSON reader/writer for the wire protocol.
//!
//! The protocol is line-delimited JSON with a tiny, flat schema, so a
//! hand-rolled recursive-descent parser keeps the crate dependency-free
//! (the same choice the CLI and metrics layers made for their JSON
//! output). Numbers are kept as raw token strings and parsed on demand,
//! so a `u64` seed round-trips without passing through `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `usize`, if this is a non-negative integer token.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u32`, if this is a non-negative integer token.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(err(*pos, "expected a value")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err(start, "expected digits"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    // Validate the token by parsing it as f64 (covers every JSON form).
    raw.parse::<f64>()
        .map_err(|_| err(start, "malformed number"))?;
    Ok(Json::Num(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are rejected rather than paired: the
                        // protocol never emits them.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("valid UTF-8 input");
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"cmd":"synth","design":"input a\nb","jobs":4,"repair":true,"seed":18446744073709551615}"#,
        )
        .expect("valid");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("synth"));
        assert_eq!(v.get("design").and_then(Json::as_str), Some("input a\nb"));
        assert_eq!(v.get("jobs").and_then(Json::as_usize), Some(4));
        assert_eq!(v.get("repair").and_then(Json::as_bool), Some(true));
        // u64::MAX survives: numbers are raw tokens, not f64.
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":false}"#).expect("valid");
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Json::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "\"open", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let wrapped = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = Json::parse(&wrapped).expect("escaped text parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some(original));
    }
}
