//! Request execution: turns a parsed [`Request`] into the `result`
//! event payload, running on the server's shared engine.
//!
//! The payload string must be a pure function of the job's result —
//! never of timing, worker count, or cache provenance — so that a
//! request answered from the durable store is byte-identical to the
//! original evaluation. Anything that legitimately varies (wall time,
//! cache tier) is reported on the `done` event by the caller.

use std::sync::Arc;

use lobist_alloc::anneal::AnnealConfig;
use lobist_alloc::explore::{assemble, enumerate_candidates, Candidate, DesignPoint, ExploreConfig};
use lobist_alloc::flow::{synthesize, FlowOptions};
use lobist_datapath::area::AreaModel;
use lobist_dfg::lifetime::LifetimeOptions;
use lobist_dfg::modules::ModuleSet;
use lobist_dfg::parse::{parse_dfg, parse_unscheduled_dfg};
use lobist_dfg::{Dfg, Schedule};
use lobist_engine::Job;
use lobist_lint::{LintUnit, PassRegistry};

use crate::json::escape;
use crate::proto::{Command, Request};
use crate::server::Shared;

/// The outcome of a job-running request.
pub(crate) struct JobBody {
    /// `true` when the underlying job succeeded (a lint run with
    /// findings is still `ok`: the response is well-formed).
    pub ok: bool,
    /// Cache provenance: `"memory"`, `"store"`, or `"fresh"` for
    /// engine-cached commands; `"iso"` when the hit was isomorphic (a
    /// renamed/reordered twin answered from the canonical cache and
    /// remapped); `"none"` for commands that always run.
    pub cache: &'static str,
    /// The `result` event body: `"key":value` pairs without the
    /// surrounding braces or the `event`/`id` fields.
    pub payload: String,
}

/// Executes one admitted request.
pub(crate) fn execute(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    match request.cmd {
        Command::Synth => synth(request, shared),
        Command::Explore => explore(request, shared),
        Command::Anneal => anneal(request, shared),
        Command::FaultSim => faultsim(request, shared),
        Command::Lint => lint(request, shared),
        Command::Analyze => analyze(request, shared),
        _ => Err("not a job command".into()),
    }
}

/// The per-request worker budget: the request's `jobs` clamped by
/// policy, defaulting to the engine's own worker count.
fn effective_jobs(request: &Request, shared: &Shared) -> usize {
    request
        .jobs
        .unwrap_or(shared.config.workers)
        .min(shared.config.max_request_jobs)
        .max(1)
}

fn flow_options(request: &Request) -> FlowOptions {
    let mut f = if request.flow == "traditional" {
        FlowOptions::traditional()
    } else {
        FlowOptions::testable()
    };
    f.area = AreaModel::with_width(request.width);
    f.lifetime_options = if request.port_inputs {
        LifetimeOptions::port_inputs()
    } else {
        LifetimeOptions::registered_inputs()
    };
    f.repair_untestable = request.repair;
    f
}

fn require<'a>(field: &'a Option<String>, name: &str) -> Result<&'a str, String> {
    field
        .as_deref()
        .ok_or_else(|| format!("missing field `{name}`"))
}

/// Parses the inline design, scheduled or not — unscheduled designs get
/// a resource-constrained list schedule under the module set (the same
/// fallback the CLI's `batch` and `lint` commands use).
fn load_design(text: &str, modules: &ModuleSet) -> Result<(Dfg, Schedule), String> {
    match parse_dfg(text) {
        Ok(parsed) => Ok(parsed),
        Err(_) => {
            let dfg = parse_unscheduled_dfg(text).map_err(|e| format!("design: {e}"))?;
            let schedule = lobist_dfg::scheduling::list_schedule(&dfg, modules)
                .map_err(|e| format!("cannot schedule design: {e}"))?;
            Ok((dfg, schedule))
        }
    }
}

fn parse_modules(request: &Request) -> Result<ModuleSet, String> {
    require(&request.modules, "modules")?
        .parse()
        .map_err(|e| format!("modules: {e}"))
}

/// Renders one design point as the deterministic `result` payload.
fn point_json(p: &DesignPoint) -> String {
    let styles: Vec<String> = p
        .bist
        .styles
        .iter()
        .map(|s| format!("\"{}\"", s.label()))
        .collect();
    let sessions: Vec<String> = p.bist.sessions.iter().map(u32::to_string).collect();
    format!(
        concat!(
            "\"point\":{{\"modules\":\"{modules}\",\"latency\":{latency},",
            "\"registers\":{regs},\"functional_gates\":{func},",
            "\"bist_gates\":{bist},\"overhead_gates\":{ov},",
            "\"overhead_percent\":{pct:.4},\"styles\":[{styles}],",
            "\"sessions\":[{sessions}]}}"
        ),
        modules = escape(&p.modules.to_string()),
        latency = p.latency,
        regs = p.registers,
        func = p.functional_gates.get(),
        bist = p.bist_gates.get(),
        ov = p.bist.overhead.get(),
        pct = p.bist.overhead_percent,
        styles = styles.join(","),
        sessions = sessions.join(","),
    )
}

fn synth(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    let design = require(&request.design, "design")?;
    let modules = parse_modules(request)?;
    let (dfg, schedule) = load_design(design, &modules)?;
    let flow = flow_options(request);
    let job = Job {
        dfg: Arc::new(dfg),
        candidate: Candidate {
            modules: modules.clone(),
            schedule,
        },
        flow,
        label: modules.to_string(),
    };
    let jobs = effective_jobs(request, shared);
    let mut outcomes = shared.engine.run_with_workers(vec![job], jobs);
    let outcome = outcomes.pop().expect("one job, one outcome");
    let cache = if outcome.iso_hit {
        // An isomorphic twin answered from the canonical cache: the
        // caller's exact design was never synthesized, only remapped.
        "iso"
    } else if outcome.cache_hit {
        "memory"
    } else if outcome.store_hit {
        "store"
    } else {
        "fresh"
    };
    match &outcome.result {
        Ok(p) => Ok(JobBody {
            ok: true,
            cache,
            payload: point_json(p),
        }),
        Err((m, e)) => Ok(JobBody {
            ok: false,
            cache,
            payload: format!(
                "\"failure\":{{\"modules\":\"{}\",\"error\":\"{}\"}}",
                escape(m),
                escape(e)
            ),
        }),
    }
}

fn explore(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    let design = require(&request.design, "design")?;
    let text = require(&request.candidates, "candidates")?;
    let dfg = parse_unscheduled_dfg(design).map_err(|e| format!("design: {e}"))?;
    let candidates: Vec<ModuleSet> = text
        .split(';')
        .map(|s| s.trim().parse().map_err(|e| format!("candidates: {e}")))
        .collect::<Result<_, _>>()?;
    let mut config = ExploreConfig::new(candidates);
    config.flow = flow_options(request);
    // The same fan-out as `lobist_engine::explore_parallel`, but with
    // the per-request worker budget instead of the engine default.
    let (candidates, mut failures) = enumerate_candidates(&dfg, &config);
    let shared_dfg = Arc::new(dfg);
    let jobs: Vec<Job> = candidates
        .into_iter()
        .map(|candidate| Job {
            dfg: Arc::clone(&shared_dfg),
            label: candidate.modules.to_string(),
            candidate,
            flow: config.flow.clone(),
        })
        .collect();
    let outcomes = shared
        .engine
        .run_with_workers(jobs, effective_jobs(request, shared));
    let served_from = cache_provenance(&outcomes);
    let mut points = Vec::new();
    for outcome in outcomes {
        match outcome.result {
            Ok(p) => points.push(p),
            Err(f) => failures.push(f),
        }
    }
    let result = assemble(points, failures);
    let report = lobist_engine::render_report(&result);
    let pareto: Vec<String> = result.pareto.iter().map(usize::to_string).collect();
    Ok(JobBody {
        ok: result.failures.is_empty(),
        cache: served_from,
        payload: format!(
            "\"points\":{},\"pareto\":[{}],\"failures\":{},\"report\":\"{}\"",
            result.points.len(),
            pareto.join(","),
            result.failures.len(),
            escape(&report)
        ),
    })
}

/// Summarizes a batch's cache provenance: `"iso"` when every job was a
/// hit and at least one was isomorphic, `"memory"`/`"store"` only when
/// every job came from that tier, `"fresh"` otherwise.
fn cache_provenance(outcomes: &[lobist_engine::JobOutcome]) -> &'static str {
    if outcomes.is_empty() {
        return "fresh";
    }
    let all_hits = outcomes.iter().all(|o| o.cache_hit || o.store_hit);
    if all_hits && outcomes.iter().any(|o| o.iso_hit) {
        "iso"
    } else if outcomes.iter().all(|o| o.cache_hit) {
        "memory"
    } else if all_hits {
        "store"
    } else {
        "fresh"
    }
}

fn anneal(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    let design = require(&request.design, "design")?;
    let modules = parse_modules(request)?;
    let (dfg, schedule) = load_design(design, &modules)?;
    let flow = flow_options(request);
    let ma = lobist_alloc::module_assign::assign_modules(&dfg, &schedule, &modules)
        .map_err(|e| format!("module assignment: {e}"))?;
    let config = AnnealConfig {
        iterations: request.iterations.unwrap_or(400),
        seed: request.seed.unwrap_or(0xA11EA1),
        batch: request.batch.unwrap_or(16),
        ..Default::default()
    };
    let workers = effective_jobs(request, shared);
    let chains = request.chains.unwrap_or(1);
    if chains == 0 {
        return Err("field `chains` must be at least 1".into());
    }
    let (result, stats) = if chains > 1 {
        lobist_engine::anneal_multichain(
            &dfg,
            &schedule,
            flow.lifetime_options,
            &ma,
            &flow,
            &config,
            chains,
            workers,
        )
    } else {
        lobist_engine::anneal_parallel(
            &dfg,
            &schedule,
            flow.lifetime_options,
            &ma,
            &flow,
            &config,
            workers,
        )
    }
    .map_err(|e| format!("anneal: {e}"))?;
    shared.engine.metrics_handle().record_anneal(&result, &stats);
    Ok(JobBody {
        ok: true,
        cache: "none",
        payload: format!(
            concat!(
                "\"anneal\":{{\"iterations\":{iters},\"seed\":{seed},",
                "\"chains\":{chains},\"initial_overhead\":{init},",
                "\"overhead\":{best},\"evaluated\":{eval},\"accepted\":{acc},",
                "\"stalled\":{stall},\"best_chain\":{bc}}}"
            ),
            iters = config.iterations,
            seed = config.seed,
            chains = chains,
            init = result.initial_overhead,
            best = result.overhead,
            eval = result.evaluated,
            acc = result.accepted,
            stall = result.stalled,
            bc = stats.best_chain,
        ),
    })
}

fn faultsim(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    use lobist_dfg::modules::ModuleClass;
    let design = require(&request.design, "design")?;
    let modules = parse_modules(request)?;
    let (dfg, schedule) = load_design(design, &modules)?;
    let flow = flow_options(request);
    let d = synthesize(&dfg, &schedule, &modules, &flow).map_err(|e| format!("synthesis: {e}"))?;
    let width = request.width.clamp(2, 32);
    let patterns = lobist_gatesim::lfsr::max_useful_patterns(width);
    let sim_opts = lobist_engine::FaultSimOptions {
        workers: effective_jobs(request, shared),
        collapse: true,
        lanes: request.lanes,
    };
    let mut rows = Vec::new();
    for m in d.data_path.module_ids() {
        let seeds = (0xACE1 + m.index() as u64, 0x1BAD + m.index() as u64);
        let (report, stats) = match d.data_path.module_class(m) {
            ModuleClass::Op(kind) => {
                let net = lobist_gatesim::modules::unit_for(kind, width);
                lobist_engine::bist_session_parallel(&net, &[], width, patterns, seeds, sim_opts)
            }
            ModuleClass::Alu => {
                let mut kinds: Vec<lobist_dfg::OpKind> = d
                    .data_path
                    .module_ops(m)
                    .iter()
                    .map(|&op| dfg.op(op).kind)
                    .collect();
                kinds.sort();
                kinds.dedup();
                let net = lobist_gatesim::modules::alu(&kinds, width);
                let mut controls = vec![false; kinds.len()];
                controls[0] = true;
                lobist_engine::bist_session_parallel(
                    &net, &controls, width, patterns, seeds, sim_opts,
                )
            }
        };
        shared.engine.metrics_handle().record_fault_sim(&stats);
        rows.push(format!(
            concat!(
                "{{\"module\":\"M{idx} ({class})\",\"faults\":{faults},",
                "\"coverage\":{cov:.4},\"aliased\":{alias}}}"
            ),
            idx = m.index() + 1,
            class = d.data_path.module_class(m),
            faults = report.total_faults,
            cov = report.coverage(),
            alias = report.aliased(),
        ));
    }
    Ok(JobBody {
        ok: true,
        cache: "none",
        payload: format!(
            "\"faultsim\":{{\"width\":{width},\"patterns\":{patterns},\"modules\":[{}]}}",
            rows.join(",")
        ),
    })
}

fn lint(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    let design = require(&request.design, "design")?;
    let modules = parse_modules(request)?;
    let (dfg, schedule) = load_design(design, &modules)?;
    let flow = flow_options(request);
    let d = synthesize(&dfg, &schedule, &modules, &flow).map_err(|e| format!("synthesis: {e}"))?;
    let unit = LintUnit::of_design(&dfg, &schedule, &d, flow.lifetime_options, &flow.area);
    let registry = PassRegistry::default_registry();
    let (report, _) = lobist_engine::lint_parallel(
        &unit,
        &registry,
        effective_jobs(request, shared),
        Some(shared.engine.metrics_handle()),
    );
    Ok(JobBody {
        ok: true,
        cache: "none",
        payload: format!(
            "\"lint\":{{\"clean\":{},\"errors\":{},\"warnings\":{},\"text\":\"{}\"}}",
            report.is_clean(),
            report.error_count(),
            report.warning_count(),
            escape(&report.render_text()),
        ),
    })
}

fn analyze(request: &Request, shared: &Arc<Shared>) -> Result<JobBody, String> {
    let design = require(&request.design, "design")?;
    let modules = parse_modules(request)?;
    let (dfg, schedule) = load_design(design, &modules)?;
    let flow = flow_options(request);
    let d = synthesize(&dfg, &schedule, &modules, &flow).map_err(|e| format!("synthesis: {e}"))?;
    let unit = LintUnit::of_design(&dfg, &schedule, &d, flow.lifetime_options, &flow.area);
    let (report, _) = lobist_engine::analyze_parallel(
        &unit,
        effective_jobs(request, shared),
        Some(shared.engine.metrics_handle()),
    );
    // The payload is a pure function of the report, so a store-served
    // replay is byte-identical to the original run.
    Ok(JobBody {
        ok: true,
        cache: "none",
        payload: format!("\"analyze\":{}", report.to_json(false)),
    })
}
