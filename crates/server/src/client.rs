//! The client side: connect, send one request line, stream the
//! response events until the terminal one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use crate::proto::is_terminal_event;

/// Where a daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7420`.
    Tcp(String),
    /// A Unix socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:<path>` selects a Unix socket,
    /// anything else is a TCP address.
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("unix:") {
            Some(path) => Endpoint::Unix(PathBuf::from(path)),
            None => Endpoint::Tcp(s.to_owned()),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Sends one request line and collects the streamed response events,
/// stopping after the terminal event (`done`, `error`, `pong`,
/// `metrics`, or `shutdown`).
///
/// `on_event` sees each line as it arrives — pass a closure that
/// prints for live streaming, or ignore it and use the returned list.
///
/// # Errors
///
/// Propagates connect and I/O failures, and reports a server that
/// closed the stream without a terminal event as `UnexpectedEof`.
pub fn submit_with<F: FnMut(&str)>(
    endpoint: &Endpoint,
    request_line: &str,
    mut on_event: F,
) -> std::io::Result<Vec<String>> {
    let mut stream: Box<dyn ReadWrite> = match endpoint {
        Endpoint::Tcp(addr) => Box::new(TcpStream::connect(addr.as_str())?),
        Endpoint::Unix(path) => Box::new(UnixStream::connect(path)?),
    };
    stream.write_all(request_line.trim_end().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut events = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the stream before the terminal event",
            ));
        }
        let line = line.trim_end().to_owned();
        if line.is_empty() {
            continue;
        }
        on_event(&line);
        let terminal = is_terminal_event(&line);
        events.push(line);
        if terminal {
            return Ok(events);
        }
    }
}

/// [`submit_with`] without a streaming callback.
///
/// # Errors
///
/// Same as [`submit_with`].
pub fn submit(endpoint: &Endpoint, request_line: &str) -> std::io::Result<Vec<String>> {
    submit_with(endpoint, request_line, |_| {})
}

trait ReadWrite: std::io::Read + Write {}
impl<T: std::io::Read + Write> ReadWrite for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_strings_round_trip() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:7420"),
            Endpoint::Tcp("127.0.0.1:7420".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/lobist.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/lobist.sock"))
        );
        assert_eq!(Endpoint::parse("unix:/a b/x.sock").to_string(), "unix:/a b/x.sock");
        assert_eq!(Endpoint::parse("[::1]:80").to_string(), "[::1]:80");
    }
}
