//! The daemon: listeners, admission queue, request execution.
//!
//! One [`Server`] owns one [`Engine`] (and through it the in-memory
//! cache and the durable store), and serves any number of clients over
//! TCP and/or a Unix socket. Every connection gets its own handler
//! thread; job-running requests pass through an admission gate that
//! bounds how many run concurrently and how many may wait, so a burst
//! of clients degrades to queueing instead of thread explosion.
//!
//! Shutdown is graceful: the `shutdown` command (or
//! [`ServerHandle::shutdown`]) stops the acceptors, lets in-flight
//! requests finish, joins every handler, flushes the store, and removes
//! the Unix socket file.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lobist_engine::metrics::bucket_micros;
use lobist_engine::{Engine, ServerSnapshot, NUM_BUCKETS};
use lobist_store::{DiskStore, DiskStoreConfig, ResultStore};

use crate::exec;
use crate::proto::{parse_request, Command};

/// How long a handler blocks on a read before re-checking the shutdown
/// flag. Keeps drain latency bounded without busy-waiting.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server policy and wiring.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// or `None` for Unix-only.
    pub tcp: Option<String>,
    /// Unix socket path, or `None` for TCP-only.
    pub unix: Option<PathBuf>,
    /// Default engine worker budget (also the per-request ceiling when
    /// `max_request_jobs` is larger).
    pub workers: usize,
    /// Hard ceiling on any one request's `jobs` field.
    pub max_request_jobs: usize,
    /// Job-running requests allowed to execute concurrently.
    pub max_active: usize,
    /// Job-running requests allowed to wait for a slot; beyond this,
    /// requests are rejected with a terminal `error` event.
    pub max_queue: usize,
    /// Largest accepted inline design, in bytes.
    pub max_design_bytes: usize,
    /// Durable store path, or `None` for in-memory caching only.
    pub store: Option<PathBuf>,
    /// Store size budget (compaction threshold), in bytes.
    pub store_max_bytes: u64,
    /// Canonical (isomorphism-level) job keys: when `true` (the
    /// default), a renamed/reordered twin of a cached design is
    /// answered from cache as an `"iso"` hit. Results are byte-identical
    /// either way; `false` restores exact-text keying.
    pub canon: bool,
    /// Subgraph-level fragment tier: when `true` (the default), the
    /// shift-invariant synthesis core is memoized by rebased canonical
    /// encoding and canonical DFG fragments are tracked across designs
    /// (with durable fragment records when a store is attached).
    /// Results are byte-identical either way.
    pub subcanon: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tcp: Some("127.0.0.1:0".to_owned()),
            unix: None,
            workers: 2,
            max_request_jobs: 8,
            max_active: 2,
            max_queue: 32,
            max_design_bytes: 1 << 20,
            store: None,
            store_max_bytes: DiskStoreConfig::default().max_bytes,
            canon: true,
            subcanon: true,
        }
    }
}

/// Admission gate: a counting semaphore with queue-depth accounting.
#[derive(Debug, Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// Live request counters, rendered into the metrics JSON as the
/// `"server"` section.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    active: AtomicU64,
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
    wall_nanos: AtomicU64,
    hist: Mutex<[u64; NUM_BUCKETS]>,
}

impl ServerStats {
    fn record_wall(&self, wall: Duration) {
        self.wall_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        let mut hist = self.hist.lock().expect("histogram lock");
        hist[bucket_micros(wall.as_micros())] += 1;
    }

    /// Point-in-time copy in the engine's snapshot shape.
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            request_micros_log2: *self.hist.lock().expect("histogram lock"),
        }
    }
}

/// State shared by every handler thread.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) config: ServerConfig,
    pub(crate) stats: ServerStats,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    gate: Gate,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and unblocks both acceptors by
    /// self-connecting (a blocking `accept` only returns on a
    /// connection).
    pub(crate) fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
    }

    /// Blocks until an execution slot frees up. Returns the queue depth
    /// observed at enqueue time, or `Err` with a rejection reason.
    fn admit(&self) -> Result<u64, String> {
        let mut st = self.gate.state.lock().expect("gate lock");
        if self.shutting_down() {
            return Err("server is shutting down".into());
        }
        if st.waiting >= self.config.max_queue {
            return Err(format!("queue full ({} requests waiting)", st.waiting));
        }
        let depth = st.waiting as u64;
        st.waiting += 1;
        self.stats
            .queue_depth
            .store(st.waiting as u64, Ordering::Relaxed);
        self.stats
            .peak_queue_depth
            .fetch_max(st.waiting as u64, Ordering::Relaxed);
        while st.active >= self.config.max_active && !self.shutting_down() {
            st = self.gate.cv.wait(st).expect("gate lock");
        }
        st.waiting -= 1;
        self.stats
            .queue_depth
            .store(st.waiting as u64, Ordering::Relaxed);
        if self.shutting_down() {
            self.gate.cv.notify_all();
            return Err("server is shutting down".into());
        }
        st.active += 1;
        self.stats.active.store(st.active as u64, Ordering::Relaxed);
        Ok(depth)
    }

    fn release(&self) {
        let mut st = self.gate.state.lock().expect("gate lock");
        st.active -= 1;
        self.stats.active.store(st.active as u64, Ordering::Relaxed);
        drop(st);
        self.gate.cv.notify_all();
    }

    /// The full metrics JSON: engine + cache + store, with the server
    /// section attached.
    pub(crate) fn metrics_json(&self) -> String {
        let mut snap = self.engine.metrics();
        snap.server = Some(self.stats.snapshot());
        snap.to_json()
    }
}

/// A bound, running daemon. Obtain with [`Server::bind`], then either
/// block in [`Server::run`] or drive it from another thread through
/// [`Server::handle`].
pub struct Server {
    shared: Arc<Shared>,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
}

/// A cloneable handle for observing and stopping a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound TCP address, if TCP is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.shared.tcp_addr
    }

    /// The Unix socket path, if enabled.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.shared.unix_path.as_ref()
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// The current metrics JSON (engine + cache + store + server).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }
}

impl Server {
    /// Binds the listeners and builds the engine (opening the store if
    /// configured). No client is served until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Propagates listener bind and store open failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let tcp = match &config.tcp {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let unix = match &config.unix {
            Some(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                Some(UnixListener::bind(path)?)
            }
            None => None,
        };
        let mut engine = Engine::new(config.workers.max(1))
            .with_canon(config.canon)
            .with_subcanon(config.subcanon);
        if let Some(path) = &config.store {
            let store: Arc<dyn ResultStore> = Arc::new(DiskStore::open(
                path,
                DiskStoreConfig {
                    max_bytes: config.store_max_bytes,
                },
            )?);
            engine = engine.with_store(store);
        }
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        let unix_path = config.unix.clone();
        Ok(Server {
            shared: Arc::new(Shared {
                engine,
                config,
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                gate: Gate::default(),
                tcp_addr,
                unix_path,
            }),
            tcp,
            unix,
        })
    }

    /// A handle for observing and stopping the server from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound TCP address, if TCP is enabled (useful with an
    /// ephemeral `:0` bind).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.shared.tcp_addr
    }

    /// The Unix socket path, if enabled.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.shared.unix_path.as_ref()
    }

    /// Serves clients until a shutdown is requested, then drains:
    /// joins every acceptor and handler, flushes the store, removes the
    /// Unix socket file.
    ///
    /// # Errors
    ///
    /// Propagates the store's flush error; listener-level accept errors
    /// on a live server are retried, not fatal.
    pub fn run(self) -> std::io::Result<()> {
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let mut acceptors = Vec::new();
        if let Some(listener) = self.tcp {
            let shared = Arc::clone(&self.shared);
            let sink = Arc::clone(&handlers);
            acceptors.push(std::thread::spawn(move || {
                accept_loop(&listener, &shared, &sink, Conn::Tcp);
            }));
        }
        if let Some(listener) = self.unix {
            let shared = Arc::clone(&self.shared);
            let sink = Arc::clone(&handlers);
            acceptors.push(std::thread::spawn(move || {
                accept_unix_loop(&listener, &shared, &sink);
            }));
        }
        for a in acceptors {
            let _ = a.join();
        }
        // Acceptors only exit on shutdown; now drain the handlers (they
        // observe the flag within READ_POLL and finish their in-flight
        // request first).
        let drained = std::mem::take(&mut *handlers.lock().expect("handler list"));
        for h in drained {
            let _ = h.join();
        }
        if let Some(path) = &self.shared.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.engine.flush_store()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    sink: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    wrap: fn(TcpStream) -> Conn,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down() {
                    return;
                }
                spawn_handler(wrap(stream), shared, sink);
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
            }
        }
    }
}

fn accept_unix_loop(
    listener: &UnixListener,
    shared: &Arc<Shared>,
    sink: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down() {
                    return;
                }
                spawn_handler(Conn::Unix(stream), shared, sink);
            }
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
            }
        }
    }
}

fn spawn_handler(
    conn: Conn,
    shared: &Arc<Shared>,
    sink: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || handle_connection(conn, &shared));
    sink.lock().expect("handler list").push(handle);
}

/// One client connection over either transport.
pub(crate) enum Conn {
    /// TCP client.
    Tcp(TcpStream),
    /// Unix-socket client.
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Writes one event line and flushes it — the client streams events as
/// they happen, so every line must hit the wire immediately.
fn emit(out: &mut Conn, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

fn handle_connection(conn: Conn, shared: &Arc<Shared>) {
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let _ = conn.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let request = std::mem::take(&mut line);
                let request = request.trim();
                if request.is_empty() {
                    continue;
                }
                match serve_request(request, &mut writer, shared) {
                    Ok(keep_open) if keep_open => {}
                    _ => return,
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeout with a partial line keeps `line` accumulating.
                if shared.shutting_down() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Serves one request line. Returns `Ok(false)` when the connection
/// should close (after a shutdown request).
fn serve_request(line: &str, out: &mut Conn, shared: &Arc<Shared>) -> std::io::Result<bool> {
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(message) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            emit(
                out,
                &format!(
                    "{{\"event\":\"error\",\"id\":{id},\"message\":{:?}}}",
                    message
                ),
            )?;
            return Ok(true);
        }
    };
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    match request.cmd {
        Command::Ping => {
            emit(out, &format!("{{\"event\":\"pong\",\"id\":{id}}}"))?;
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Command::Metrics => {
            // The metrics snapshot is itself JSON; embed it raw.
            let data = shared.metrics_json();
            emit(
                out,
                &format!("{{\"event\":\"metrics\",\"id\":{id},\"data\":{data}}}"),
            )?;
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Command::Shutdown => {
            shared.request_shutdown();
            emit(out, &format!("{{\"event\":\"shutdown\",\"id\":{id}}}"))?;
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            Ok(false)
        }
        _ => {
            serve_job(&request, id, out, shared)?;
            Ok(true)
        }
    }
}

fn serve_job(
    request: &crate::proto::Request,
    id: u64,
    out: &mut Conn,
    shared: &Arc<Shared>,
) -> std::io::Result<()> {
    if let Some(design) = &request.design {
        if design.len() > shared.config.max_design_bytes {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return emit(
                out,
                &format!(
                    "{{\"event\":\"error\",\"id\":{id},\"message\":\"design too large \
                     ({} bytes, limit {})\"}}",
                    design.len(),
                    shared.config.max_design_bytes
                ),
            );
        }
    }
    let depth = match shared.admit() {
        Ok(depth) => depth,
        Err(reason) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return emit(
                out,
                &format!("{{\"event\":\"error\",\"id\":{id},\"message\":{reason:?}}}"),
            );
        }
    };
    emit(
        out,
        &format!("{{\"event\":\"accepted\",\"id\":{id},\"queue_depth\":{depth}}}"),
    )?;
    let start = Instant::now();
    let outcome = exec::execute(request, shared);
    let wall = start.elapsed();
    shared.release();
    shared.stats.record_wall(wall);
    match outcome {
        Ok(body) => {
            // The `result` event is rendered purely from the job's
            // result, so a replay served from the store is
            // byte-identical. Timing and provenance live on `done`.
            emit(
                out,
                &format!("{{\"event\":\"result\",\"id\":{id},{}}}", body.payload),
            )?;
            emit(
                out,
                &format!(
                    "{{\"event\":\"done\",\"id\":{id},\"ok\":{},\"cache\":\"{}\",\
                     \"wall_micros\":{}}}",
                    body.ok,
                    body.cache,
                    wall.as_micros()
                ),
            )?;
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(message) => {
            emit(
                out,
                &format!("{{\"event\":\"error\",\"id\":{id},\"message\":{message:?}}}"),
            )?;
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok(())
}
