//! End-to-end daemon tests over real sockets: sequential clients share
//! the cache and store (byte-identical `result` events), concurrent
//! clients see deterministic results, both transports round-trip, and
//! a restart answers from the durable store.

use std::path::PathBuf;

use lobist_server::{client, Endpoint, Server, ServerConfig};

const DESIGN: &str = "input a b c d\n\
                      s1 = a + b @ 1\n\
                      s2 = c + d @ 2\n\
                      y = s1 * s2 @ 3\n\
                      output y\n";

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lobist-server-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Binds a server, runs it on a background thread, returns the TCP
/// endpoint and the run-thread handle.
fn start(config: ServerConfig) -> (Endpoint, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.tcp_addr().expect("tcp enabled").to_string();
    let thread = std::thread::spawn(move || server.run());
    (Endpoint::Tcp(addr), thread)
}

fn synth_request() -> String {
    format!(
        r#"{{"cmd":"synth","design":"{}","modules":"1+,1*"}}"#,
        lobist_server::json::escape(DESIGN)
    )
}

fn event<'a>(events: &'a [String], name: &str) -> &'a String {
    let needle = format!("\"event\":\"{name}\"");
    events
        .iter()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no {name} event in {events:?}"))
}

fn shutdown(endpoint: &Endpoint) {
    let events = client::submit(endpoint, r#"{"cmd":"shutdown"}"#).expect("shutdown");
    assert!(event(&events, "shutdown").contains("\"event\":\"shutdown\""));
}

#[test]
fn sequential_clients_share_cache_and_restart_hits_the_store() {
    let dir = temp_dir("restart");
    let store = dir.join("results.log");
    let config = ServerConfig {
        store: Some(store.clone()),
        ..ServerConfig::default()
    };
    let (endpoint, thread) = start(config.clone());

    // First client: fresh evaluation, written through to the store.
    let first = client::submit(&endpoint, &synth_request()).expect("first submit");
    let first_result = event(&first, "result").clone();
    assert!(
        event(&first, "done").contains("\"cache\":\"fresh\""),
        "{first:?}"
    );
    assert!(first_result.contains("\"point\":{"), "{first_result}");

    // Second client, same daemon: answered from memory, byte-identical
    // result event (ids differ; the payload must not).
    let second = client::submit(&endpoint, &synth_request()).expect("second submit");
    assert!(
        event(&second, "done").contains("\"cache\":\"memory\""),
        "{second:?}"
    );
    assert_eq!(
        payload_of(&first_result),
        payload_of(event(&second, "result")),
        "repeated request must render the identical result payload"
    );

    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
    assert!(store.exists(), "store survives shutdown");

    // Restarted daemon, cold in-memory cache: the store answers, and
    // the payload is still byte-identical.
    let (endpoint, thread) = start(config);
    let third = client::submit(&endpoint, &synth_request()).expect("post-restart submit");
    assert!(
        event(&third, "done").contains("\"cache\":\"store\""),
        "{third:?}"
    );
    assert_eq!(
        payload_of(&first_result),
        payload_of(event(&third, "result"))
    );

    // The metrics JSON reports the store section with the hit.
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    let line = event(&metrics, "metrics");
    assert!(line.contains("\"store\":{"), "{line}");
    assert!(line.contains("\"store_hits\":1"), "{line}");
    assert!(line.contains("\"server\":{"), "{line}");
    assert!(line.contains("\"completed\":"), "{line}");
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

#[test]
fn permuted_twin_is_answered_as_an_iso_hit() {
    // The same design as DESIGN with every name changed and the two
    // adds' lines swapped: structurally isomorphic, textually disjoint.
    let twin: &str = "input p q r t\n\
                      t2 = r + t @ 2\n\
                      t1 = p + q @ 1\n\
                      z = t1 * t2 @ 3\n\
                      output z\n";
    let (endpoint, thread) = start(ServerConfig::default());

    let first = client::submit(&endpoint, &synth_request()).expect("first submit");
    assert!(
        event(&first, "done").contains("\"cache\":\"fresh\""),
        "{first:?}"
    );
    let first_result = event(&first, "result").clone();

    // The twin never synthesizes: the canonical cache answers it as an
    // isomorphic hit, remapped — and the rendered point is identical
    // byte for byte (every reported quantity is label-invariant).
    let req = format!(
        r#"{{"cmd":"synth","design":"{}","modules":"1+,1*"}}"#,
        lobist_server::json::escape(twin)
    );
    let second = client::submit(&endpoint, &req).expect("twin submit");
    assert!(
        event(&second, "done").contains("\"cache\":\"iso\""),
        "{second:?}"
    );
    assert_eq!(
        payload_of(&first_result),
        payload_of(event(&second, "result"))
    );

    // The metrics JSON carries the canon section with the iso hit.
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    let line = event(&metrics, "metrics");
    assert!(line.contains("\"canon\":{"), "{line}");
    assert!(line.contains("\"iso_hits\":1"), "{line}");
    assert!(line.contains("\"canon_micros_log2\":["), "{line}");
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

/// Strips the varying `"id":N` field, keeping everything else byte-for-
/// byte (the payload follows the id).
fn payload_of(result_line: &str) -> String {
    let rest = result_line
        .split_once(",\"point\":")
        .or_else(|| result_line.split_once(",\"failure\":"))
        .map(|(_, payload)| payload)
        .unwrap_or_else(|| panic!("no payload in {result_line}"));
    rest.to_owned()
}

#[test]
fn concurrent_clients_get_identical_results() {
    let (endpoint, thread) = start(ServerConfig::default());
    let mut workers = Vec::new();
    for _ in 0..4 {
        let endpoint = endpoint.clone();
        workers.push(std::thread::spawn(move || {
            client::submit(&endpoint, &synth_request()).expect("submit")
        }));
    }
    let runs: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let reference = payload_of(event(&runs[0], "result"));
    for run in &runs[1..] {
        assert_eq!(reference, payload_of(event(run, "result")));
        assert!(event(run, "done").contains("\"ok\":true"));
    }
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_evaluation() {
    // Wide-open admission so identical requests genuinely overlap. The
    // engine's single-flight layer guarantees exactly one evaluation:
    // a follower either coalesces onto the in-flight leader or arrives
    // after the insert and hits the cache — both end at misses == 1,
    // hits == 3, deterministically, with identical payloads.
    let config = ServerConfig {
        workers: 4,
        max_active: 8,
        max_request_jobs: 8,
        ..ServerConfig::default()
    };
    let (endpoint, thread) = start(config);
    let mut workers = Vec::new();
    for _ in 0..4 {
        let endpoint = endpoint.clone();
        workers.push(std::thread::spawn(move || {
            client::submit(&endpoint, &synth_request()).expect("submit")
        }));
    }
    let runs: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let reference = payload_of(event(&runs[0], "result"));
    for run in &runs[1..] {
        assert_eq!(reference, payload_of(event(run, "result")));
    }
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    let line = event(&metrics, "metrics");
    assert!(
        line.contains("\"cache\":{\"hits\":3,\"misses\":1"),
        "single-flight must leave one miss and three hits: {line}"
    );
    // The coalesced counter is rendered (its exact value depends on
    // timing: a late follower hits the cache without ever waiting).
    assert!(line.contains("\"coalesced\":"), "{line}");
    // The fragment tier is on by default and reports its section.
    assert!(line.contains("\"subcanon\":{\"fragments\":"), "{line}");
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

#[test]
fn unix_socket_round_trips_every_command_kind() {
    let dir = temp_dir("unix");
    let sock = dir.join("lobist.sock");
    let config = ServerConfig {
        tcp: None,
        unix: Some(sock.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    assert!(server.tcp_addr().is_none());
    let thread = std::thread::spawn(move || server.run());
    let endpoint = Endpoint::Unix(sock.clone());

    let pong = client::submit(&endpoint, r#"{"cmd":"ping"}"#).expect("ping");
    assert!(event(&pong, "pong").contains("\"event\":\"pong\""));

    let synth = client::submit(&endpoint, &synth_request()).expect("synth");
    assert!(event(&synth, "result").contains("\"point\":{"));
    assert!(event(&synth, "accepted").contains("\"queue_depth\":"));

    let explore = client::submit(
        &endpoint,
        &format!(
            r#"{{"cmd":"explore","design":"{}","candidates":"1+,1*;2+,1*"}}"#,
            lobist_server::json::escape(
                "input a b c d\ns1 = a + b\ns2 = c + d\ny = s1 * s2\noutput y\n"
            )
        ),
    )
    .expect("explore");
    assert!(
        event(&explore, "result").contains("\"pareto\":["),
        "{explore:?}"
    );

    let lint = client::submit(
        &endpoint,
        &format!(
            r#"{{"cmd":"lint","design":"{}","modules":"1+,1*"}}"#,
            lobist_server::json::escape(DESIGN)
        ),
    )
    .expect("lint");
    assert!(
        event(&lint, "result").contains("\"clean\":true"),
        "{lint:?}"
    );

    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
    assert!(!sock.exists(), "socket file removed on shutdown");
}

#[test]
fn malformed_and_oversized_requests_are_rejected() {
    let config = ServerConfig {
        max_design_bytes: 64,
        ..ServerConfig::default()
    };
    let (endpoint, thread) = start(config);

    let bad = client::submit(&endpoint, "this is not json").expect("submit");
    assert!(event(&bad, "error").contains("invalid JSON"), "{bad:?}");

    let unknown = client::submit(&endpoint, r#"{"cmd":"levitate"}"#).expect("submit");
    assert!(
        event(&unknown, "error").contains("unknown command"),
        "{unknown:?}"
    );

    let oversized = client::submit(&endpoint, &synth_request()).expect("submit");
    assert!(
        event(&oversized, "error").contains("design too large"),
        "{oversized:?}"
    );

    let missing = client::submit(&endpoint, r#"{"cmd":"synth","modules":"1+"}"#).expect("submit");
    assert!(
        event(&missing, "error").contains("missing field `design`"),
        "{missing:?}"
    );

    // Rejections are counted, and the daemon still works afterwards.
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    assert!(
        event(&metrics, "metrics").contains("\"rejected\":"),
        "{metrics:?}"
    );
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

#[test]
fn faultsim_results_are_byte_identical_across_lane_widths() {
    let (endpoint, thread) = start(ServerConfig::default());

    // Fault simulation is uncached (`cache:"none"`), so the second
    // request genuinely recomputes at the wider lane width; its result
    // payload must still match the 64-lane run byte for byte.
    let submit = |lanes: &str| {
        let req = format!(
            r#"{{"cmd":"faultsim","design":"{}","modules":"1+,1*","width":5,"lanes":{lanes}}}"#,
            lobist_server::json::escape(DESIGN)
        );
        let events = client::submit(&endpoint, &req).expect("faultsim submit");
        assert!(
            event(&events, "done").contains("\"cache\":\"none\""),
            "{events:?}"
        );
        let line = event(&events, "result");
        line.split_once(",\"faultsim\":")
            .unwrap_or_else(|| panic!("no faultsim payload in {line}"))
            .1
            .to_owned()
    };
    let narrow = submit("64");
    let wide = submit("256");
    assert_eq!(
        narrow, wide,
        "lane width is a throughput knob; it must not change the result"
    );
    assert_eq!(narrow, submit("\"auto\""));

    // Malformed lane widths are rejected over the wire, like `jobs`.
    for bad in [r#""wide""#, "128", "1024", "true"] {
        let req = format!(
            r#"{{"cmd":"faultsim","design":"{}","modules":"1+,1*","lanes":{bad}}}"#,
            lobist_server::json::escape(DESIGN)
        );
        let events = client::submit(&endpoint, &req).expect("submit");
        assert!(event(&events, "error").contains("`lanes`"), "{events:?}");
    }

    // The metrics JSON tallies the runs under their concrete widths.
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    let line = event(&metrics, "metrics");
    assert!(line.contains("\"lanes\":{"), "{line}");
    assert!(line.contains("\"64\":{\"runs\":"), "{line}");
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}

#[test]
fn anneal_and_faultsim_run_on_the_daemon() {
    let (endpoint, thread) = start(ServerConfig::default());
    let anneal = client::submit(
        &endpoint,
        &format!(
            r#"{{"cmd":"anneal","design":"{}","modules":"1+,1*","iterations":30,"seed":48879}}"#,
            lobist_server::json::escape(DESIGN)
        ),
    )
    .expect("anneal");
    let line = event(&anneal, "result");
    assert!(
        line.contains("\"anneal\":{\"iterations\":30,\"seed\":48879"),
        "{line}"
    );
    assert!(line.contains("\"overhead\":"), "{line}");

    let fs = client::submit(
        &endpoint,
        &format!(
            r#"{{"cmd":"faultsim","design":"{}","modules":"1+,1*","width":5}}"#,
            lobist_server::json::escape(DESIGN)
        ),
    )
    .expect("faultsim");
    let line = event(&fs, "result");
    assert!(line.contains("\"faultsim\":{\"width\":5"), "{line}");
    assert!(line.contains("\"coverage\":"), "{line}");

    // Both recorded work into the shared engine metrics.
    let metrics = client::submit(&endpoint, r#"{"cmd":"metrics"}"#).expect("metrics");
    let line = event(&metrics, "metrics");
    assert!(line.contains("\"anneal\":{\"runs\":1"), "{line}");
    assert!(!line.contains("\"faults_simulated\":0,"), "{line}");
    shutdown(&endpoint);
    thread.join().expect("run thread").expect("clean shutdown");
}
