//! Criterion benchmarks for cross-design structural memoization: raw
//! canonizer latency, the miss-path overhead of canonical keying (a
//! cold engine pays one canonization per job it must synthesize
//! anyway), and the payoff — a batch carrying isomorphic duplicates
//! answered from the canonical cache instead of re-synthesized.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::explore::Candidate;
use lobist_alloc::flow::FlowOptions;
use lobist_dfg::benchmarks::{self, Benchmark};
use lobist_dfg::canon::{canonize, permute};
use lobist_engine::{Engine, Job};

fn job_of(bench: &Benchmark, label: String) -> Job {
    Job {
        dfg: Arc::new(bench.dfg.clone()),
        candidate: Candidate {
            modules: bench.module_allocation.clone(),
            schedule: bench.schedule.clone(),
        },
        flow: FlowOptions::testable().with_lifetimes(bench.lifetime_options),
        label,
    }
}

fn twin_of(bench: &Benchmark, seed: u64) -> Job {
    let (dfg, schedule) = permute(&bench.dfg, &bench.schedule, seed);
    Job {
        dfg: Arc::new(dfg),
        candidate: Candidate {
            modules: bench.module_allocation.clone(),
            schedule,
        },
        flow: FlowOptions::testable().with_lifetimes(bench.lifetime_options),
        label: format!("{}-twin{seed}", bench.name),
    }
}

/// Raw canonizer latency: WL refinement + tie-breaking + encoding, the
/// per-job cost canonical keying adds to every cache probe.
fn bench_canonize(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonize");
    for bench in benchmarks::paper_suite() {
        group.bench_with_input(BenchmarkId::new("paper", &bench.name), &bench, |b, bench| {
            b.iter(|| canonize(&bench.dfg, &bench.schedule))
        });
    }
    let big = benchmarks::diffeq_unrolled(4);
    group.bench_with_input(BenchmarkId::new("large", &big.name), &big, |b, bench| {
        b.iter(|| canonize(&bench.dfg, &bench.schedule))
    });
    group.finish();
}

/// Miss-path overhead: a cold engine synthesizing distinct designs pays
/// canonization on every job and wins nothing back. `canon_on` vs
/// `canon_off` on the same batch bounds that overhead (acceptance:
/// < 5%).
fn bench_miss_overhead(c: &mut Criterion) {
    let jobs = || -> Vec<Job> {
        benchmarks::paper_suite()
            .iter()
            .map(|b| job_of(b, b.name.to_owned()))
            .collect()
    };
    let mut group = c.benchmark_group("canon_miss_path");
    group.bench_function("canon_on", |b| {
        b.iter(|| Engine::new(1).with_canon(true).run(jobs()))
    });
    group.bench_function("canon_off", |b| {
        b.iter(|| Engine::new(1).with_canon(false).run(jobs()))
    });
    group.finish();
}

/// The payoff: a batch where every design arrives with three isomorphic
/// twins (renamed, reordered). With canonical keys the twins are cache
/// hits remapped in microseconds; with text keys each one re-runs the
/// full synthesis. Acceptance: canon_on >= 1.5x faster wall-clock,
/// byte-identical results.
fn bench_twin_batch(c: &mut Criterion) {
    let jobs = || -> Vec<Job> {
        let mut jobs = Vec::new();
        for bench in benchmarks::paper_suite() {
            jobs.push(job_of(&bench, bench.name.to_owned()));
            for seed in [3, 17, 40] {
                jobs.push(twin_of(&bench, seed));
            }
        }
        jobs
    };
    let mut group = c.benchmark_group("canon_twin_batch");
    group.bench_function("canon_on", |b| {
        b.iter(|| Engine::new(1).with_canon(true).run(jobs()))
    });
    group.bench_function("canon_off", |b| {
        b.iter(|| Engine::new(1).with_canon(false).run(jobs()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_canonize,
    bench_miss_overhead,
    bench_twin_batch
);
criterion_main!(benches);
