//! Criterion benchmarks: the BIST test-resource solver — exact
//! branch-and-bound vs. greedy vs. the exhaustive reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_bist::{solve, solve_exhaustive, SolverConfig, SolverMode};
use lobist_datapath::area::AreaModel;
use lobist_dfg::benchmarks;

fn bench_solver_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist_solver");
    let model = AreaModel::default();
    for bench in benchmarks::paper_suite() {
        let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
        let dp = d.data_path.clone();
        group.bench_with_input(
            BenchmarkId::new("exact", &bench.name),
            &bench.name,
            |b, _| {
                b.iter(|| {
                    solve(
                        &dp,
                        &model,
                        &SolverConfig {
                            mode: SolverMode::Exact,
                            ..SolverConfig::default()
                        },
                    )
                    .expect("testable")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", &bench.name),
            &bench.name,
            |b, _| {
                b.iter(|| {
                    solve(
                        &dp,
                        &model,
                        &SolverConfig {
                            mode: SolverMode::Greedy,
                            ..SolverConfig::default()
                        },
                    )
                    .expect("testable")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive", &bench.name),
            &bench.name,
            |b, _| b.iter(|| solve_exhaustive(&dp, &model).expect("testable")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver_modes);
criterion_main!(benches);
