//! Criterion benchmarks: register-allocation scaling on random scheduled
//! DFGs (testable vs. traditional) and on the unrolled diff-eq designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::baseline_regalloc::{self, BaselineAlgorithm};
use lobist_alloc::module_assign::assign_modules;
use lobist_alloc::testable_regalloc::{allocate_registers, TestableAllocOptions};
use lobist_dfg::lifetime::LifetimeOptions;
use lobist_dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist_dfg::{benchmarks, modules::ModuleSet};

fn bench_random_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("regalloc_random");
    for &n in &[10usize, 20, 40, 80] {
        let cfg = RandomDfgConfig {
            num_ops: n,
            num_inputs: 6,
            max_ops_per_step: 4,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(7, &cfg);
        let modules: ModuleSet = "4+,4-,4*,4&".parse().expect("valid");
        let ma = assign_modules(&dfg, &schedule, &modules).expect("assigns");
        group.bench_with_input(BenchmarkId::new("testable", n), &n, |b, _| {
            b.iter(|| {
                allocate_registers(
                    &dfg,
                    &schedule,
                    LifetimeOptions::registered_inputs(),
                    &ma,
                    &TestableAllocOptions::default(),
                )
                .expect("chordal")
            })
        });
        group.bench_with_input(BenchmarkId::new("left_edge", n), &n, |b, _| {
            b.iter(|| {
                baseline_regalloc::allocate_registers(
                    &dfg,
                    &schedule,
                    LifetimeOptions::registered_inputs(),
                    BaselineAlgorithm::LeftEdge,
                )
                .expect("chordal")
            })
        });
    }
    group.finish();
}

fn bench_diffeq_unrolled(c: &mut Criterion) {
    let mut group = c.benchmark_group("regalloc_diffeq");
    for &k in &[1usize, 2, 4] {
        let bench = benchmarks::diffeq_unrolled(k);
        let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
            .expect("assigns");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                allocate_registers(
                    &bench.dfg,
                    &bench.schedule,
                    bench.lifetime_options,
                    &ma,
                    &TestableAllocOptions::default(),
                )
                .expect("chordal")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_scaling, bench_diffeq_unrolled);
criterion_main!(benches);
