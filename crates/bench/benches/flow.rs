//! Criterion benchmarks for the incremental flow cache: cache-miss
//! move-evaluation latency — the cost of pricing a coloring the oracle
//! has never seen — with warm stage caches against the from-scratch
//! reference pipeline (interconnect binding + data-path assembly + BIST
//! solve + netlist statistics). The headline numbers land in
//! BENCH_flow.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::baseline_regalloc::{self, BaselineAlgorithm};
use lobist_alloc::flow::FlowOptions;
use lobist_alloc::flowcache::FlowCache;
use lobist_alloc::module_assign::assign_modules;
use lobist_datapath::ModuleAssignment;
use lobist_dfg::benchmarks::{self, Benchmark};
use lobist_dfg::lifetime::Lifetimes;
use lobist_dfg::VarId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distinct colorings from an annealing-style random walk (one variable
/// to another conflict-free register per step) — the exact population a
/// cache-missing oracle lookup prices during a search.
fn walk_colorings(bench: &Benchmark, steps: usize, seed: u64) -> Vec<Vec<Vec<VarId>>> {
    let lifetimes = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
    let initial = baseline_regalloc::allocate_registers(
        &bench.dfg,
        &bench.schedule,
        bench.lifetime_options,
        BaselineAlgorithm::LeftEdge,
    )
    .expect("left-edge coloring");
    let mut classes: Vec<Vec<VarId>> = initial.classes().to_vec();
    let mut reg_of = vec![usize::MAX; bench.dfg.num_vars()];
    for (r, c) in classes.iter().enumerate() {
        for &v in c {
            reg_of[v.index()] = r;
        }
    }
    let reg_vars = lifetimes.reg_vars().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![classes.clone()];
    'walk: while out.len() < steps {
        for _ in 0..64 {
            let v = reg_vars[rng.gen_range(0..reg_vars.len())];
            let from = reg_of[v.index()];
            let to = rng.gen_range(0..classes.len());
            let ok = to != from
                && classes[from].len() > 1
                && !classes[to].iter().any(|&u| lifetimes.conflicts(u, v));
            if ok {
                classes[from].retain(|&u| u != v);
                classes[to].push(v);
                reg_of[v.index()] = to;
                out.push(classes.clone());
                continue 'walk;
            }
        }
        break;
    }
    out
}

fn setup(bench: &Benchmark) -> (FlowOptions, ModuleAssignment) {
    let flow = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
    let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
        .expect("module assignment");
    (flow, ma)
}

/// One evaluation per iteration, cycling through the walk's colorings so
/// every call prices a state the coloring-level (L1) cache would miss.
fn bench_move_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_move_eval");
    for bench in [benchmarks::ex1(), benchmarks::paulin(), benchmarks::diffeq_unrolled(2)] {
        let (flow, ma) = setup(&bench);
        let colorings = walk_colorings(&bench, 64, 0xF10C + bench.dfg.num_ops() as u64);
        let cache = FlowCache::new(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &ma,
            &flow,
        );
        // Warm the stage caches once: the steady-state regime of a search,
        // where shapes and connectivities repeat across colorings.
        for classes in &colorings {
            let _ = cache.evaluate(classes);
        }
        group.bench_with_input(
            BenchmarkId::new("uncached_before", &bench.name),
            &colorings,
            |b, colorings| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % colorings.len();
                    cache.evaluate_uncached(&colorings[i]).expect("feasible coloring")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flowcache_after", &bench.name),
            &colorings,
            |b, colorings| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % colorings.len();
                    cache.evaluate(&colorings[i]).expect("feasible coloring")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_move_eval);
criterion_main!(benches);
