//! Criterion benchmarks for the static testability analysis: the COP /
//! constant-propagation fixpoint solves per cone against the
//! 256-pattern differential fault simulation they predict, and the
//! design-level parallel driver over the paper suite.
//!
//! The point of the comparison: `lobist analyze` answers "which faults
//! will a pseudorandom session struggle with" without simulating — the
//! bench quantifies how much cheaper the static answer is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_dfg::benchmarks;
use lobist_dfg::OpKind;
use lobist_gatesim::coverage::random_pattern_coverage;
use lobist_gatesim::modules::unit_for;
use lobist_lint::{analyze_design, FixpointScratch, LintUnit, RANDOM_PATTERN_BUDGET};

fn bench_cone_analysis_vs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("testability_cone");
    for &width in &[4u32, 8, 16] {
        for kind in [OpKind::Add, OpKind::Mul] {
            let net = unit_for(kind, width);
            let label = format!("{kind}{width}");
            group.bench_with_input(BenchmarkId::new("analyze", &label), &net, |b, net| {
                let mut scratch = FixpointScratch::new();
                b.iter(|| lobist_lint::analysis::testability::analyze_network(net, &mut scratch))
            });
            group.bench_with_input(BenchmarkId::new("diffsim256", &label), &net, |b, net| {
                b.iter(|| random_pattern_coverage(net, RANDOM_PATTERN_BUDGET, 0xBEEF))
            });
        }
    }
    group.finish();
}

fn bench_paper_suite_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("testability_suite");
    let opts = FlowOptions::testable();
    for bench in benchmarks::paper_suite() {
        let design = synthesize_benchmark(&bench, &opts).expect("synthesizes");
        group.bench_function(BenchmarkId::new("analyze_design", &bench.name), |b| {
            let unit = LintUnit::of_design(
                &bench.dfg,
                &bench.schedule,
                &design,
                bench.lifetime_options,
                &opts.area,
            );
            let mut scratch = FixpointScratch::new();
            b.iter(|| analyze_design(&unit, &mut scratch))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cone_analysis_vs_simulation,
    bench_paper_suite_analysis
);
criterion_main!(benches);
