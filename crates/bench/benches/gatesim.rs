//! Criterion benchmarks: gate-level evaluation and fault simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_dfg::OpKind;
use lobist_gatesim::bist_mode::run_session;
use lobist_gatesim::coverage::{enumerate_faults, random_pattern_coverage};
use lobist_gatesim::modules::unit_for;

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    for kind in [OpKind::Add, OpKind::Mul] {
        for width in [4u32, 8] {
            let net = unit_for(kind, width);
            let id = format!("{kind}{width}");
            group.bench_with_input(BenchmarkId::new("coverage_256", &id), &id, |b, _| {
                b.iter(|| random_pattern_coverage(&net, 256, 7))
            });
        }
    }
    group.finish();
}

fn bench_bist_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist_session");
    for kind in [OpKind::Add, OpKind::Mul] {
        let net = unit_for(kind, 8);
        let faults = enumerate_faults(&net);
        group.bench_function(format!("session_{kind}8"), |b| {
            b.iter(|| run_session(&net, 8, 255, (1, 2), &faults))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim, bench_bist_session);
criterion_main!(benches);
