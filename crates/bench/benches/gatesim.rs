//! Criterion benchmarks: gate-level evaluation and fault simulation.
//!
//! `coverage_256` is the headline case for the cone-limited differential
//! simulator (before/after numbers live in `BENCH_gatesim.json` at the
//! repo root); `faults_dropped` shows how the cost of one batch falls as
//! detected faults leave the undetected list; the parallel cases
//! exercise the engine's partitioned driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_dfg::OpKind;
use lobist_engine::{bist_session_parallel, random_coverage_parallel, FaultSimOptions};
use lobist_gatesim::bist_mode::run_session;
use lobist_gatesim::coverage::{enumerate_faults, random_pattern_coverage};
use lobist_gatesim::modules::unit_for;

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    for kind in [OpKind::Add, OpKind::Mul] {
        for width in [4u32, 8, 16, 32] {
            let net = unit_for(kind, width);
            let id = format!("{kind}{width}");
            group.bench_with_input(BenchmarkId::new("coverage_256", &id), &id, |b, _| {
                b.iter(|| random_pattern_coverage(&net, 256, 7))
            });
        }
    }
    // Pattern-budget scaling on the hardest unit: each batch retires
    // detected faults, so cost per extra batch shrinks as the
    // undetected list dries up.
    let net = unit_for(OpKind::Mul, 8);
    for patterns in [64u64, 256, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("faults_dropped_mul8", patterns),
            &patterns,
            |b, &patterns| b.iter(|| random_pattern_coverage(&net, patterns, 7)),
        );
    }
    // The engine's partitioned + collapsed path (byte-identical output).
    // The pool spawns scoped threads per run, so parallelism only pays
    // once the serial cost clears the spawn overhead — mul16 documents
    // the break-even region, mul32 the win.
    for width in [16u32, 32] {
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("coverage_256_parallel_mul{width}"), workers),
                &workers,
                |b, &workers| {
                    let net = unit_for(OpKind::Mul, width);
                    let opts = FaultSimOptions {
                        workers,
                        collapse: true,
                    };
                    b.iter(|| random_coverage_parallel(&net, 256, 7, opts))
                },
            );
        }
    }
    group.finish();
}

fn bench_bist_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist_session");
    for kind in [OpKind::Add, OpKind::Mul] {
        let net = unit_for(kind, 8);
        let faults = enumerate_faults(&net);
        group.bench_function(format!("session_{kind}8"), |b| {
            b.iter(|| run_session(&net, 8, 255, (1, 2), &faults))
        });
    }
    let net = unit_for(OpKind::Mul, 8);
    group.bench_function("session_*8_parallel4", |b| {
        let opts = FaultSimOptions {
            workers: 4,
            collapse: true,
        };
        b.iter(|| bist_session_parallel(&net, &[], 8, 255, (1, 2), opts))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_sim, bench_bist_session);
criterion_main!(benches);
