//! Criterion benchmarks: gate-level evaluation and fault simulation.
//!
//! `coverage_256` is the headline case for the cone-limited differential
//! simulator (before/after numbers live in `BENCH_gatesim.json` at the
//! repo root); `faults_dropped` shows how the cost of one batch falls as
//! detected faults leave the undetected list; the parallel cases
//! exercise the engine's partitioned driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_dfg::OpKind;
use lobist_engine::{bist_session_parallel, random_coverage_parallel, FaultSimOptions, LaneSelect};
use lobist_gatesim::bist_mode::{run_session, SessionContext};
use lobist_gatesim::coverage::{
    enumerate_faults, random_pattern_coverage, random_pattern_coverage_with,
};
use lobist_gatesim::diffsim::DiffSim;
use lobist_gatesim::lanes::{LaneWord, W256, W512};
use lobist_gatesim::modules::unit_for;
use lobist_gatesim::net::{Fault, GateNetwork};

/// One serial coverage run pinned to lane width `W` (the public entry
/// points auto-select; benchmarking the knob needs it explicit).
fn coverage_at<W: LaneWord>(net: &GateNetwork, faults: &[Fault], patterns: u64) -> u64 {
    let mut sim = DiffSim::<W>::new(net);
    random_pattern_coverage_with(&mut sim, faults, patterns, 7).patterns_applied
}

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim");
    for kind in [OpKind::Add, OpKind::Mul] {
        for width in [4u32, 8, 16, 32] {
            let net = unit_for(kind, width);
            let id = format!("{kind}{width}");
            group.bench_with_input(BenchmarkId::new("coverage_256", &id), &id, |b, _| {
                b.iter(|| random_pattern_coverage(&net, 256, 7))
            });
        }
    }
    // The same 256-pattern budget pinned to each lane width. On this
    // early-exit loop the cone visits are width-invariant (detected
    // faults drop out after block 0), so wide lanes pay for bytes they
    // never use and `l64` wins — these cases document that measurement
    // and guard it; the wide win lives in the full-walk session cases
    // (`bist_session/session_lanes_*`). `auto` resolves to 64 here.
    for width in [16u32, 32] {
        let net = unit_for(OpKind::Mul, width);
        let faults = enumerate_faults(&net);
        let id = |lanes: u32| format!("*{width}_l{lanes}");
        group.bench_function(BenchmarkId::new("coverage_256_lanes", id(64)), |b| {
            b.iter(|| coverage_at::<u64>(&net, &faults, 256))
        });
        group.bench_function(BenchmarkId::new("coverage_256_lanes", id(256)), |b| {
            b.iter(|| coverage_at::<W256>(&net, &faults, 256))
        });
        // A 512-pattern budget for the widest lane, with its own
        // 64-lane reference so the comparison holds the budget fixed.
        group.bench_function(BenchmarkId::new("coverage_512_lanes", id(64)), |b| {
            b.iter(|| coverage_at::<u64>(&net, &faults, 512))
        });
        group.bench_function(BenchmarkId::new("coverage_512_lanes", id(512)), |b| {
            b.iter(|| coverage_at::<W512>(&net, &faults, 512))
        });
    }
    // Pattern-budget scaling on the hardest unit: each batch retires
    // detected faults, so cost per extra batch shrinks as the
    // undetected list dries up.
    let net = unit_for(OpKind::Mul, 8);
    for patterns in [64u64, 256, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("faults_dropped_mul8", patterns),
            &patterns,
            |b, &patterns| b.iter(|| random_pattern_coverage(&net, patterns, 7)),
        );
    }
    // The engine's partitioned + collapsed path (byte-identical output).
    // The pool spawns scoped threads per run, so parallelism only pays
    // once the serial cost clears the spawn overhead — mul16 documents
    // the break-even region, mul32 the win.
    for width in [16u32, 32] {
        for workers in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("coverage_256_parallel_mul{width}"), workers),
                &workers,
                |b, &workers| {
                    let net = unit_for(OpKind::Mul, width);
                    let opts = FaultSimOptions {
                        workers,
                        collapse: true,
                        lanes: LaneSelect::Auto,
                    };
                    b.iter(|| random_coverage_parallel(&net, 256, 7, opts))
                },
            );
        }
    }
    group.finish();
}

fn bench_bist_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist_session");
    for kind in [OpKind::Add, OpKind::Mul] {
        let net = unit_for(kind, 8);
        let faults = enumerate_faults(&net);
        group.bench_function(format!("session_{kind}8"), |b| {
            b.iter(|| run_session(&net, 8, 255, (1, 2), &faults))
        });
    }
    // Session emulation pinned to each lane width: every fault walks
    // its whole cone every batch (the MISR signature needs every
    // pattern, so there is no early exit), which makes batch count the
    // cost driver — the workload where wide lanes genuinely win
    // (~1.3×, bounded by the scalar MISR absorption after the walks).
    let net = unit_for(OpKind::Mul, 8);
    let faults = enumerate_faults(&net);
    fn session_at<W: LaneWord>(net: &GateNetwork, faults: &[Fault], patterns: u64) -> usize {
        let ctx = SessionContext::<W>::prepare(net, &[], 8, patterns, (1, 2));
        let mut sim = DiffSim::<W>::new(net);
        ctx.detect_flags(&mut sim, faults)
            .iter()
            .filter(|f| f.1)
            .count()
    }
    group.bench_function("session_lanes_*8_l64", |b| {
        b.iter(|| session_at::<u64>(&net, &faults, 255))
    });
    group.bench_function("session_lanes_*8_l256", |b| {
        b.iter(|| session_at::<W256>(&net, &faults, 255))
    });
    group.bench_function("session_lanes_*8_l512", |b| {
        b.iter(|| session_at::<W512>(&net, &faults, 255))
    });
    group.bench_function("session_*8_parallel4", |b| {
        let opts = FaultSimOptions {
            workers: 4,
            collapse: true,
            lanes: LaneSelect::Auto,
        };
        b.iter(|| bist_session_parallel(&net, &[], 8, 255, (1, 2), opts))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_sim, bench_bist_session);
criterion_main!(benches);
