//! Criterion benchmarks for subgraph-level canonical memoization: raw
//! fragment-extraction latency (the per-job cost the subcanon tier adds
//! to every miss), the miss-path overhead over distinct paper designs
//! (acceptance: < 5%), and the payoff — a twin-kernel corpus batch
//! where every design arrives with a schedule-shifted sibling that
//! misses the whole-design cache but hits the synthesis-core memo
//! (acceptance: >= 1.5x wall-clock).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::explore::Candidate;
use lobist_alloc::flow::FlowOptions;
use lobist_dfg::benchmarks::{self, Benchmark};
use lobist_dfg::canon::permute_scheduled;
use lobist_dfg::corpus::{self, CorpusKind};
use lobist_dfg::modules::ModuleSet;
use lobist_dfg::scheduling::list_schedule;
use lobist_dfg::subcanon::{extract_fragments, ExtractOptions};
use lobist_dfg::{Dfg, Schedule};
use lobist_engine::{Engine, Job};

fn job_of(bench: &Benchmark, label: String) -> Job {
    Job {
        dfg: Arc::new(bench.dfg.clone()),
        candidate: Candidate {
            modules: bench.module_allocation.clone(),
            schedule: bench.schedule.clone(),
        },
        flow: FlowOptions::testable().with_lifetimes(bench.lifetime_options),
        label,
    }
}

/// The twin-kernel corpus: FIR and matmul sweeps where each design is
/// paired with a renamed, schedule-shifted sibling. The sibling is not
/// whole-design isomorphic (its absolute steps differ, so its canonical
/// job key differs), but its rebased synthesis core is identical — the
/// case only the fragment tier can answer.
fn twin_kernel_jobs() -> Vec<Job> {
    let modules: ModuleSet = "1+,1*,1-".parse().expect("known-good set");
    let mut jobs = Vec::new();
    let mut add = |kind: CorpusKind, size: u32, seed: u64| {
        let dfg = corpus::generate(kind, size, seed);
        let schedule = list_schedule(&dfg, &modules).expect("corpus schedules under 1+,1*,1-");
        let (twin, twin_schedule, _) = permute_scheduled(&dfg, &schedule, seed ^ 0x5EED);
        let steps: Vec<u32> = twin_schedule.as_slice().iter().map(|s| s + 1).collect();
        let shifted = Schedule::new(&twin, steps).expect("uniform shifts stay topological");
        let base = format!("{}-{size}", kind.name());
        jobs.push(scheduled_job(&dfg, &schedule, &modules, base.clone()));
        jobs.push(scheduled_job(
            &twin,
            &shifted,
            &modules,
            format!("{base}-twin"),
        ));
    };
    for size in [16, 24, 32] {
        add(CorpusKind::Fir, size, 7);
    }
    for size in [8, 12] {
        add(CorpusKind::Matmul, size, 7);
    }
    jobs
}

fn scheduled_job(dfg: &Dfg, schedule: &Schedule, modules: &ModuleSet, label: String) -> Job {
    Job {
        dfg: Arc::new(dfg.clone()),
        candidate: Candidate {
            modules: modules.clone(),
            schedule: schedule.clone(),
        },
        flow: FlowOptions::testable(),
        label,
    }
}

/// Raw extraction latency: the windowed ancestor-cone walk plus one WL
/// canonization per fragment — the cost `observe_fragments` adds to
/// every synthesized job.
fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("subcanon_extract");
    for bench in benchmarks::paper_suite() {
        group.bench_with_input(
            BenchmarkId::new("paper", &bench.name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    extract_fragments(&bench.dfg, &bench.schedule, &ExtractOptions::default())
                })
            },
        );
    }
    let big = benchmarks::diffeq_unrolled(4);
    group.bench_with_input(BenchmarkId::new("large", &big.name), &big, |b, bench| {
        b.iter(|| extract_fragments(&bench.dfg, &bench.schedule, &ExtractOptions::default()))
    });
    group.finish();
}

/// Miss-path overhead: a cold engine over the five distinct paper
/// designs extracts fragments and consults the core memo on every job
/// without ever winning anything back (acceptance: < 5%).
fn bench_miss_overhead(c: &mut Criterion) {
    let jobs = || -> Vec<Job> {
        benchmarks::paper_suite()
            .iter()
            .map(|b| job_of(b, b.name.to_owned()))
            .collect()
    };
    let mut group = c.benchmark_group("subcanon_miss_path");
    group.bench_function("subcanon_on", |b| {
        b.iter(|| Engine::new(1).with_subcanon(true).run(jobs()))
    });
    group.bench_function("subcanon_off", |b| {
        b.iter(|| Engine::new(1).with_subcanon(false).run(jobs()))
    });
    group.finish();
}

/// The payoff: the twin-kernel corpus batch. Every sibling misses the
/// whole-design cache either way; with the fragment tier on, its
/// synthesis core is answered from the memo and only the cheap
/// schedule-dependent reconstruction runs (acceptance: >= 1.5x).
fn bench_twin_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("subcanon_twin_kernels");
    group.sample_size(10);
    group.bench_function("subcanon_on", |b| {
        b.iter(|| Engine::new(1).with_subcanon(true).run(twin_kernel_jobs()))
    });
    group.bench_function("subcanon_off", |b| {
        b.iter(|| Engine::new(1).with_subcanon(false).run(twin_kernel_jobs()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extract,
    bench_miss_overhead,
    bench_twin_kernels
);
criterion_main!(benches);
