//! Criterion benchmarks for the annealing search engine: the
//! memoized-oracle serial chain against the from-scratch ("before")
//! evaluation discipline, pool-backed speculative batches at 1, 2 and N
//! workers, and the heap-based clique partitioner against its naive
//! reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::anneal::{
    anneal_registers, anneal_registers_with, AnnealConfig, BatchEvaluator, Coloring, CostOracle,
};
use lobist_alloc::flow::{FlowError, FlowOptions};
use lobist_alloc::module_assign::assign_modules;
use lobist_datapath::ModuleAssignment;
use lobist_dfg::benchmarks::{self, Benchmark};
use lobist_engine::anneal_parallel;
use lobist_graph::clique_partition::{partition_weighted, partition_weighted_naive};
use lobist_graph::UGraph;

/// The seed implementation's evaluation discipline: every move re-runs
/// interconnect binding and the BIST solver from scratch. Kept as the
/// "before" yardstick for the throughput numbers in BENCH_anneal.json.
struct UncachedEvaluator;

impl BatchEvaluator for UncachedEvaluator {
    fn evaluate(&self, oracle: &CostOracle<'_>, trials: &[Coloring]) -> Vec<Result<u64, FlowError>> {
        trials.iter().map(|t| oracle.cost_uncached(t)).collect()
    }
}

fn setup(bench: &Benchmark) -> (FlowOptions, ModuleAssignment) {
    let flow = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
    let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
        .expect("module assignment");
    (flow, ma)
}

fn config() -> AnnealConfig {
    AnnealConfig { iterations: 400, ..Default::default() }
}

fn bench_serial_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal_serial");
    for bench in [benchmarks::ex1(), benchmarks::paulin()] {
        let (flow, ma) = setup(&bench);
        let cfg = config();
        group.bench_with_input(
            BenchmarkId::new("uncached_before", &bench.name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    anneal_registers_with(
                        &bench.dfg,
                        &bench.schedule,
                        bench.lifetime_options,
                        &ma,
                        &flow,
                        &cfg,
                        &UncachedEvaluator,
                    )
                    .expect("anneal")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("memoized_after", &bench.name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    anneal_registers(
                        &bench.dfg,
                        &bench.schedule,
                        bench.lifetime_options,
                        &ma,
                        &flow,
                        &cfg,
                    )
                    .expect("anneal")
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_batches(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut group = c.benchmark_group("anneal_parallel");
    // A design big enough that one BIST solve (~170 µs) dwarfs the pool
    // dispatch, in the cold (converged) phase of the walk, where
    // acceptances are rare and speculative run-lengths long — the regime
    // batched evaluation is built for. (In the hot phase nearly every
    // move is accepted, so the batch commits one move per step and
    // parallelism cannot help: Amdahl applies to the trajectory itself.)
    let bench = benchmarks::fir(8);
    let (flow, ma) = setup(&bench);
    let cfg = AnnealConfig {
        iterations: 120,
        initial_temperature: 0.5,
        batch: 16,
        ..Default::default()
    };
    let mut workers = vec![1usize, 2];
    if cores > 2 {
        workers.push(cores);
    }
    for w in workers {
        group.bench_with_input(BenchmarkId::new("workers", w), &w, |b, &w| {
            b.iter(|| {
                anneal_parallel(
                    &bench.dfg,
                    &bench.schedule,
                    bench.lifetime_options,
                    &ma,
                    &flow,
                    &cfg,
                    w,
                )
                .expect("anneal")
            })
        });
    }
    group.finish();
}

fn bench_multichain(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut group = c.benchmark_group("anneal_multichain");
    let bench = benchmarks::fir(8);
    let (flow, ma) = setup(&bench);
    let cfg = AnnealConfig { iterations: 60, ..Default::default() };
    let chains = 4usize;
    let mut workers = vec![1usize, 2];
    if !workers.contains(&cores.min(chains)) {
        workers.push(cores.min(chains));
    }
    for w in workers {
        group.bench_with_input(BenchmarkId::new("chains4_workers", w), &w, |b, &w| {
            b.iter(|| {
                lobist_engine::anneal_multichain(
                    &bench.dfg,
                    &bench.schedule,
                    bench.lifetime_options,
                    &ma,
                    &flow,
                    &cfg,
                    chains,
                    w,
                )
                .expect("anneal")
            })
        });
    }
    group.finish();
}

fn clique_graph(n: usize) -> UGraph {
    let mut g = UGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if (u * 31 + v * 17) % 3 != 0 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

fn bench_clique_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_partition");
    for n in [32usize, 96] {
        let g = clique_graph(n);
        let w = |u: usize, v: usize| ((u.min(v) * 13 + u.max(v) * 5) % 11) as i64 - 3;
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| partition_weighted_naive(g, w))
        });
        group.bench_with_input(BenchmarkId::new("heap", n), &g, |b, g| {
            b.iter(|| partition_weighted(g, w))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_oracle,
    bench_parallel_batches,
    bench_multichain,
    bench_clique_partition
);
criterion_main!(benches);
