//! Criterion benchmarks for the parallel batch synthesis engine: sweep
//! throughput at 1, 2 and N workers, and the cache hit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lobist_alloc::explore::{explore, ExploreConfig};
use lobist_dfg::benchmarks;
use lobist_dfg::modules::ModuleSet;
use lobist_engine::{explore_parallel, Engine};

fn sweep_config() -> (lobist_dfg::Dfg, ExploreConfig) {
    let bench = benchmarks::paulin();
    let candidates: Vec<ModuleSet> = ["1+,1*,1-", "1+,2*,1-", "2+,2*,2-", "1+,3ALU"]
        .iter()
        .map(|s| s.parse().expect("valid"))
        .collect();
    let mut config = ExploreConfig::new(candidates);
    config.flow = config.flow.with_lifetimes(bench.lifetime_options);
    (bench.dfg, config)
}

fn bench_sweep_workers(c: &mut Criterion) {
    let (dfg, config) = sweep_config();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut group = c.benchmark_group("engine_sweep");
    group.bench_function("serial_reference", |b| b.iter(|| explore(&dfg, &config)));
    let mut workers = vec![1usize, 2];
    if cores > 2 {
        workers.push(cores);
    }
    for w in workers {
        group.bench_with_input(BenchmarkId::new("workers", w), &w, |b, &w| {
            // A fresh engine per iteration: this measures evaluation
            // throughput, not the cache.
            b.iter(|| explore_parallel(&dfg, &config, &Engine::new(w)))
        });
    }
    group.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    let (dfg, config) = sweep_config();
    let mut group = c.benchmark_group("engine_cache");
    let warm = Engine::new(2);
    let _ = explore_parallel(&dfg, &config, &warm);
    group.bench_function("warm_sweep", |b| {
        b.iter(|| explore_parallel(&dfg, &config, &warm))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_workers, bench_cache_hit_path);
criterion_main!(benches);
