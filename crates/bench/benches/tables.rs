//! Criterion benchmarks: full regeneration of each paper table (the whole
//! two-flow pipeline per benchmark).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_full", |b| {
        b.iter(|| lobist_bench::table1().expect("runs"))
    });
    c.bench_function("table2_full", |b| {
        b.iter(|| lobist_bench::table2().expect("runs"))
    });
    c.bench_function("table3_full", |b| {
        b.iter(|| lobist_bench::table3().expect("runs"))
    });
    c.bench_function("ablation_full", |b| {
        b.iter(|| lobist_bench::ablation().expect("runs"))
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
