//! Regenerates the paper's Table I: design comparisons with BIST area
//! overhead for the five benchmarks under traditional vs. testable HLS.

fn main() {
    let rows = lobist_bench::table1().expect("flows succeed on the paper suite");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dfg.clone(),
                r.module_assignment.clone(),
                r.traditional.0.to_string(),
                r.traditional.1.to_string(),
                format!("{:.2}", r.traditional.2),
                r.testable.0.to_string(),
                r.testable.1.to_string(),
                format!("{:.2}", r.testable.2),
                format!("{:.2}", r.reduction_percent),
            ]
        })
        .collect();
    println!("Table I — Design comparisons with BIST area overhead");
    println!("(traditional HLS vs. testable HLS; overhead % of functional gates)\n");
    print!(
        "{}",
        lobist_bench::text_table(
            &[
                "DFG",
                "Modules",
                "Reg(trad)",
                "Mux(trad)",
                "%BIST(trad)",
                "Reg(test)",
                "Mux(test)",
                "%BIST(test)",
                "%Reduction",
            ],
            &data
        )
    );
    println!("\nPaper reported (same table shape, their gate library):");
    println!("  ex1 18.14→10.67 (30.0%), ex2 11.17→7.56 (32.3%), Tseng1 17.65→11.34 (35.8%),");
    println!("  Tseng2 10.04→5.66 (46.6%), Paulin 16.34→9.34 (42.8%).");
}
