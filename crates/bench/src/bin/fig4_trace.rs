//! Regenerates Fig. 4: the variable conflict graph with SD/MCS values and
//! the worked register-assignment trace of the running example.

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_alloc::module_assign::assign_modules;
use lobist_alloc::variable_sets::SharingContext;
use lobist_dfg::benchmarks;
use lobist_dfg::lifetime::Lifetimes;

fn main() {
    let bench = benchmarks::ex1();
    let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
        .expect("assigns");
    let ctx = SharingContext::new(&bench.dfg, &ma);
    let lt = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
    let mcs = lt.max_clique_sizes();
    println!("Fig. 4 — Conflict graph of variables (ex1) with SD and MCS\n");
    let g = lt.conflict_graph();
    for (i, &v) in lt.reg_vars().iter().enumerate() {
        let nbrs: Vec<String> = g
            .neighbors(i)
            .iter()
            .map(|&j| bench.dfg.var(lt.reg_vars()[j]).name.clone())
            .collect();
        println!(
            "  {} (SD={}, MCS={}): conflicts {{{}}}",
            bench.dfg.var(v).name,
            ctx.sd_var(v),
            mcs[i],
            nbrs.join(", ")
        );
    }
    println!("\nWorked coloring (reverse PVES, ΔSD-guided):\n");
    let design = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
    print!("{}", design.trace.as_ref().expect("testable flow records a trace"));
    println!("\nFinal assignment:");
    for (i, class) in design.register_assignment.classes().iter().enumerate() {
        let names: Vec<&str> = class.iter().map(|&v| bench.dfg.var(v).name.as_str()).collect();
        println!("  R{} = {{{}}}", i + 1, names.join(", "));
    }
    println!("\n(The paper's trace ends at ({{c,f,a}}, {{d,g,b,h}}, {{e}}); exact");
    println!("groupings depend on the unrecoverable Fig. 2 figure details, but the");
    println!("structural outcome — shared TPG/SA registers, minimum count — matches.)");
}
