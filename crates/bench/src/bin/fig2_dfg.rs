//! Regenerates Fig. 2: the scheduled DFG of the running example (ex1),
//! as a step-by-step listing and Graphviz DOT.

use lobist_dfg::{benchmarks, dot};

fn main() {
    let bench = benchmarks::ex1();
    println!("Fig. 2 — The scheduled DFG (ex1 reconstruction)\n");
    for step in 1..=bench.schedule.max_step() {
        let ops: Vec<String> = bench
            .schedule
            .ops_in_step(step)
            .into_iter()
            .map(|op| {
                let info = bench.dfg.op(op);
                let name = |o: lobist_dfg::Operand| match o {
                    lobist_dfg::Operand::Var(v) => bench.dfg.var(v).name.clone(),
                    lobist_dfg::Operand::Const(c) => c.to_string(),
                };
                format!(
                    "{} := {} {} {}",
                    bench.dfg.var(info.out).name,
                    name(info.lhs),
                    info.kind,
                    name(info.rhs)
                )
            })
            .collect();
        println!("step {step}: {}", ops.join(" ; "));
    }
    println!("\nGraphviz:\n{}", dot::to_dot(&bench.dfg, &bench.schedule));
}
