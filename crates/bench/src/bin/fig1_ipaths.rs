//! Regenerates Fig. 1: simple I-paths around a binary operator module.
//!
//! Builds the figure's generic configuration — a module `M1` whose right
//! port is fed by one register and whose left port is fed through a mux
//! by two registers — and prints the I-path candidate sets.

use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{
    DataPath, InterconnectAssignment, ModuleAssignment, ModuleId, Port, PortSide,
    RegisterAssignment,
};
use lobist_dfg::lifetime::LifetimeOptions;
use lobist_dfg::{DfgBuilder, OpKind, Schedule};

fn main() {
    // Two ops on one module: op1 reads (r1var, r3var), op2 reads
    // (r2var, r3var) — so the left port sees registers R1 and R2 through
    // a mux and the right port sees R3 directly, as in Fig. 1.
    let mut b = DfgBuilder::new();
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let t1 = b.op(OpKind::Add, "t1", x1.into(), x3.into());
    let t2 = b.op(OpKind::Add, "t2", x2.into(), x3.into());
    b.mark_output(t1);
    b.mark_output(t2);
    let dfg = b.build().expect("well-formed");
    let schedule = Schedule::new(&dfg, vec![1, 2]).expect("valid");
    let modules: lobist_dfg::modules::ModuleSet = "1+".parse().expect("valid");
    let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t1_op", 0), ("t2_op", 0)])
        .expect("capable");
    let ra = RegisterAssignment::from_names(
        &dfg,
        &[vec!["x1", "t1"], vec!["x2", "t2"], vec!["x3"]],
    )
    .expect("names exist");
    let ic = InterconnectAssignment::straight(&dfg);
    let dp = DataPath::build(
        &dfg,
        &schedule,
        LifetimeOptions::registered_inputs(),
        &ma,
        &ra,
        &ic)
    .expect("proper");
    println!("Fig. 1 — A generic configuration with simple I-paths\n");
    println!("{}", lobist_datapath::stats::describe(&dp, &dfg));
    let ip = IPathAnalysis::of(&dp);
    let m = ModuleId(0);
    for side in [PortSide::Left, PortSide::Right] {
        let port = Port { module: m, side };
        let heads: Vec<String> = ip
            .tpg_candidates(m, side)
            .iter()
            .map(|r| r.to_string())
            .collect();
        println!(
            "I-paths to port {port}: heads {{{}}}{}",
            heads.join(", "),
            if heads.len() > 1 { " (via mux, control-activated)" } else { " (always active)" }
        );
    }
    let tails: Vec<String> = ip.sa_candidates(m).iter().map(|r| r.to_string()).collect();
    println!("I-paths from {m} output: tails {{{}}}", tails.join(", "));
}
