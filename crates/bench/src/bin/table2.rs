//! Regenerates the paper's Table II: minimal-area BIST solutions (the
//! register-style mixes) for both flows.

fn main() {
    let rows = lobist_bench::table2().expect("flows succeed on the paper suite");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.dfg.clone(), r.traditional.clone(), r.testable.clone()])
        .collect();
    println!("Table II — Minimal-area BIST solutions\n");
    print!(
        "{}",
        lobist_bench::text_table(&["DFG", "Traditional HLS", "Testable HLS"], &data)
    );
    println!("\nPaper reported:");
    println!("  ex1:    2 CBILBO, 1 TPG            → 1 CBILBO, 1 TPG");
    println!("  ex2:    2 CBILBO, 1 TPG/SA, 2 TPG  → 1 CBILBO, 2 TPG/SA, 1 TPG");
    println!("  Tseng1: 2 CBILBO, 3 TPG/SA         → 1 CBILBO, 3 TPG/SA, 1 TPG");
    println!("  Tseng2: 2 CBILBO, 1 TPG/SA, 1 TPG  → 2 TPG/SA, 1 TPG");
    println!("  Paulin: 3 CBILBO, 1 TPG/SA         → 1 CBILBO, 2 TPG, 1 SA");
}
