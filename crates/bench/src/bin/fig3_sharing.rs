//! Regenerates Fig. 3: how assigning variables of two modules to a common
//! register creates shared-head and shared-tail I-paths.

use lobist_alloc::module_assign::assign_modules;
use lobist_alloc::variable_sets::SharingContext;
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{DataPath, PortSide, RegisterAssignment};
use lobist_dfg::benchmarks;

fn main() {
    let bench = benchmarks::ex1();
    let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
        .expect("assigns");
    let ctx = SharingContext::new(&bench.dfg, &ma);
    println!("Fig. 3 — Sharing of I-paths (ex1)\n");
    println!("Sharing degrees SD(v) under M1 = {{add1, add2}}, M2 = {{mul1, mul2}}:");
    for v in bench.dfg.var_ids() {
        println!("  SD({}) = {}", bench.dfg.var(v).name, ctx.sd_var(v));
    }

    // (a) separate registers: no sharing; (b) merged: c joins a register
    // feeding both modules.
    for (label, groups) in [
        ("separate registers (Fig. 3a)", vec![vec!["c"], vec!["f", "a"], vec!["d", "g"], vec!["b", "h"], vec!["e"]]),
        ("merged for sharing (Fig. 3b)", vec![vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]]),
    ] {
        let ra = RegisterAssignment::from_names(&bench.dfg, &groups).expect("proper names");
        let (ic, _) = lobist_alloc::interconnect::assign_interconnect(
            &bench.dfg, &ma, &ra, &ctx, true,
        );
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &ma,
            &ra,
            &ic)
        .expect("proper");
        let ip = IPathAnalysis::of(&dp);
        let shared_heads = ip.shared_tpg_registers();
        let shared_tails = ip.shared_sa_registers();
        println!("\n{label}: {} registers", dp.num_registers());
        for m in dp.module_ids() {
            let l: Vec<String> = ip.tpg_candidates(m, PortSide::Left).iter().map(|r| r.to_string()).collect();
            let r: Vec<String> = ip.tpg_candidates(m, PortSide::Right).iter().map(|r| r.to_string()).collect();
            let s: Vec<String> = ip.sa_candidates(m).iter().map(|r| r.to_string()).collect();
            println!("  {m}: TPG heads L={{{}}} R={{{}}}, SA tails {{{}}}", l.join(","), r.join(","), s.join(","));
        }
        println!(
            "  shared TPG heads: {:?}; shared SA tails: {:?}",
            shared_heads.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
            shared_tails.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }
}
