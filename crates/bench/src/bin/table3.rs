//! Regenerates the paper's Table III: the Paulin differential-equation
//! benchmark under RALLOC, SYNTEST and our flow.

fn main() {
    let rows = lobist_bench::table3().expect("all three systems synthesize Paulin");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.modules.clone(),
                r.registers.to_string(),
                r.counts[0].to_string(),
                r.counts[1].to_string(),
                r.counts[2].to_string(),
                r.counts[3].to_string(),
                format!("{:.2}", r.overhead_percent),
            ]
        })
        .collect();
    println!("Table III — Design comparison for the Paulin example\n");
    print!(
        "{}",
        lobist_bench::text_table(
            &["System", "Modules", "#Reg", "#TPG", "#SA", "#BILBO", "#CBILBO", "%BIST"],
            &data
        )
    );
    println!("\nPaper reported: RALLOC 5 reg (4 BILBO, 1 CBILBO); SYNTEST 5 reg");
    println!("(4 TPG, 1 SA); Ours 4 reg (2 TPG, 1 SA, 1 CBILBO).");
}
