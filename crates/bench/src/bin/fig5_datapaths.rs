//! Regenerates Fig. 5: the two data paths synthesized from the running
//! example — (a) testability-driven, (b) traditional — with their
//! minimal-area BIST solutions.

use lobist_bench::both_flows;
use lobist_datapath::dot::to_dot_with_styles;
use lobist_dfg::benchmarks;

fn main() {
    let bench = benchmarks::ex1();
    let (trad, test) = both_flows(&bench).expect("both flows synthesize ex1");
    println!("Fig. 5(a) — data path from the testable register assignment\n");
    println!("{}", lobist_datapath::stats::describe(&test.data_path, &bench.dfg));
    println!("{}", test.bist);
    println!("\nFig. 5(b) — data path from the traditional register assignment\n");
    println!("{}", lobist_datapath::stats::describe(&trad.data_path, &bench.dfg));
    println!("{}", trad.bist);
    println!(
        "Overhead: testable {:.2}% vs traditional {:.2}% ({:.1}% reduction)",
        test.bist.overhead_percent,
        trad.bist.overhead_percent,
        100.0 * (trad.bist.overhead.get() as f64 - test.bist.overhead.get() as f64)
            / trad.bist.overhead.get() as f64
    );
    println!("\nGraphviz (testable, registers colored by BIST style):\n");
    print!(
        "{}",
        to_dot_with_styles(&test.data_path, &bench.dfg, &test.bist.styles)
    );
}
