//! Regenerates Fig. 6: the five variable-merge cases and their effect on
//! multiplexers and BIST resources.
//!
//! Each case builds a miniature DFG realizing the scenario, synthesizes
//! it with the two focal variables (i) in separate registers and (ii)
//! merged into one, and reports the mux-leg and BIST-overhead deltas.
//! Constant operands are avoided so every port keeps a controllable
//! pattern source.

use lobist_alloc::interconnect::assign_interconnect;
use lobist_alloc::module_assign::assign_modules;
use lobist_alloc::variable_sets::SharingContext;
use lobist_bist::{solve, SolverConfig};
use lobist_datapath::area::AreaModel;
use lobist_datapath::{DataPath, RegisterAssignment};
use lobist_dfg::lifetime::LifetimeOptions;
use lobist_dfg::{Dfg, DfgBuilder, OpKind, Schedule};

struct Case {
    label: &'static str,
    dfg: Dfg,
    schedule: Schedule,
    modules: lobist_dfg::modules::ModuleSet,
    separate: Vec<Vec<&'static str>>,
    merged: Vec<Vec<&'static str>>,
}

fn report(case: &Case) {
    let ma = assign_modules(&case.dfg, &case.schedule, &case.modules).expect("assigns");
    let ctx = SharingContext::new(&case.dfg, &ma);
    let model = AreaModel::default();
    let mut line = format!("{}:", case.label);
    let mut prev: Option<(usize, u64)> = None;
    for (tag, groups) in [("separate", &case.separate), ("merged", &case.merged)] {
        let ra = RegisterAssignment::from_names(&case.dfg, groups).expect("names");
        let (ic, _) = assign_interconnect(&case.dfg, &ma, &ra, &ctx, true);
        let dp = DataPath::build(
            &case.dfg,
            &case.schedule,
            LifetimeOptions::registered_inputs(),
            &ma,
            &ra,
            &ic)
        .unwrap_or_else(|e| panic!("{}/{tag}: {e}", case.label));
        let legs = dp.total_mux_legs();
        let overhead = solve(&dp, &model, &SolverConfig::default())
            .map(|b| b.overhead.get())
            .expect("testable mini design");
        line.push_str(&format!(
            "  {tag}: {} regs, {legs} legs, BIST +{overhead}g;",
            dp.num_registers()
        ));
        prev = match prev {
            None => Some((legs, overhead)),
            Some((l0, o0)) => {
                line.push_str(&format!(
                    "  Δlegs={:+}, ΔBIST={:+}g",
                    legs as i64 - l0 as i64,
                    overhead as i64 - o0 as i64
                ));
                None
            }
        };
    }
    println!("{line}");
}

fn main() {
    println!("Fig. 6 — Effect of register merging on interconnect and BIST\n");

    // Case 1: merged variables u, v have different source modules and
    // different destination modules.
    {
        let mut b = DfgBuilder::new();
        let (p, q, r, s) = (b.input("p"), b.input("q"), b.input("r"), b.input("s"));
        let (k1, k2) = (b.input("k1"), b.input("k2"));
        let u = b.op(OpKind::Add, "u", p.into(), q.into());
        let v = b.op(OpKind::Mul, "v", r.into(), s.into());
        let w = b.op(OpKind::Sub, "w", u.into(), k1.into());
        let x = b.op(OpKind::And, "x", v.into(), k2.into());
        b.mark_output(w);
        b.mark_output(x);
        let dfg = b.build().expect("ok");
        // u@1, v@2, w@2, x@3: u and v have disjoint lifetimes.
        let schedule = Schedule::new(&dfg, vec![1, 2, 2, 3]).expect("ok");
        report(&Case {
            label: "Case 1 (diff src, diff dest)        ",
            modules: "1+,1*,1-,1&".parse().expect("ok"),
            separate: vec![
                vec!["p", "u", "w"],
                vec!["q", "v", "x"],
                vec!["r", "k2"],
                vec!["s"],
                vec!["k1"],
            ],
            merged: vec![
                vec!["p", "u", "v", "x"],
                vec!["q", "w"],
                vec!["r", "k2"],
                vec!["s"],
                vec!["k1"],
            ],
            dfg,
            schedule,
        });
    }

    // Case 2: the source module of one variable is the destination
    // module of the other (u feeds the adder that produces v).
    {
        let mut b = DfgBuilder::new();
        let (p, q, r) = (b.input("p"), b.input("q"), b.input("r"));
        let u = b.op(OpKind::Add, "u", p.into(), q.into());
        let v = b.op(OpKind::Add, "v", u.into(), r.into());
        b.mark_output(v);
        let dfg = b.build().expect("ok");
        let schedule = Schedule::new(&dfg, vec![1, 2]).expect("ok");
        report(&Case {
            label: "Case 2 (src of one = dest of other) ",
            modules: "1+".parse().expect("ok"),
            separate: vec![vec!["p", "u"], vec!["q", "v"], vec!["r"]],
            merged: vec![vec!["p", "u", "v"], vec!["q"], vec!["r"]],
            dfg,
            schedule,
        });
    }

    // Case 3: one destination module in common, different sources.
    {
        let mut b = DfgBuilder::new();
        let (p, q, r, s) = (b.input("p"), b.input("q"), b.input("r"), b.input("s"));
        let (k1, k2) = (b.input("k1"), b.input("k2"));
        let u = b.op(OpKind::Add, "u", p.into(), q.into());
        let v = b.op(OpKind::Mul, "v", r.into(), s.into());
        let w = b.op(OpKind::Sub, "w", u.into(), k1.into());
        let x = b.op(OpKind::Sub, "x", v.into(), k2.into());
        b.mark_output(w);
        b.mark_output(x);
        let dfg = b.build().expect("ok");
        let schedule = Schedule::new(&dfg, vec![1, 2, 2, 3]).expect("ok");
        report(&Case {
            label: "Case 3 (common dest module)         ",
            modules: "1+,1*,1-".parse().expect("ok"),
            separate: vec![
                vec!["p", "u", "w"],
                vec!["q", "v", "x"],
                vec!["r", "k2"],
                vec!["s"],
                vec!["k1"],
            ],
            merged: vec![
                vec!["p", "u", "v", "x"],
                vec!["q", "w"],
                vec!["r", "k2"],
                vec!["s"],
                vec!["k1"],
            ],
            dfg,
            schedule,
        });
    }

    // Case 4: one source module in common (both u and v come off the
    // adder), different destination modules.
    {
        let mut b = DfgBuilder::new();
        let (p, q, r, s, k) = (
            b.input("p"),
            b.input("q"),
            b.input("r"),
            b.input("s"),
            b.input("k"),
        );
        let u = b.op(OpKind::Add, "u", p.into(), q.into());
        let v = b.op(OpKind::Add, "v", u.into(), r.into());
        let w = b.op(OpKind::Mul, "w", v.into(), s.into());
        let x = b.op(OpKind::Sub, "x", v.into(), k.into());
        b.mark_output(w);
        b.mark_output(x);
        let dfg = b.build().expect("ok");
        let schedule = Schedule::new(&dfg, vec![1, 2, 3, 3]).expect("ok");
        report(&Case {
            label: "Case 4 (common src module)          ",
            modules: "1+,1*,1-".parse().expect("ok"),
            separate: vec![
                vec!["p", "u", "w"],
                vec!["q", "v", "x"],
                vec!["r", "s"],
                vec!["k"],
            ],
            merged: vec![
                vec!["p", "u", "v"],
                vec!["q", "w"],
                vec!["r", "s", "x"],
                vec!["k"],
            ],
            dfg,
            schedule,
        });
    }

    // Case 5: common source and destination module.
    {
        let mut b = DfgBuilder::new();
        let (p, q, r, s) = (b.input("p"), b.input("q"), b.input("r"), b.input("s"));
        let u = b.op(OpKind::Add, "u", p.into(), q.into());
        let v = b.op(OpKind::Add, "v", u.into(), r.into());
        let w = b.op(OpKind::Add, "w", v.into(), s.into());
        b.mark_output(w);
        let dfg = b.build().expect("ok");
        let schedule = Schedule::new(&dfg, vec![1, 2, 3]).expect("ok");
        report(&Case {
            label: "Case 5 (common src and dest)        ",
            modules: "1+".parse().expect("ok"),
            separate: vec![vec!["p", "u", "w"], vec!["q", "v"], vec!["r", "s"]],
            merged: vec![vec!["p", "u", "v"], vec!["q", "w"], vec!["r", "s"]],
            dfg,
            schedule,
        });
    }

    println!("\n(The paper's qualitative claim: merges sharing a source or destination");
    println!("module save mux legs, and BIST savings compensate any mux increase.)");
}
