//! Extension experiment (beyond the paper's tables): measured stuck-at
//! fault coverage of the synthesized BIST solutions.
//!
//! Part 1 prints pseudo-random coverage curves per functional-unit class
//! (validating the test-length model in `lobist_bist::fault`). Part 2
//! emulates every module test session of each paper benchmark's testable
//! design at the gate level — LFSR patterns, MISR signature — and
//! reports ideal vs. signature coverage (the difference is aliasing).

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_dfg::modules::ModuleClass;
use lobist_dfg::{benchmarks, OpKind};
use lobist_gatesim::bist_mode::{run_session, run_session_with_controls};
use lobist_gatesim::coverage::{enumerate_faults, random_pattern_coverage};
use lobist_gatesim::modules::{alu, unit_for};

const WIDTH: u32 = 8;

fn main() {
    println!("Part 1 — pseudo-random coverage per functional unit ({WIDTH}-bit)\n");
    println!(
        "{:<6} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "unit", "faults", "64 pat", "256 pat", "1024", "4096"
    );
    for kind in [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div, OpKind::And, OpKind::Lt] {
        let net = unit_for(kind, WIDTH);
        let faults = enumerate_faults(&net).len();
        let cov = |patterns: u64| -> f64 {
            random_pattern_coverage(&net, patterns, 0xACE1).coverage() * 100.0
        };
        println!(
            "{:<6} {:>7} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            kind.to_string(),
            faults,
            cov(64),
            cov(256),
            cov(1024),
            cov(4096)
        );
    }

    println!("\nPart 2 — BIST sessions of the testable designs (LFSR → module → MISR)\n");
    println!(
        "{:<8} {:<8} {:>7} {:>10} {:>10} {:>8}",
        "design", "module", "faults", "ideal", "signature", "aliased"
    );
    for bench in benchmarks::paper_suite() {
        let design = synthesize_benchmark(&bench, &FlowOptions::testable())
            .expect("paper suite synthesizes");
        for m in design.data_path.module_ids() {
            let class = design.data_path.module_class(m);
            let patterns = lobist_gatesim::lfsr::max_useful_patterns(WIDTH);
            let seeds = (0xACE1 + m.index() as u64, 0x1BAD + m.index() as u64);
            let report = match class {
                ModuleClass::Op(kind) => {
                    let net = unit_for(kind, WIDTH);
                    let faults = enumerate_faults(&net);
                    run_session(&net, WIDTH, patterns, seeds, &faults)
                }
                ModuleClass::Alu => {
                    // The ALU is exercised per supported function; report
                    // the session for its most random-pattern-resistant
                    // op (the kinds actually bound to it).
                    let kinds: Vec<OpKind> = {
                        let mut ks: Vec<OpKind> = design
                            .data_path
                            .module_ops(m)
                            .iter()
                            .map(|&op| bench.dfg.op(op).kind)
                            .collect();
                        ks.sort();
                        ks.dedup();
                        ks
                    };
                    let net = alu(&kinds, WIDTH);
                    let faults = enumerate_faults(&net);
                    // One sub-session per function; aggregate the union
                    // by summing signature detections over disjoint...
                    // simplest faithful measure: run the *hardest*
                    // function's session over all faults.
                    let mut best = None;
                    for (k, _) in kinds.iter().enumerate() {
                        let mut controls = vec![false; kinds.len()];
                        controls[k] = true;
                        let r = run_session_with_controls(
                            &net, &controls, WIDTH, patterns, seeds, &faults,
                        );
                        best = match best {
                            None => Some(r),
                            Some(prev) => {
                                if r.detected_signature
                                    > (&prev as &lobist_gatesim::bist_mode::SessionReport)
                                        .detected_signature
                                {
                                    Some(r)
                                } else {
                                    Some(prev)
                                }
                            }
                        };
                    }
                    best.expect("ALU has at least one kind")
                }
            };
            println!(
                "{:<8} {:<8} {:>7} {:>9.1}% {:>9.1}% {:>8}",
                bench.name,
                format!("{m} ({class})"),
                report.total_faults,
                report.detected_ideal as f64 * 100.0 / report.total_faults as f64,
                report.coverage() * 100.0,
                report.aliased()
            );
        }
    }
    println!("\n(Ideal = any output mismatch on any pattern; signature = final MISR");
    println!("signature differs. ALU rows report the best single-function session;");
    println!("a full ALU test runs one session per function.)");

    println!("\nPart 3 — measured patterns to 95% coverage vs. the test-length model\n");
    println!("{:<6} {:>14} {:>14}", "unit", "measured(95%)", "model budget");
    for kind in [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div, OpKind::And, OpKind::Lt] {
        let net = unit_for(kind, WIDTH);
        let report = random_pattern_coverage(&net, 8192, 0x5EED);
        // Patterns at which 95% of the total fault population was first
        // detected (64-pattern-block granular).
        let mut firsts: Vec<u64> = report.first_detection.iter().flatten().copied().collect();
        firsts.sort_unstable();
        let needed = if report.detected * 100 >= report.total_faults * 95 {
            let idx = (report.total_faults * 95).div_ceil(100) - 1;
            firsts.get(idx).map(|p| p.to_string()).unwrap_or_else(|| ">8192".into())
        } else {
            format!(">8192 ({}/{} found)", report.detected, report.total_faults)
        };
        let budget = lobist_bist::fault::patterns_required(
            lobist_dfg::modules::ModuleClass::Op(kind),
            WIDTH,
        );
        println!("{:<6} {:>14} {:>14}", kind.to_string(), needed, budget);
    }
    println!("\n(The model's budgets upper-bound the measured requirement for the");
    println!("RP-easy units and correctly rank the divider as the hungriest; the");
    println!("divider never reaches 95% because its restoring array contains");
    println!("structurally redundant faults — identifying those would need a");
    println!("full ATPG redundancy proof, outside this library's scope.)");
}
