//! Extension experiment: the Table III comparison (RALLOC, SYNTEST, ours)
//! extended from Paulin to the whole paper suite.

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_baselines::{ralloc, syntest};
use lobist_datapath::area::{AreaModel, BistStyle};
use lobist_dfg::benchmarks;

fn main() {
    let model = AreaModel::default();
    println!(
        "{:<8} {:<9} {:>4} {:>5} {:>4} {:>6} {:>7} {:>8}",
        "design", "system", "reg", "TPG", "SA", "BILBO", "CBILBO", "BIST %"
    );
    for bench in benchmarks::paper_suite() {
        let ours = synthesize_benchmark(&bench, &FlowOptions::testable())
            .expect("paper suite synthesizes");
        println!(
            "{:<8} {:<9} {:>4} {:>5} {:>4} {:>6} {:>7} {:>7.2}%",
            bench.name,
            "Ours",
            ours.data_path.num_registers(),
            ours.bist.count(BistStyle::Tpg),
            ours.bist.count(BistStyle::Sa),
            ours.bist.count(BistStyle::Bilbo),
            ours.bist.count(BistStyle::Cbilbo),
            ours.bist.overhead_percent
        );
        match ralloc::run(&bench, &model) {
            Ok(r) => println!(
                "{:<8} {:<9} {:>4} {:>5} {:>4} {:>6} {:>7} {:>7.2}%",
                "",
                "RALLOC",
                r.num_registers,
                r.count(BistStyle::Tpg),
                r.count(BistStyle::Sa),
                r.count(BistStyle::Bilbo),
                r.count(BistStyle::Cbilbo),
                r.overhead_percent
            ),
            Err(e) => println!("{:<8} RALLOC failed: {e}", ""),
        }
        match syntest::run(&bench, &model) {
            Ok(r) => println!(
                "{:<8} {:<9} {:>4} {:>5} {:>4} {:>6} {:>7} {:>7.2}%",
                "",
                "SYNTEST",
                r.num_registers,
                r.count(BistStyle::Tpg),
                r.count(BistStyle::Sa),
                r.count(BistStyle::Bilbo),
                r.count(BistStyle::Cbilbo),
                r.overhead_percent
            ),
            Err(e) => println!("{:<8} SYNTEST failed: {e}", ""),
        }
    }
    println!("\n(Table III generalized: on every benchmark our flow needs the fewest");
    println!("registers and the lowest overhead; RALLOC's full-BILBO methodology is");
    println!("the costliest; SYNTEST trades registers for CBILBO-freedom.)");
}
