//! Extension experiment: allocator behaviour as designs grow — register
//! counts, BIST overhead and CBILBO avoidance on the parametric
//! benchmark families (FIR taps, IIR sections, matrix sizes, unrolled
//! diff-eq iterations).

use std::time::Instant;

use lobist_alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist_datapath::area::BistStyle;
use lobist_dfg::benchmarks::{self, Benchmark};

fn row(bench: &Benchmark) {
    let t0 = Instant::now();
    let test = synthesize_benchmark(bench, &FlowOptions::testable());
    let trad = synthesize_benchmark(bench, &FlowOptions::traditional());
    let elapsed = t0.elapsed();
    match (test, trad) {
        (Ok(t), Ok(tr)) => {
            let red = if tr.bist.overhead.get() > 0 {
                100.0 * (tr.bist.overhead.get() as f64 - t.bist.overhead.get() as f64)
                    / tr.bist.overhead.get() as f64
            } else {
                0.0
            };
            println!(
                "{:<14} {:>5} {:>6} {:>5} {:>5} {:>10} {:>10} {:>8.1}% {:>4}/{:<4} {:>9.1?}",
                bench.name,
                bench.dfg.num_ops(),
                bench.dfg.num_vars(),
                bench.schedule.max_step(),
                t.data_path.num_registers(),
                tr.bist.overhead.get(),
                t.bist.overhead.get(),
                red,
                t.bist.count(BistStyle::Cbilbo),
                tr.bist.count(BistStyle::Cbilbo),
                elapsed,
            );
        }
        (Err(e), _) | (_, Err(e)) => println!("{:<14} failed: {e}", bench.name),
    }
}

fn main() {
    println!(
        "{:<14} {:>5} {:>6} {:>5} {:>5} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "design", "ops", "vars", "steps", "regs", "trad gates", "test gates", "reduction",
        "CB t/tr", "both-flow t"
    );
    for n in [4usize, 8, 16, 24] {
        row(&benchmarks::fir(n));
    }
    for n in [1usize, 2, 4, 6] {
        row(&benchmarks::iir_biquad_cascade(n));
    }
    for n in [2usize, 3] {
        row(&benchmarks::matmul(n));
    }
    for k in [1usize, 2, 4, 8] {
        row(&benchmarks::diffeq_unrolled(k));
    }
}
