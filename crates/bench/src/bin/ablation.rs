//! Ablation (ours, beyond the paper): which allocator ingredient buys
//! what, across the paper suite.

fn main() {
    let rows = lobist_bench::ablation().expect("flows succeed");
    let names: Vec<String> = rows[0].outcomes.iter().map(|(n, _, _)| n.clone()).collect();
    let mut header: Vec<&str> = vec!["Config"];
    let name_cols: Vec<String> = names.iter().map(|n| format!("{n} (gates/CB)")).collect();
    header.extend(name_cols.iter().map(|s| s.as_str()));
    header.push("Total gates");
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.config.clone()];
            row.extend(r.outcomes.iter().map(|(_, gates, cb)| {
                if *cb == usize::MAX {
                    format!("{gates}/-")
                } else {
                    format!("{gates}/{cb}")
                }
            }));
            row.push(r.total_overhead.to_string());
            row
        })
        .collect();
    println!("Ablation — BIST overhead (gates) / CBILBO count per benchmark\n");
    print!("{}", lobist_bench::text_table(&header, &data));
}
