//! Experiment harness: programmatic runners for every table and figure
//! of the paper, shared by the `table*`/`fig*` binaries, the Criterion
//! benches and the integration tests.
//!
//! * [`table1`] — Table I: registers, muxes and % BIST area overhead for
//!   the five benchmarks under traditional vs. testable HLS.
//! * [`table2`] — Table II: the minimal-area BIST register mixes.
//! * [`table3`] — Table III: Paulin under RALLOC, SYNTEST and our flow.
//! * [`ablation`] — which allocator ingredient buys what (ours).
//! * [`text_table`] — fixed-width table rendering for the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lobist_alloc::flow::{synthesize_benchmark, Design, FlowError, FlowOptions};
use lobist_alloc::testable_regalloc::TestableAllocOptions;
use lobist_baselines::BaselineReport;
use lobist_datapath::area::{AreaModel, BistStyle};
use lobist_dfg::benchmarks::{self, Benchmark};

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub dfg: String,
    /// Module allocation string.
    pub module_assignment: String,
    /// Traditional flow: registers, muxes, % BIST area.
    pub traditional: (usize, usize, f64),
    /// Testable flow: registers, muxes, % BIST area.
    pub testable: (usize, usize, f64),
    /// Percentage reduction in BIST area overhead.
    pub reduction_percent: f64,
}

/// Runs the Table I experiment over the paper suite.
///
/// # Errors
///
/// Propagates any [`FlowError`] from either flow.
pub fn table1() -> Result<Vec<Table1Row>, FlowError> {
    let mut rows = Vec::new();
    for bench in benchmarks::paper_suite() {
        let trad = synthesize_benchmark(&bench, &FlowOptions::traditional())?;
        let test = synthesize_benchmark(&bench, &FlowOptions::testable())?;
        let reduction = 100.0
            * (trad.bist.overhead.get() as f64 - test.bist.overhead.get() as f64)
            / trad.bist.overhead.get() as f64;
        rows.push(Table1Row {
            dfg: bench.name.clone(),
            module_assignment: bench.module_allocation.to_string(),
            traditional: (
                trad.data_path.num_registers(),
                trad.data_path.num_muxes(),
                trad.bist.overhead_percent,
            ),
            testable: (
                test.data_path.num_registers(),
                test.data_path.num_muxes(),
                test.bist.overhead_percent,
            ),
            reduction_percent: reduction,
        });
    }
    Ok(rows)
}

/// One Table II row: the minimal-area BIST register mixes.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub dfg: String,
    /// Traditional flow's mix, e.g. `"1 CBILBO, 2 TPG"`.
    pub traditional: String,
    /// Testable flow's mix.
    pub testable: String,
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Propagates any [`FlowError`].
pub fn table2() -> Result<Vec<Table2Row>, FlowError> {
    let mut rows = Vec::new();
    for bench in benchmarks::paper_suite() {
        let trad = synthesize_benchmark(&bench, &FlowOptions::traditional())?;
        let test = synthesize_benchmark(&bench, &FlowOptions::testable())?;
        rows.push(Table2Row {
            dfg: bench.name.clone(),
            traditional: trad.bist.mix(),
            testable: test.bist.mix(),
        });
    }
    Ok(rows)
}

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// System name.
    pub system: String,
    /// Module allocation description.
    pub modules: String,
    /// Registers allocated.
    pub registers: usize,
    /// TPG / SA / BILBO / CBILBO counts.
    pub counts: [usize; 4],
    /// Overhead percent.
    pub overhead_percent: f64,
}

impl Table3Row {
    fn from_baseline(r: &BaselineReport, modules: &str) -> Self {
        Self {
            system: r.name.clone(),
            modules: modules.to_owned(),
            registers: r.num_registers,
            counts: [
                r.count(BistStyle::Tpg),
                r.count(BistStyle::Sa),
                r.count(BistStyle::Bilbo),
                r.count(BistStyle::Cbilbo),
            ],
            overhead_percent: r.overhead_percent,
        }
    }

    fn from_design(d: &Design, modules: &str) -> Self {
        Self {
            system: "Ours".to_owned(),
            modules: modules.to_owned(),
            registers: d.data_path.num_registers(),
            counts: [
                d.bist.count(BistStyle::Tpg),
                d.bist.count(BistStyle::Sa),
                d.bist.count(BistStyle::Bilbo),
                d.bist.count(BistStyle::Cbilbo),
            ],
            overhead_percent: d.bist.overhead_percent,
        }
    }
}

/// Errors from the Table III experiment.
#[derive(Debug)]
pub enum Table3Error {
    /// Our flow failed.
    Flow(FlowError),
    /// The RALLOC baseline failed.
    Ralloc(lobist_baselines::ralloc::RallocError),
    /// The SYNTEST baseline failed.
    Syntest(lobist_baselines::syntest::SyntestError),
}

impl std::fmt::Display for Table3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Table3Error::Flow(e) => write!(f, "ours: {e}"),
            Table3Error::Ralloc(e) => write!(f, "RALLOC: {e}"),
            Table3Error::Syntest(e) => write!(f, "SYNTEST: {e}"),
        }
    }
}

impl std::error::Error for Table3Error {}

/// Runs the Table III experiment on the Paulin benchmark.
///
/// # Errors
///
/// Returns [`Table3Error`] from whichever system failed.
pub fn table3() -> Result<Vec<Table3Row>, Table3Error> {
    let bench = benchmarks::paulin();
    let model = AreaModel::default();
    let ralloc = lobist_baselines::ralloc::run(&bench, &model).map_err(Table3Error::Ralloc)?;
    let syntest =
        lobist_baselines::syntest::run(&bench, &model).map_err(Table3Error::Syntest)?;
    let ours = synthesize_benchmark(&bench, &FlowOptions::testable()).map_err(Table3Error::Flow)?;
    let modstr = bench.module_allocation.to_string();
    Ok(vec![
        Table3Row::from_baseline(&ralloc, &modstr),
        Table3Row::from_baseline(&syntest, &modstr),
        Table3Row::from_design(&ours, &modstr),
    ])
}

/// One ablation row: a heuristic configuration and its outcome per
/// benchmark.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Per-benchmark (overhead gates, CBILBO count).
    pub outcomes: Vec<(String, u64, usize)>,
    /// Total overhead across the suite.
    pub total_overhead: u64,
}

/// Runs the allocator-ingredient ablation across the paper suite: all
/// heuristics on, each one individually disabled, all off, plus a
/// simulated-annealing search at the same register count as a headroom
/// yardstick.
///
/// # Errors
///
/// Propagates any [`FlowError`].
pub fn ablation() -> Result<Vec<AblationRow>, FlowError> {
    let configs: Vec<(&str, TestableAllocOptions)> = vec![
        ("all on", TestableAllocOptions::default()),
        (
            "no SD ordering",
            TestableAllocOptions {
                sd_ordering: false,
                ..Default::default()
            },
        ),
        (
            "no case overrides",
            TestableAllocOptions {
                case_overrides: false,
                ..Default::default()
            },
        ),
        (
            "no lemma-2 check",
            TestableAllocOptions {
                lemma2_check: false,
                ..Default::default()
            },
        ),
        (
            "all off",
            TestableAllocOptions {
                sd_ordering: false,
                case_overrides: false,
                lemma2_check: false,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, opts) in configs {
        let mut outcomes = Vec::new();
        let mut total = 0u64;
        for bench in benchmarks::paper_suite() {
            let mut flow = FlowOptions::testable();
            flow.strategy = lobist_alloc::flow::RegAllocStrategy::Testable(opts);
            let d = synthesize_benchmark(&bench, &flow)?;
            total += d.bist.overhead.get();
            outcomes.push((
                bench.name.clone(),
                d.bist.overhead.get(),
                d.bist.count(BistStyle::Cbilbo),
            ));
        }
        rows.push(AblationRow {
            config: label.to_owned(),
            outcomes,
            total_overhead: total,
        });
    }
    // Search-based yardstick at the same register count.
    {
        use lobist_alloc::anneal::{anneal_registers, AnnealConfig};
        use lobist_alloc::module_assign::assign_modules;
        let mut outcomes = Vec::new();
        let mut total = 0u64;
        for bench in benchmarks::paper_suite() {
            let flow = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
            let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
                .map_err(lobist_alloc::flow::FlowError::ModuleAssign)?;
            let result = anneal_registers(
                &bench.dfg,
                &bench.schedule,
                bench.lifetime_options,
                &ma,
                &flow,
                &AnnealConfig::default(),
            )?;
            total += result.overhead;
            outcomes.push((bench.name.clone(), result.overhead, usize::MAX));
        }
        // CBILBO counts are not tracked by the annealer; mark with MAX
        // and render as "-" in the binary.
        rows.push(AblationRow {
            config: "annealed search".to_owned(),
            outcomes,
            total_overhead: total,
        });
    }
    Ok(rows)
}

/// Renders rows of equal length as a fixed-width text table with a
/// header rule.
///
/// # Panics
///
/// Panics if rows have differing lengths.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for r in rows {
        assert_eq!(r.len(), cols, "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, &w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(header.iter().map(|s| s.to_string()).collect(), &widths));
    let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&format!("|-{}-|\n", rule.join("-|-")));
    for r in rows {
        out.push_str(&fmt_row(r.clone(), &widths));
    }
    out
}

/// Runs both flows on one benchmark (used by figure binaries and tests).
///
/// # Errors
///
/// Propagates any [`FlowError`].
pub fn both_flows(bench: &Benchmark) -> Result<(Design, Design), FlowError> {
    let trad = synthesize_benchmark(bench, &FlowOptions::traditional())?;
    let test = synthesize_benchmark(bench, &FlowOptions::testable())?;
    Ok((trad, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_reduction_everywhere() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.reduction_percent > 0.0,
                "{}: expected a BIST-area reduction, got {:.1}%",
                row.dfg,
                row.reduction_percent
            );
            assert_eq!(row.traditional.0, row.testable.0, "{}: register counts", row.dfg);
        }
    }

    #[test]
    fn table2_testable_mixes_have_no_more_cbilbos() {
        let rows = table2().unwrap();
        for row in &rows {
            let cb = |s: &str| {
                s.split(',')
                    .find(|p| p.contains("CBILBO"))
                    .and_then(|p| p.trim().split(' ').next().map(|n| n.parse::<usize>().unwrap_or(0)))
                    .unwrap_or(0)
            };
            assert!(cb(&row.testable) <= cb(&row.traditional), "{}", row.dfg);
        }
    }

    #[test]
    fn table3_ours_uses_fewest_registers() {
        let rows = table3().unwrap();
        assert_eq!(rows.len(), 3);
        let ours = rows.iter().find(|r| r.system == "Ours").unwrap();
        for r in &rows {
            assert!(ours.registers <= r.registers, "{}", r.system);
        }
        // The paper's headline: ours needs both fewer registers and
        // fewer/cheaper BIST registers than RALLOC.
        let ralloc = rows.iter().find(|r| r.system == "RALLOC").unwrap();
        assert!(ours.overhead_percent < ralloc.overhead_percent);
    }

    #[test]
    fn ablation_all_on_is_best_or_tied() {
        let rows = ablation().unwrap();
        let all_on = rows.iter().find(|r| r.config == "all on").unwrap();
        let all_off = rows.iter().find(|r| r.config == "all off").unwrap();
        assert!(all_on.total_overhead <= all_off.total_overhead);
    }

    #[test]
    fn text_table_alignment() {
        let t = text_table(
            &["a", "bb"],
            &[vec!["x".into(), "y".into()], vec!["long".into(), "z".into()]],
        );
        assert!(t.contains("| a    | bb |"));
        assert!(t.contains("| long | z  |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn text_table_rejects_ragged_rows() {
        text_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }
}
