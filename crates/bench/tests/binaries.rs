//! Smoke tests: every table/figure binary runs to completion and prints
//! its headline. (The release-oriented `fault_coverage` and `scaling`
//! binaries are exercised manually; their logic is covered by the
//! gatesim and flow test suites.)

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin).output().unwrap_or_else(|e| panic!("{bin}: {e}"));
    assert!(out.status.success(), "{bin}: {out:?}");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table_binaries_print_their_tables() {
    let t1 = run(env!("CARGO_BIN_EXE_table1"));
    assert!(t1.contains("Table I"));
    assert!(t1.contains("Paulin"));
    let t2 = run(env!("CARGO_BIN_EXE_table2"));
    assert!(t2.contains("Table II"));
    assert!(t2.contains("TPG"));
    let t3 = run(env!("CARGO_BIN_EXE_table3"));
    assert!(t3.contains("Table III"));
    assert!(t3.contains("RALLOC"));
}

#[test]
fn figure_binaries_print_their_figures() {
    assert!(run(env!("CARGO_BIN_EXE_fig1_ipaths")).contains("I-paths to port"));
    assert!(run(env!("CARGO_BIN_EXE_fig2_dfg")).contains("digraph"));
    assert!(run(env!("CARGO_BIN_EXE_fig3_sharing")).contains("shared TPG heads"));
    let f4 = run(env!("CARGO_BIN_EXE_fig4_trace"));
    assert!(f4.contains("SD="));
    assert!(f4.contains("Final assignment"));
    let f5 = run(env!("CARGO_BIN_EXE_fig5_datapaths"));
    assert!(f5.contains("Fig. 5(a)"));
    assert!(f5.contains("reduction"));
    assert!(run(env!("CARGO_BIN_EXE_fig6_merge_cases")).contains("Case 5"));
}

#[test]
fn ablation_binary_prints_all_configs() {
    let out = run(env!("CARGO_BIN_EXE_ablation"));
    for config in ["all on", "no lemma-2 check", "all off", "annealed search"] {
        assert!(out.contains(config), "missing {config}\n{out}");
    }
}

#[test]
fn baselines_sweep_covers_the_suite() {
    let out = run(env!("CARGO_BIN_EXE_baselines_sweep"));
    for name in ["ex1", "ex2", "Tseng1", "Tseng2", "Paulin"] {
        assert!(out.contains(name), "missing {name}");
    }
    assert!(out.contains("SYNTEST"));
}
