//! Graphviz (DOT) export of data-path netlists.
//!
//! Renders registers as boxes and operator modules as trapezoid-ish
//! records with left/right ports, mirroring the paper's Fig. 5 block
//! diagrams. An optional per-register style map highlights the BIST
//! configuration (TPG/SA/BILBO/CBILBO).

use std::fmt::Write as _;

use lobist_dfg::Dfg;

use crate::area::BistStyle;
use crate::netlist::{DataPath, Port, PortSide, SourceRef};

/// Renders the netlist as a Graphviz digraph.
pub fn to_dot(dp: &DataPath, dfg: &Dfg) -> String {
    render(dp, dfg, None)
}

/// As [`to_dot`], coloring each register by its BIST style (`styles` is
/// indexed by register, as in `lobist_bist::BistSolution::styles`).
pub fn to_dot_with_styles(dp: &DataPath, dfg: &Dfg, styles: &[BistStyle]) -> String {
    render(dp, dfg, Some(styles))
}

fn style_color(style: BistStyle) -> &'static str {
    match style {
        BistStyle::Normal => "white",
        BistStyle::Tpg => "palegreen",
        BistStyle::Sa => "lightskyblue",
        BistStyle::Bilbo => "khaki",
        BistStyle::Cbilbo => "lightcoral",
    }
}

fn render(dp: &DataPath, dfg: &Dfg, styles: Option<&[BistStyle]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph datapath {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    // Registers.
    for r in dp.register_ids() {
        let vars: Vec<&str> = dp
            .register_vars(r)
            .iter()
            .map(|&v| dfg.var(v).name.as_str())
            .collect();
        let (fill, extra_label) = match styles {
            Some(s) => {
                let st = s[r.index()];
                let label = if st == BistStyle::Normal {
                    String::new()
                } else {
                    format!("\\n[{st}]")
                };
                (style_color(st), label)
            }
            None => ("white", String::new()),
        };
        let _ = writeln!(
            out,
            "  R{} [shape=box, style=filled, fillcolor={fill}, label=\"R{}\\n{{{}}}{extra_label}\"];",
            r.0 + 1,
            r.0 + 1,
            vars.join(",")
        );
    }
    // Modules with L/R input fields.
    for m in dp.module_ids() {
        let _ = writeln!(
            out,
            "  M{} [shape=record, label=\"{{{{<l>L|<r>R}}|M{} ({})}}\"];",
            m.0 + 1,
            m.0 + 1,
            dp.module_class(m)
        );
    }
    // Port edges.
    for m in dp.module_ids() {
        for (side, anchor) in [(PortSide::Left, "l"), (PortSide::Right, "r")] {
            for s in dp.port_sources(Port { module: m, side }) {
                match s {
                    SourceRef::Register(r) => {
                        let _ = writeln!(out, "  R{} -> M{}:{anchor};", r.0 + 1, m.0 + 1);
                    }
                    SourceRef::ExternalInput(v) => {
                        let name = &dfg.var(*v).name;
                        let _ = writeln!(out, "  \"in_{name}\" [shape=plaintext];");
                        let _ = writeln!(out, "  \"in_{name}\" -> M{}:{anchor};", m.0 + 1);
                    }
                    SourceRef::Constant(c) => {
                        let cid = format!("const_{}_{anchor}_{c}", m.0 + 1);
                        let _ = writeln!(out, "  \"{cid}\" [shape=plaintext, label=\"{c}\"];");
                        let _ = writeln!(out, "  \"{cid}\" -> M{}:{anchor};", m.0 + 1);
                    }
                }
            }
        }
        for r in dp.output_destinations(m) {
            let _ = writeln!(out, "  M{} -> R{};", m.0 + 1, r.0 + 1);
        }
    }
    // External loads into registers.
    for r in dp.register_ids() {
        if dp.has_external_load(r) {
            let _ = writeln!(out, "  \"ext{}\" [shape=point];", r.0 + 1);
            let _ = writeln!(out, "  \"ext{}\" -> R{};", r.0 + 1, r.0 + 1);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_dp() -> (DataPath, Dfg) {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        (dp, bench.dfg)
    }

    #[test]
    fn dot_contains_all_components() {
        let (dp, dfg) = ex1_dp();
        let dot = to_dot(&dp, &dfg);
        assert!(dot.starts_with("digraph"));
        for node in ["R1 [", "R2 [", "R3 [", "M1 [", "M2 ["] {
            assert!(dot.contains(node), "missing {node}\n{dot}");
        }
        assert!(dot.contains("M1 -> R1;") || dot.contains("M1 -> R2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn styles_color_registers() {
        let (dp, dfg) = ex1_dp();
        let styles = vec![BistStyle::Tpg, BistStyle::Cbilbo, BistStyle::Normal];
        let dot = to_dot_with_styles(&dp, &dfg, &styles);
        assert!(dot.contains("palegreen"));
        assert!(dot.contains("lightcoral"));
        assert!(dot.contains("[TPG]"));
        assert!(dot.contains("[CBILBO]"));
        assert!(!dot.contains("[-]"));
    }

    #[test]
    fn port_anchors_present() {
        let (dp, dfg) = ex1_dp();
        let dot = to_dot(&dp, &dfg);
        assert!(dot.contains(":l;"));
        assert!(dot.contains(":r;"));
    }
}
