//! RTL data-path netlists, I-path analysis and the gate-count area model.
//!
//! A data path in the paper's architecture consists of **registers**,
//! combinational **operator modules** (each with a left input port, a
//! right input port and an output port) and **multiplexers** implied by
//! fan-in at ports and register inputs. The BIST methodology reconfigures
//! some registers as test pattern generators (TPG), signature analyzers
//! (SA), BILBOs or CBILBOs; which registers *can* play those roles is
//! determined by the **I-paths** (identity paths, Abadir & Breuer) of the
//! netlist.
//!
//! * [`DataPath`] — the netlist, built from a scheduled DFG plus module,
//!   register and interconnect assignments.
//! * [`ipath`] — simple I-path enumeration (TPG/SA candidate sets).
//! * [`area`] — a parameterized gate-count model including the BIST
//!   register styles ([`area::BistStyle`]).
//!
//! # Examples
//!
//! ```
//! use lobist_datapath::{DataPath, ModuleAssignment, RegisterAssignment, InterconnectAssignment};
//! use lobist_dfg::benchmarks;
//!
//! let bench = benchmarks::ex1();
//! // Paper's testable register assignment: ({c,f,a}, {d,g,b,h}, {e}).
//! let names = [vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]];
//! let regs = RegisterAssignment::from_names(&bench.dfg, &names)?;
//! let modules = ModuleAssignment::from_op_names(
//!     &bench.dfg,
//!     &bench.module_allocation,
//!     &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
//! )?;
//! let ic = InterconnectAssignment::straight(&bench.dfg);
//! let dp = DataPath::build(&bench.dfg, &bench.schedule, bench.lifetime_options,
//!                          &modules, &regs, &ic)?;
//! assert_eq!(dp.num_registers(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod assignment;
pub mod dot;
pub mod ipath;
mod netlist;
pub mod simulate;
pub mod stats;
pub mod vcd;
pub mod verilog;
pub mod verilog_bist;

pub use assignment::{
    AssignmentError, InterconnectAssignment, ModuleAssignment, RegisterAssignment,
};
pub use netlist::{DataPath, DataPathError, ModuleId, Port, PortSide, RegisterId, SourceRef};
