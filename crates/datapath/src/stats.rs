//! Summary statistics and pretty-printing for data paths.

use std::fmt;

use crate::area::{AreaModel, GateCount};
use crate::netlist::{DataPath, Port, PortSide};

/// Headline statistics of a data path under an area model.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPathStats {
    /// Number of registers.
    pub registers: usize,
    /// Number of operator modules.
    pub modules: usize,
    /// Number of multiplexers (fan-in points > 1).
    pub muxes: usize,
    /// Total multiplexer legs.
    pub mux_legs: usize,
    /// Functional gate count (registers + modules + muxes).
    pub functional_gates: GateCount,
}

impl DataPathStats {
    /// Computes statistics for `dp` under `model`.
    pub fn of(dp: &DataPath, model: &AreaModel) -> Self {
        Self {
            registers: dp.num_registers(),
            modules: dp.num_modules(),
            muxes: dp.num_muxes(),
            mux_legs: dp.total_mux_legs(),
            functional_gates: model.functional_area(dp),
        }
    }
}

impl fmt::Display for DataPathStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} registers, {} modules, {} muxes ({} legs), {}",
            self.registers, self.modules, self.muxes, self.mux_legs, self.functional_gates
        )
    }
}

/// Renders a human-readable netlist description: one line per register
/// (with its variables), per module (with ops and port sources) — the
/// textual analogue of the paper's Fig. 5 block diagrams.
pub fn describe(dp: &DataPath, dfg: &lobist_dfg::Dfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in dp.register_ids() {
        let vars: Vec<&str> = dp
            .register_vars(r)
            .iter()
            .map(|&v| dfg.var(v).name.as_str())
            .collect();
        let srcs: Vec<String> = dp
            .register_sources(r)
            .iter()
            .map(|m| m.to_string())
            .collect();
        let ext = if dp.has_external_load(r) { " +ext" } else { "" };
        let _ = writeln!(
            out,
            "{r}: {{{}}} <- [{}{}]",
            vars.join(","),
            srcs.join(","),
            ext
        );
    }
    for m in dp.module_ids() {
        let ops: Vec<&str> = dp
            .module_ops(m)
            .iter()
            .map(|&o| dfg.op(o).name.as_str())
            .collect();
        let fmt_port = |side: PortSide| -> String {
            dp.port_sources(Port { module: m, side })
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let dests: Vec<String> = dp
            .output_destinations(m)
            .iter()
            .map(|r| r.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{m} ({}) ops={{{}}} L=[{}] R=[{}] -> [{}]",
            dp.module_class(m),
            ops.join(","),
            fmt_port(PortSide::Left),
            fmt_port(PortSide::Right),
            dests.join(",")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_dp() -> (DataPath, lobist_dfg::Dfg) {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        (dp, bench.dfg)
    }

    #[test]
    fn stats_are_consistent() {
        let (dp, _) = ex1_dp();
        let model = AreaModel::default();
        let stats = DataPathStats::of(&dp, &model);
        assert_eq!(stats.registers, 3);
        assert_eq!(stats.modules, 2);
        assert!(stats.functional_gates.get() > 0);
        // Functional area decomposes into parts.
        let parts = model.mux_area(&dp).get()
            + (0..dp.num_registers()).map(|_| model.register().get()).sum::<u64>()
            + dp.module_ids().map(|m| model.module(dp.module_class(m)).get()).sum::<u64>();
        assert_eq!(stats.functional_gates.get(), parts);
    }

    #[test]
    fn display_mentions_counts() {
        let (dp, _) = ex1_dp();
        let stats = DataPathStats::of(&dp, &AreaModel::default());
        let s = stats.to_string();
        assert!(s.contains("3 registers"));
        assert!(s.contains("2 modules"));
    }

    #[test]
    fn describe_lists_every_component() {
        let (dp, dfg) = ex1_dp();
        let text = describe(&dp, &dfg);
        assert!(text.contains("R1:"));
        assert!(text.contains("R3:"));
        assert!(text.contains("M1"));
        assert!(text.contains("M2"));
        assert!(text.contains("add1"));
        assert!(text.contains("mul2"));
    }
}
