//! Gate-count area model, including BIST register styles.
//!
//! The paper reports BIST area overhead "as a percentage increase in the
//! gate count as a result of using the BIST registers from our library"
//! (the USC BITS library, unavailable). This module substitutes a
//! documented, parameterized model: every component cost is a per-bit (or
//! per-bit² for array structures) gate count times the data-path width.
//! Because both the traditional and the testable flows are scored by the
//! same model, the paper's *relative* comparisons survive even though the
//! absolute percentages shift.
//!
//! Default per-bit costs (8-bit width unless configured otherwise):
//!
//! | Component            | gates          |
//! |----------------------|----------------|
//! | D-FF register        | 8 /bit         |
//! | 2:1 mux leg          | 3 /bit         |
//! | ripple adder         | 9 /bit         |
//! | subtractor           | 10 /bit        |
//! | array multiplier     | 9 /bit²        |
//! | divider              | 12 /bit²       |
//! | AND / OR / XOR       | 2 /bit         |
//! | comparator           | 4 /bit         |
//! | ALU                  | 16 /bit        |
//! | TPG upgrade          | +2 /bit        |
//! | SA upgrade           | +3 /bit        |
//! | BILBO upgrade        | +4 /bit        |
//! | CBILBO upgrade       | +10 /bit (≈2.25× register, CBILBOs duplicate the flip-flop rank) |

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use lobist_dfg::modules::ModuleClass;
use lobist_dfg::OpKind;

use crate::netlist::DataPath;

/// A quantity of logic gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GateCount(pub u64);

impl GateCount {
    /// Zero gates.
    pub const ZERO: GateCount = GateCount(0);

    /// The raw gate count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// This count as a percentage of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero.
    pub fn percent_of(self, base: GateCount) -> f64 {
        assert!(base.0 > 0, "percentage of a zero base is undefined");
        self.0 as f64 * 100.0 / base.0 as f64
    }
}

impl Add for GateCount {
    type Output = GateCount;
    fn add(self, rhs: GateCount) -> GateCount {
        GateCount(self.0 + rhs.0)
    }
}

impl AddAssign for GateCount {
    fn add_assign(&mut self, rhs: GateCount) {
        self.0 += rhs.0;
    }
}

impl Sum for GateCount {
    fn sum<I: Iterator<Item = GateCount>>(iter: I) -> GateCount {
        GateCount(iter.map(|g| g.0).sum())
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gates", self.0)
    }
}

/// How a register is configured for BIST.
///
/// Ordered by capability: every style can do everything the styles below
/// it can. Costs are *not* monotonic in this order alone — see
/// [`AreaModel::style_extra`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BistStyle {
    /// An unmodified register.
    #[default]
    Normal,
    /// Test pattern generator (pseudo-random, LFSR-based).
    Tpg,
    /// Signature analyzer (MISR-based).
    Sa,
    /// BILBO: can act as TPG in one test session and SA in another, but
    /// not both at once.
    Bilbo,
    /// Concurrent BILBO: generates patterns and compacts responses
    /// *simultaneously* — required when one register must be TPG and SA
    /// for the same module's test. Roughly twice the area of a register.
    Cbilbo,
}

impl BistStyle {
    /// All styles in capability order.
    pub const ALL: [BistStyle; 5] = [
        BistStyle::Normal,
        BistStyle::Tpg,
        BistStyle::Sa,
        BistStyle::Bilbo,
        BistStyle::Cbilbo,
    ];

    /// `true` if this style can generate test patterns.
    pub fn can_generate(self) -> bool {
        matches!(self, BistStyle::Tpg | BistStyle::Bilbo | BistStyle::Cbilbo)
    }

    /// `true` if this style can compact responses (signature analysis).
    pub fn can_analyze(self) -> bool {
        matches!(self, BistStyle::Sa | BistStyle::Bilbo | BistStyle::Cbilbo)
    }

    /// `true` if this style can generate and analyze *in the same test
    /// session* (only the CBILBO can).
    pub fn can_do_both_concurrently(self) -> bool {
        matches!(self, BistStyle::Cbilbo)
    }

    /// The least style satisfying both `self` and `other`'s capabilities
    /// (lattice join). `Tpg ∨ Sa = Bilbo`; anything with `Cbilbo` is
    /// `Cbilbo`.
    pub fn join(self, other: BistStyle) -> BistStyle {
        use BistStyle::*;
        match (self, other) {
            (Cbilbo, _) | (_, Cbilbo) => Cbilbo,
            (Bilbo, _) | (_, Bilbo) => Bilbo,
            (Tpg, Sa) | (Sa, Tpg) => Bilbo,
            (Normal, x) | (x, Normal) => x,
            (Tpg, Tpg) => Tpg,
            (Sa, Sa) => Sa,
        }
    }

    /// Short label as used in the paper's Table II (`TPG`, `SA`,
    /// `TPG/SA`, `CBILBO`).
    pub fn label(self) -> &'static str {
        match self {
            BistStyle::Normal => "-",
            BistStyle::Tpg => "TPG",
            BistStyle::Sa => "SA",
            BistStyle::Bilbo => "TPG/SA",
            BistStyle::Cbilbo => "CBILBO",
        }
    }
}

impl fmt::Display for BistStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The parameterized gate-count model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaModel {
    /// Data-path bit width.
    pub width: u32,
    /// Register gates per bit.
    pub register_per_bit: u64,
    /// Mux gates per leg per bit.
    pub mux_leg_per_bit: u64,
    /// Adder gates per bit.
    pub add_per_bit: u64,
    /// Subtractor gates per bit.
    pub sub_per_bit: u64,
    /// Multiplier gates per bit² (array multiplier).
    pub mul_per_bit2: u64,
    /// Divider gates per bit².
    pub div_per_bit2: u64,
    /// Bitwise-logic gates per bit.
    pub logic_per_bit: u64,
    /// Comparator gates per bit.
    pub cmp_per_bit: u64,
    /// ALU gates per bit.
    pub alu_per_bit: u64,
    /// Extra gates per bit to upgrade a register to a TPG.
    pub tpg_extra_per_bit: u64,
    /// Extra gates per bit to upgrade a register to an SA.
    pub sa_extra_per_bit: u64,
    /// Extra gates per bit for a BILBO.
    pub bilbo_extra_per_bit: u64,
    /// Extra gates per bit for a CBILBO.
    pub cbilbo_extra_per_bit: u64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            width: 8,
            register_per_bit: 8,
            mux_leg_per_bit: 3,
            add_per_bit: 9,
            sub_per_bit: 10,
            mul_per_bit2: 9,
            div_per_bit2: 12,
            logic_per_bit: 2,
            cmp_per_bit: 4,
            alu_per_bit: 16,
            tpg_extra_per_bit: 2,
            sa_extra_per_bit: 3,
            bilbo_extra_per_bit: 4,
            cbilbo_extra_per_bit: 10,
        }
    }
}

impl AreaModel {
    /// The default model at a given bit width.
    pub fn with_width(width: u32) -> Self {
        Self {
            width,
            ..Self::default()
        }
    }

    /// Gate cost of one plain register.
    pub fn register(&self) -> GateCount {
        GateCount(self.register_per_bit * self.width as u64)
    }

    /// Gate cost of a multiplexer with `legs` inputs (zero below fan-in
    /// 2: a single source needs no mux).
    pub fn mux(&self, legs: usize) -> GateCount {
        if legs < 2 {
            GateCount::ZERO
        } else {
            GateCount((legs as u64 - 1) * self.mux_leg_per_bit * self.width as u64)
        }
    }

    /// Gate cost of a functional-unit module. For an ALU this is the bare
    /// control/skeleton cost only — use [`alu_with_kinds`](Self::alu_with_kinds)
    /// (as [`functional_area`](Self::functional_area) does) to price the
    /// function blocks it actually contains.
    pub fn module(&self, class: ModuleClass) -> GateCount {
        let w = self.width as u64;
        let gates = match class {
            ModuleClass::Alu => self.alu_per_bit * w,
            ModuleClass::Op(k) => match k {
                OpKind::Add => self.add_per_bit * w,
                OpKind::Sub => self.sub_per_bit * w,
                OpKind::Mul => self.mul_per_bit2 * w * w,
                OpKind::Div => self.div_per_bit2 * w * w,
                OpKind::And | OpKind::Or | OpKind::Xor => self.logic_per_bit * w,
                OpKind::Lt => self.cmp_per_bit * w,
            },
        };
        GateCount(gates)
    }

    /// Realistic cost of an ALU executing the given operation kinds: one
    /// function block per kind plus the per-bit selection logic per kind
    /// plus the base control skeleton (mirrors the structure of the
    /// gate-level `lobist-gatesim` ALU generator).
    pub fn alu_with_kinds(&self, kinds: &[OpKind]) -> GateCount {
        let w = self.width as u64;
        let blocks: u64 = kinds
            .iter()
            .map(|&k| self.module(ModuleClass::Op(k)).get())
            .sum();
        let selection = 2 * w * kinds.len() as u64;
        GateCount(blocks + selection + self.alu_per_bit * w)
    }

    /// The *extra* gates to upgrade a plain register to the given style.
    pub fn style_extra(&self, style: BistStyle) -> GateCount {
        let per_bit = match style {
            BistStyle::Normal => 0,
            BistStyle::Tpg => self.tpg_extra_per_bit,
            BistStyle::Sa => self.sa_extra_per_bit,
            BistStyle::Bilbo => self.bilbo_extra_per_bit,
            BistStyle::Cbilbo => self.cbilbo_extra_per_bit,
        };
        GateCount(per_bit * self.width as u64)
    }

    /// Total functional (pre-BIST) gate count of a data path: registers,
    /// modules (ALUs priced by their actual function kinds) and
    /// multiplexers.
    pub fn functional_area(&self, dp: &DataPath) -> GateCount {
        let regs: GateCount = (0..dp.num_registers()).map(|_| self.register()).sum();
        let mods: GateCount = dp
            .module_ids()
            .map(|m| match dp.module_class(m) {
                ModuleClass::Alu => self.alu_with_kinds(dp.module_kinds(m)),
                class => self.module(class),
            })
            .sum();
        let muxes = self.mux_area(dp);
        regs + mods + muxes
    }

    /// Multiplexer gate count of a data path.
    pub fn mux_area(&self, dp: &DataPath) -> GateCount {
        let mut total = GateCount::ZERO;
        for m in dp.module_ids() {
            for side in [crate::PortSide::Left, crate::PortSide::Right] {
                let fan = dp.port_sources(crate::Port { module: m, side }).len();
                total += self.mux(fan);
            }
        }
        for r in dp.register_ids() {
            total += self.mux(dp.register_fan_in(r));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_arithmetic() {
        let a = GateCount(10);
        let b = GateCount(5);
        assert_eq!(a + b, GateCount(15));
        let mut c = a;
        c += b;
        assert_eq!(c, GateCount(15));
        let s: GateCount = [a, b, b].into_iter().sum();
        assert_eq!(s, GateCount(20));
        assert!((b.percent_of(a) - 50.0).abs() < 1e-9);
        assert_eq!(a.to_string(), "10 gates");
    }

    #[test]
    #[should_panic(expected = "zero base")]
    fn percent_of_zero_panics() {
        GateCount(1).percent_of(GateCount::ZERO);
    }

    #[test]
    fn style_capabilities() {
        assert!(!BistStyle::Normal.can_generate());
        assert!(BistStyle::Tpg.can_generate());
        assert!(!BistStyle::Tpg.can_analyze());
        assert!(BistStyle::Sa.can_analyze());
        assert!(BistStyle::Bilbo.can_generate() && BistStyle::Bilbo.can_analyze());
        assert!(!BistStyle::Bilbo.can_do_both_concurrently());
        assert!(BistStyle::Cbilbo.can_do_both_concurrently());
    }

    #[test]
    fn style_join_is_a_lattice() {
        use BistStyle::*;
        assert_eq!(Tpg.join(Sa), Bilbo);
        assert_eq!(Sa.join(Tpg), Bilbo);
        assert_eq!(Normal.join(Tpg), Tpg);
        assert_eq!(Tpg.join(Tpg), Tpg);
        assert_eq!(Bilbo.join(Sa), Bilbo);
        assert_eq!(Cbilbo.join(Normal), Cbilbo);
        // Join is commutative and idempotent over all pairs.
        for a in BistStyle::ALL {
            assert_eq!(a.join(a), a);
            for b in BistStyle::ALL {
                assert_eq!(a.join(b), b.join(a));
                let j = a.join(b);
                assert!(j.can_generate() || !(a.can_generate() || b.can_generate()));
                assert!(j.can_analyze() || !(a.can_analyze() || b.can_analyze()));
            }
        }
    }

    #[test]
    fn default_model_costs() {
        let m = AreaModel::default();
        assert_eq!(m.register(), GateCount(64));
        assert_eq!(m.mux(1), GateCount::ZERO);
        assert_eq!(m.mux(2), GateCount(24));
        assert_eq!(m.mux(3), GateCount(48));
        assert_eq!(m.module(ModuleClass::Op(OpKind::Add)), GateCount(72));
        assert_eq!(m.module(ModuleClass::Op(OpKind::Mul)), GateCount(9 * 64));
        assert_eq!(m.module(ModuleClass::Alu), GateCount(128));
    }

    #[test]
    fn cbilbo_is_roughly_twice_a_register() {
        let m = AreaModel::default();
        let reg = m.register().get();
        let cbilbo_total = reg + m.style_extra(BistStyle::Cbilbo).get();
        assert!(cbilbo_total >= 2 * reg, "CBILBO should cost ≈2 registers");
        assert!(cbilbo_total <= 5 * reg / 2);
    }

    #[test]
    fn style_extras_are_monotone_in_capability() {
        let m = AreaModel::default();
        assert!(m.style_extra(BistStyle::Normal) < m.style_extra(BistStyle::Tpg));
        assert!(m.style_extra(BistStyle::Tpg) < m.style_extra(BistStyle::Bilbo));
        assert!(m.style_extra(BistStyle::Sa) < m.style_extra(BistStyle::Bilbo));
        assert!(m.style_extra(BistStyle::Bilbo) < m.style_extra(BistStyle::Cbilbo));
    }

    #[test]
    fn width_scales_costs() {
        let m8 = AreaModel::with_width(8);
        let m16 = AreaModel::with_width(16);
        assert_eq!(m16.register().get(), 2 * m8.register().get());
        // Multiplier scales quadratically.
        assert_eq!(
            m16.module(ModuleClass::Op(OpKind::Mul)).get(),
            4 * m8.module(ModuleClass::Op(OpKind::Mul)).get()
        );
    }
}
