//! Simple I-path analysis (Abadir & Breuer).
//!
//! An **I-path** (identity path) carries data unaltered from a register to
//! a module input port, or from a module output port to a register. In
//! the multiplexer connectivity model every direct or through-mux
//! connection is a *simple* I-path, activated by mux control signals.
//!
//! A **BIST embedding** of a module chooses an I-path head (a register,
//! to be made a TPG) for each input port and an I-path tail (a register,
//! to be made an SA) for the output port. This module computes, for each
//! module, the candidate register sets from which embeddings are drawn.

use std::collections::BTreeSet;

use lobist_dfg::VarId;

use crate::netlist::{DataPath, ModuleId, Port, PortSide, RegisterId, SourceRef};

/// The simple I-path structure of a data path: per module, the registers
/// with I-paths to each input port, the controllable primary inputs
/// directly wired to each port, and the registers reachable from the
/// output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IPathAnalysis {
    to_left: Vec<BTreeSet<RegisterId>>,
    to_right: Vec<BTreeSet<RegisterId>>,
    in_left: Vec<BTreeSet<VarId>>,
    in_right: Vec<BTreeSet<VarId>>,
    from_out: Vec<BTreeSet<RegisterId>>,
}

impl IPathAnalysis {
    /// Computes the I-path candidate sets of `dp`.
    pub fn of(dp: &DataPath) -> Self {
        let regs_at = |m: ModuleId, side: PortSide| -> BTreeSet<RegisterId> {
            dp.port_sources(Port { module: m, side })
                .iter()
                .filter_map(|s| match s {
                    SourceRef::Register(r) => Some(*r),
                    _ => None,
                })
                .collect()
        };
        let inputs_at = |m: ModuleId, side: PortSide| -> BTreeSet<VarId> {
            dp.port_sources(Port { module: m, side })
                .iter()
                .filter_map(|s| match s {
                    SourceRef::ExternalInput(v) => Some(*v),
                    _ => None,
                })
                .collect()
        };
        let to_left = dp.module_ids().map(|m| regs_at(m, PortSide::Left)).collect();
        let to_right = dp.module_ids().map(|m| regs_at(m, PortSide::Right)).collect();
        let in_left = dp.module_ids().map(|m| inputs_at(m, PortSide::Left)).collect();
        let in_right = dp
            .module_ids()
            .map(|m| inputs_at(m, PortSide::Right))
            .collect();
        let from_out = dp
            .module_ids()
            .map(|m| dp.output_destinations(m).clone())
            .collect();
        Self {
            to_left,
            to_right,
            in_left,
            in_right,
            from_out,
        }
    }

    /// Controllable primary inputs wired directly to the given port
    /// (partial-intrusion BIST can drive these from the test wrapper, so
    /// they are zero-cost pattern sources).
    pub fn input_candidates(&self, m: ModuleId, side: PortSide) -> &BTreeSet<VarId> {
        match side {
            PortSide::Left => &self.in_left[m.index()],
            PortSide::Right => &self.in_right[m.index()],
        }
    }

    /// Registers with a simple I-path to the given input port — the TPG
    /// candidates for that port.
    pub fn tpg_candidates(&self, m: ModuleId, side: PortSide) -> &BTreeSet<RegisterId> {
        match side {
            PortSide::Left => &self.to_left[m.index()],
            PortSide::Right => &self.to_right[m.index()],
        }
    }

    /// Registers with a simple I-path from the module's output — the SA
    /// candidates.
    pub fn sa_candidates(&self, m: ModuleId) -> &BTreeSet<RegisterId> {
        &self.from_out[m.index()]
    }

    /// `true` if module `m` has at least one complete BIST embedding:
    /// two *distinct* pattern sources (registers or controllable inputs)
    /// for the two ports and any SA register.
    pub fn has_embedding(&self, m: ModuleId) -> bool {
        if self.sa_candidates(m).is_empty() {
            return false;
        }
        // Tag sources so a register and an input never compare equal.
        let side_set = |side: PortSide| -> BTreeSet<(u8, u32)> {
            let mut s: BTreeSet<(u8, u32)> = self
                .tpg_candidates(m, side)
                .iter()
                .map(|r| (0u8, r.0))
                .collect();
            s.extend(self.input_candidates(m, side).iter().map(|v| (1u8, v.0)));
            s
        };
        let l = side_set(PortSide::Left);
        let r = side_set(PortSide::Right);
        match (l.len(), r.len()) {
            (0, _) | (_, 0) => false,
            (1, 1) => l != r,
            _ => true,
        }
    }

    /// Registers that head I-paths into more than one module — shared TPG
    /// candidates (what the paper's sharing-degree heuristic maximizes).
    pub fn shared_tpg_registers(&self) -> BTreeSet<RegisterId> {
        let mut counts: std::collections::BTreeMap<RegisterId, usize> = Default::default();
        for m in 0..self.to_left.len() {
            let mut seen: BTreeSet<RegisterId> = self.to_left[m].clone();
            seen.extend(self.to_right[m].iter().copied());
            for r in seen {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(r, _)| r)
            .collect()
    }

    /// Registers that tail I-paths from more than one module — shared SA
    /// candidates.
    pub fn shared_sa_registers(&self) -> BTreeSet<RegisterId> {
        let mut counts: std::collections::BTreeMap<RegisterId, usize> = Default::default();
        for dests in &self.from_out {
            for &r in dests {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(r, _)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_datapath(groups: &[Vec<&str>], swaps: &[&str]) -> DataPath {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(&bench.dfg, groups).unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let mut ic = InterconnectAssignment::straight(&bench.dfg);
        for name in swaps {
            ic.swap(bench.dfg.op_by_name(name).unwrap());
        }
        DataPath::build(&bench.dfg, &bench.schedule, bench.lifetime_options, &modules, &regs, &ic)
            .unwrap()
    }

    #[test]
    fn testable_assignment_shares_test_registers() {
        // Paper's testable assignment with mul2 operands swapped so both
        // mult ports see two registers: mul1 = (e,g), mul2 = (e,c).
        let dp = ex1_datapath(
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            &["mul2"],
        );
        let ip = IPathAnalysis::of(&dp);
        let adder = ModuleId(0);
        let mult = ModuleId(1);
        // Adder: left = {R1} (a, c), right = {R2} (b, d); SA = {R1 (f), R2 (d)}.
        assert_eq!(
            ip.tpg_candidates(adder, PortSide::Left).iter().copied().collect::<Vec<_>>(),
            vec![RegisterId(0)]
        );
        assert_eq!(
            ip.sa_candidates(adder).iter().copied().collect::<Vec<_>>(),
            vec![RegisterId(0), RegisterId(1)]
        );
        assert!(ip.has_embedding(adder));
        assert!(ip.has_embedding(mult));
        // R2 tails I-paths from both modules (d from adder; b, h from mult).
        assert!(ip.shared_sa_registers().contains(&RegisterId(1)));
    }

    #[test]
    fn embedding_impossible_without_distinct_tpgs() {
        // Degenerate data path: single-op DFG where both operands come
        // from the same register.
        use lobist_dfg::{DfgBuilder, OpKind, Schedule};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Add, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1+".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["x"], vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        let dp = DataPath::build(
            &dfg,
            &schedule,
            lobist_dfg::lifetime::LifetimeOptions::registered_inputs(),
            &ma,
            &ra,
            &ic)
        .unwrap();
        let ip = IPathAnalysis::of(&dp);
        // Both ports fed only by R1 ({x}); no distinct TPG pair exists.
        assert!(!ip.has_embedding(ModuleId(0)));
    }

    #[test]
    fn shared_tpg_registers_detected() {
        let dp = ex1_datapath(
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            &["mul2"],
        );
        let ip = IPathAnalysis::of(&dp);
        // R1 feeds the adder (a, c) and the mult (c on right port after
        // swap) → shared TPG candidate.
        assert!(ip.shared_tpg_registers().contains(&RegisterId(0)));
    }

    #[test]
    fn port_inputs_do_not_appear_as_tpg_candidates() {
        let bench = benchmarks::paulin();
        // Minimal hand register assignment for the 9 computed vars into 4
        // registers (a known-proper grouping).
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[
                vec!["t1", "t3", "t5"],
                vec!["t2", "t6"],
                vec!["t4", "ul"],
                vec!["xl"],
                vec!["yl"],
            ],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[
                ("add1", 0),
                ("add2", 0),
                ("mul1", 1),
                ("mul2", 2),
                ("mul3", 1),
                ("mul4", 2),
                ("mul5", 1),
                ("sub1", 3),
                ("sub2", 3),
            ],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        let ip = IPathAnalysis::of(&dp);
        // The adder's left port is fed by x and y (port inputs) only →
        // no *register* TPG candidates there, but the controllable
        // inputs themselves are (free) pattern sources, so the module is
        // still testable.
        assert!(ip.tpg_candidates(ModuleId(0), PortSide::Left).is_empty());
        assert_eq!(ip.input_candidates(ModuleId(0), PortSide::Left).len(), 2);
        assert!(ip.has_embedding(ModuleId(0)));
    }
}
