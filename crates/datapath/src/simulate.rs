//! Cycle-accurate functional simulation of a data path.
//!
//! Executes the schedule step by step on the structural netlist: operands
//! are read from the registers (or input ports / constant wires) that the
//! assignments bound them to, modules compute, and results are loaded
//! into their destination registers at the end of the step. Comparing the
//! simulated primary outputs against the DFG interpreter
//! ([`lobist_dfg::interp`]) proves that the module, register and
//! interconnect assignments compose into a correct RTL implementation —
//! the library's end-to-end functional check.

use std::collections::HashMap;

use lobist_dfg::interp::apply;
use lobist_dfg::{Dfg, Operand, Schedule, VarId};

use crate::netlist::DataPath;

/// Errors during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A primary input was not supplied a value.
    MissingInput(VarId),
    /// An operand was read from a register that has not been written —
    /// the assignments are inconsistent with the schedule.
    UninitializedRead {
        /// The variable being read.
        var: VarId,
        /// The control step of the read.
        step: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingInput(v) => write!(f, "no value supplied for input {v}"),
            SimError::UninitializedRead { var, step } => {
                write!(f, "variable {var} read from an unwritten register in step {step}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A recorded simulation: the value of every register after every
/// control step (index 0 = after reset/input loading, index `s` = after
/// step `s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    /// Register values per recorded instant.
    pub steps: Vec<Vec<u64>>,
    /// The primary-output values at the end.
    pub outputs: HashMap<VarId, u64>,
}

/// Simulates the data path over the full schedule and returns the values
/// of the primary outputs (read from their registers after the final
/// step).
///
/// Registered primary inputs are loaded "lazily": each arrives in its
/// register at the end of the step before its first use, matching the
/// lifetime convention used during allocation.
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use lobist_datapath::simulate::simulate;
/// use lobist_datapath::{DataPath, InterconnectAssignment, ModuleAssignment, RegisterAssignment};
/// use lobist_dfg::{benchmarks, interp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bench = benchmarks::ex1();
/// let regs = RegisterAssignment::from_names(
///     &bench.dfg,
///     &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
/// )?;
/// let modules = ModuleAssignment::from_op_names(
///     &bench.dfg,
///     &bench.module_allocation,
///     &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
/// )?;
/// let dp = DataPath::build(
///     &bench.dfg, &bench.schedule, bench.lifetime_options,
///     &modules, &regs, &InterconnectAssignment::straight(&bench.dfg),
/// )?;
/// let v = |n: &str| bench.dfg.var_by_name(n).expect("exists");
/// let inputs: HashMap<_, _> =
///     [(v("a"), 1u64), (v("c"), 2), (v("e"), 3), (v("g"), 4)].into_iter().collect();
/// let outputs = simulate(&dp, &bench.dfg, &bench.schedule, &inputs, 8)?;
/// assert_eq!(outputs, interp::outputs(&bench.dfg, &inputs, 8)?);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SimError`] for missing inputs or reads of never-written
/// registers (which indicate an improper assignment).
pub fn simulate(
    dp: &DataPath,
    dfg: &Dfg,
    schedule: &Schedule,
    inputs: &HashMap<VarId, u64>,
    width: u32,
) -> Result<HashMap<VarId, u64>, SimError> {
    simulate_trace(dp, dfg, schedule, inputs, width).map(|t| t.outputs)
}

/// As [`simulate`], also recording every register's value after every
/// step (for waveform export — see [`crate::vcd`]).
///
/// # Errors
///
/// As [`simulate`].
pub fn simulate_trace(
    dp: &DataPath,
    dfg: &Dfg,
    schedule: &Schedule,
    inputs: &HashMap<VarId, u64>,
    width: u32,
) -> Result<SimTrace, SimError> {
    let mask = |x: u64| -> u64 {
        if width >= 64 {
            x
        } else {
            x & ((1u64 << width) - 1)
        }
    };
    let mut reg_value: Vec<u64> = vec![0; dp.num_registers()];
    let mut reg_init: Vec<bool> = vec![false; dp.num_registers()];

    // Arrival step of each registered input: one before its first use.
    let mut arrivals: Vec<(u32, VarId)> = Vec::new();
    for v in dfg.primary_inputs() {
        if dp.register_of(v).is_some() {
            let first = dfg
                .var(v)
                .consumers
                .iter()
                .map(|&op| schedule.step(op))
                .min()
                .unwrap_or(1);
            arrivals.push((first.saturating_sub(1), v));
        }
    }

    let read = |operand: Operand,
                reg_value: &[u64],
                reg_init: &[bool],
                step: u32|
     -> Result<u64, SimError> {
        match operand {
            Operand::Const(c) => Ok(mask(c as u64)),
            Operand::Var(v) => match dp.register_of(v) {
                Some(r) => {
                    if !reg_init[r.index()] {
                        return Err(SimError::UninitializedRead { var: v, step });
                    }
                    Ok(reg_value[r.index()])
                }
                None => inputs
                    .get(&v)
                    .map(|&x| mask(x))
                    .ok_or(SimError::MissingInput(v)),
            },
        }
    };

    // Load inputs that arrive before step 1.
    for &(arrive, v) in &arrivals {
        if arrive == 0 {
            let r = dp.register_of(v).expect("registered input");
            let x = inputs.get(&v).ok_or(SimError::MissingInput(v))?;
            reg_value[r.index()] = mask(*x);
            reg_init[r.index()] = true;
        }
    }

    let mut recorded: Vec<Vec<u64>> = vec![reg_value.clone()];
    for step in 1..=schedule.max_step() {
        // Reads happen combinationally during the step...
        let mut writes: Vec<(usize, u64)> = Vec::new();
        for op in schedule.ops_in_step(step) {
            let info = dfg.op(op);
            let a = read(info.lhs, &reg_value, &reg_init, step)?;
            let b = read(info.rhs, &reg_value, &reg_init, step)?;
            let y = apply(info.kind, a, b, width);
            let r = dp.register_of(info.out).expect("results are registered");
            writes.push((r.index(), y));
        }
        // ...and results plus newly arriving inputs latch at the step edge.
        for (r, y) in writes {
            reg_value[r] = y;
            reg_init[r] = true;
        }
        for &(arrive, v) in &arrivals {
            if arrive == step {
                let r = dp.register_of(v).expect("registered input");
                let x = inputs.get(&v).ok_or(SimError::MissingInput(v))?;
                reg_value[r.index()] = mask(*x);
                reg_init[r.index()] = true;
            }
        }
        recorded.push(reg_value.clone());
    }

    let mut out = HashMap::new();
    for v in dfg.primary_outputs() {
        match dp.register_of(v) {
            Some(r) => {
                if !reg_init[r.index()] {
                    return Err(SimError::UninitializedRead {
                        var: v,
                        step: schedule.max_step() + 1,
                    });
                }
                out.insert(v, reg_value[r.index()]);
            }
            None => {
                // A pass-through output (input marked output).
                let x = inputs.get(&v).ok_or(SimError::MissingInput(v))?;
                out.insert(v, mask(*x));
            }
        }
    }
    Ok(SimTrace {
        steps: recorded,
        outputs: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;
    use lobist_dfg::interp;

    fn ex1_dp() -> (DataPath, lobist_dfg::benchmarks::Benchmark) {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        (dp, bench)
    }

    #[test]
    fn ex1_simulation_matches_interpreter() {
        let (dp, bench) = ex1_dp();
        let v = |n: &str| bench.dfg.var_by_name(n).unwrap();
        for (a, c, e, g) in [(1u64, 2, 3, 4), (250, 251, 252, 253), (0, 0, 0, 0), (7, 100, 9, 200)]
        {
            let inputs: HashMap<VarId, u64> =
                [(v("a"), a), (v("c"), c), (v("e"), e), (v("g"), g)].into_iter().collect();
            let sim = simulate(&dp, &bench.dfg, &bench.schedule, &inputs, 8).unwrap();
            let gold = interp::outputs(&bench.dfg, &inputs, 8).unwrap();
            assert_eq!(sim, gold, "inputs {a},{c},{e},{g}");
        }
    }

    #[test]
    fn missing_input_detected() {
        let (dp, bench) = ex1_dp();
        let err = simulate(&dp, &bench.dfg, &bench.schedule, &HashMap::new(), 8).unwrap_err();
        assert!(matches!(err, SimError::MissingInput(_)));
    }

    #[test]
    fn values_survive_register_sharing() {
        // Register R2 of the testable assignment holds d, g, b and h in
        // turn; the simulation must keep them temporally separated.
        let (dp, bench) = ex1_dp();
        let v = |n: &str| bench.dfg.var_by_name(n).unwrap();
        let inputs: HashMap<VarId, u64> =
            [(v("a"), 11), (v("c"), 13), (v("e"), 17), (v("g"), 19)].into_iter().collect();
        let sim = simulate(&dp, &bench.dfg, &bench.schedule, &inputs, 16).unwrap();
        // b = e*g = 323; d = a+b = 334; f = c+d = 347; h = c*e = 221.
        assert_eq!(sim[&v("f")], 347);
        assert_eq!(sim[&v("h")], 221);
    }
}
