//! Assignment artifacts: operations→modules, variables→registers and
//! operand→port bindings.
//!
//! These types are *carriers*: the algorithms that compute good
//! assignments live in the `lobist-alloc` crate; this module only defines
//! the data and local validity rules so a [`crate::DataPath`] can be
//! assembled from any source (the paper's allocator, a baseline, or a
//! hand-written design).

use std::collections::BTreeSet;
use std::fmt;

use lobist_dfg::modules::{ModuleClass, ModuleSet};
use lobist_dfg::{Dfg, OpId, VarId};

use crate::netlist::{ModuleId, PortSide, RegisterId};

/// Errors constructing assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// A referenced name does not exist in the DFG.
    UnknownName(String),
    /// A variable appears in two register classes.
    DuplicateVariable(VarId),
    /// The per-op module vector has the wrong length.
    WrongLength {
        /// Entries supplied.
        got: usize,
        /// Operations expected.
        expected: usize,
    },
    /// A module index is out of range for the module set.
    ModuleOutOfRange {
        /// The out-of-range index.
        module: usize,
        /// Number of modules available.
        available: usize,
    },
    /// An operation was assigned to a module that cannot execute it.
    Incapable {
        /// The operation.
        op: OpId,
        /// The module index.
        module: usize,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            AssignmentError::DuplicateVariable(v) => {
                write!(f, "variable {v} assigned to two registers")
            }
            AssignmentError::WrongLength { got, expected } => {
                write!(f, "assignment covers {got} operations, expected {expected}")
            }
            AssignmentError::ModuleOutOfRange { module, available } => {
                write!(f, "module index {module} out of range ({available} modules)")
            }
            AssignmentError::Incapable { op, module } => {
                write!(f, "operation {op} cannot execute on module {module}")
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

/// An assignment of operations to physical modules: the paper's
/// `σ : V → M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleAssignment {
    classes: Vec<ModuleClass>,
    module_of: Vec<ModuleId>,
    ops_of: Vec<Vec<OpId>>,
}

impl ModuleAssignment {
    /// Creates an assignment from a per-operation module index vector.
    ///
    /// # Errors
    ///
    /// Returns [`AssignmentError`] if the vector length mismatches, an
    /// index is out of range, or a module cannot execute its operation.
    /// (Temporal exclusivity — one op per module per step — is validated
    /// later by [`crate::DataPath::build`], which has the schedule.)
    pub fn new(
        dfg: &Dfg,
        modules: &ModuleSet,
        module_of: Vec<usize>,
    ) -> Result<Self, AssignmentError> {
        if module_of.len() != dfg.num_ops() {
            return Err(AssignmentError::WrongLength {
                got: module_of.len(),
                expected: dfg.num_ops(),
            });
        }
        for (i, &m) in module_of.iter().enumerate() {
            if m >= modules.len() {
                return Err(AssignmentError::ModuleOutOfRange {
                    module: m,
                    available: modules.len(),
                });
            }
            let op = OpId(i as u32);
            if !modules.class(m).supports(dfg.op(op).kind) {
                return Err(AssignmentError::Incapable { op, module: m });
            }
        }
        let mut ops_of = vec![Vec::new(); modules.len()];
        for (i, &m) in module_of.iter().enumerate() {
            ops_of[m].push(OpId(i as u32));
        }
        Ok(Self {
            classes: modules.classes().to_vec(),
            module_of: module_of.into_iter().map(|m| ModuleId(m as u32)).collect(),
            ops_of,
        })
    }

    /// Convenience constructor mapping operation *names* to module
    /// indices.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new), plus [`AssignmentError::UnknownName`] for a
    /// bad operation name or a missing mapping.
    pub fn from_op_names(
        dfg: &Dfg,
        modules: &ModuleSet,
        pairs: &[(&str, usize)],
    ) -> Result<Self, AssignmentError> {
        let mut module_of = vec![usize::MAX; dfg.num_ops()];
        for &(name, m) in pairs {
            let op = dfg
                .op_by_name(name)
                .ok_or_else(|| AssignmentError::UnknownName(name.to_owned()))?;
            module_of[op.index()] = m;
        }
        if let Some(i) = module_of.iter().position(|&m| m == usize::MAX) {
            return Err(AssignmentError::UnknownName(dfg.op(OpId(i as u32)).name.clone()));
        }
        Self::new(dfg, modules, module_of)
    }

    /// The module executing operation `op`.
    pub fn module_of(&self, op: OpId) -> ModuleId {
        self.module_of[op.index()]
    }

    /// Operations executed by module `m` (the paper's `V_i`; its length is
    /// the *temporal multiplicity* `TM(M_i)`).
    pub fn ops_of(&self, m: ModuleId) -> &[OpId] {
        &self.ops_of[m.index()]
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.classes.len()
    }

    /// Module ids.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.classes.len() as u32).map(ModuleId)
    }

    /// The class of module `m`.
    pub fn class(&self, m: ModuleId) -> ModuleClass {
        self.classes[m.index()]
    }

    /// All module classes by id (cloned).
    pub fn classes_vec(&self) -> Vec<ModuleClass> {
        self.classes.clone()
    }

    /// The paper's *input variable set* `I_{M}`: all operand variables of
    /// the module's instances.
    pub fn input_variable_set(&self, dfg: &Dfg, m: ModuleId) -> BTreeSet<VarId> {
        self.ops_of(m)
            .iter()
            .flat_map(|&op| dfg.op(op).input_vars())
            .collect()
    }

    /// The paper's *output variable set* `O_{M}`: all result variables of
    /// the module's instances.
    pub fn output_variable_set(&self, dfg: &Dfg, m: ModuleId) -> BTreeSet<VarId> {
        self.ops_of(m).iter().map(|&op| dfg.op(op).out).collect()
    }
}

/// An assignment of variables to registers: the paper's partition `Π_R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAssignment {
    classes: Vec<Vec<VarId>>,
    reg_of: Vec<Option<RegisterId>>,
}

impl RegisterAssignment {
    /// Creates a register assignment from explicit variable classes.
    /// Variables not mentioned are port-resident (unregistered).
    ///
    /// # Errors
    ///
    /// Returns [`AssignmentError::DuplicateVariable`] if a variable
    /// appears twice. (Lifetime propriety is validated by
    /// [`crate::DataPath::build`].)
    pub fn new(dfg: &Dfg, classes: Vec<Vec<VarId>>) -> Result<Self, AssignmentError> {
        let mut reg_of: Vec<Option<RegisterId>> = vec![None; dfg.num_vars()];
        for (r, class) in classes.iter().enumerate() {
            for &v in class {
                if reg_of[v.index()].is_some() {
                    return Err(AssignmentError::DuplicateVariable(v));
                }
                reg_of[v.index()] = Some(RegisterId(r as u32));
            }
        }
        Ok(Self { classes, reg_of })
    }

    /// Convenience constructor from variable names.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new), plus [`AssignmentError::UnknownName`].
    pub fn from_names(dfg: &Dfg, names: &[Vec<&str>]) -> Result<Self, AssignmentError> {
        let mut classes = Vec::with_capacity(names.len());
        for group in names {
            let mut class = Vec::with_capacity(group.len());
            for &n in group {
                let v = dfg
                    .var_by_name(n)
                    .ok_or_else(|| AssignmentError::UnknownName(n.to_owned()))?;
                class.push(v);
            }
            classes.push(class);
        }
        Self::new(dfg, classes)
    }

    /// The register holding `v`, if any.
    pub fn register_of(&self, v: VarId) -> Option<RegisterId> {
        self.reg_of[v.index()]
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.classes.len()
    }

    /// The variable classes, indexed by register.
    pub fn classes(&self) -> &[Vec<VarId>] {
        &self.classes
    }

    /// Consumes the assignment, returning the classes.
    pub fn into_classes(self) -> Vec<Vec<VarId>> {
        self.classes
    }
}

/// Operand→port bindings: for each operation, which input port its left
/// operand drives (the right operand drives the other port).
///
/// The paper's interconnect assignment `Π_I` partitions each module's
/// input registers into left-only, right-only and both-ports sets; this
/// type is the per-operation realization of such a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterconnectAssignment {
    lhs_side: Vec<PortSide>,
}

impl InterconnectAssignment {
    /// Creates a binding from an explicit per-operation side vector.
    ///
    /// # Errors
    ///
    /// Returns [`AssignmentError::WrongLength`] on length mismatch.
    pub fn new(dfg: &Dfg, lhs_side: Vec<PortSide>) -> Result<Self, AssignmentError> {
        if lhs_side.len() != dfg.num_ops() {
            return Err(AssignmentError::WrongLength {
                got: lhs_side.len(),
                expected: dfg.num_ops(),
            });
        }
        Ok(Self { lhs_side })
    }

    /// The trivial binding: every left operand to the left port. Always
    /// valid; rarely mux-minimal.
    pub fn straight(dfg: &Dfg) -> Self {
        Self {
            lhs_side: vec![PortSide::Left; dfg.num_ops()],
        }
    }

    /// The port driven by `op`'s left operand.
    pub fn lhs_side(&self, op: OpId) -> PortSide {
        self.lhs_side[op.index()]
    }

    /// Flips the operand binding of `op` (only meaningful for commutative
    /// operations; [`crate::DataPath::build`] rejects swapped
    /// non-commutative operations).
    pub fn swap(&mut self, op: OpId) {
        self.lhs_side[op.index()] = self.lhs_side[op.index()].other();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_dfg::benchmarks;
    use lobist_dfg::OpKind;

    #[test]
    fn module_assignment_variable_sets() {
        let bench = benchmarks::ex1();
        let ma = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let names = |s: &BTreeSet<VarId>| -> Vec<String> {
            s.iter().map(|&v| bench.dfg.var(v).name.clone()).collect()
        };
        let im1 = ma.input_variable_set(&bench.dfg, ModuleId(0));
        let mut im1_names = names(&im1);
        im1_names.sort();
        assert_eq!(im1_names, vec!["a", "b", "c", "d"]);
        let om1 = ma.output_variable_set(&bench.dfg, ModuleId(0));
        let mut om1_names = names(&om1);
        om1_names.sort();
        assert_eq!(om1_names, vec!["d", "f"]);
        assert_eq!(ma.ops_of(ModuleId(1)).len(), 2); // TM(M2) = 2
    }

    #[test]
    fn module_assignment_rejects_incapable() {
        let bench = benchmarks::ex1();
        // Map a multiplication onto the adder.
        let err = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 0), ("mul2", 1)],
        )
        .unwrap_err();
        assert!(matches!(err, AssignmentError::Incapable { .. }));
    }

    #[test]
    fn module_assignment_rejects_out_of_range() {
        let bench = benchmarks::ex1();
        let err = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 5)],
        )
        .unwrap_err();
        assert!(matches!(err, AssignmentError::ModuleOutOfRange { module: 5, .. }));
    }

    #[test]
    fn module_assignment_rejects_missing_op() {
        let bench = benchmarks::ex1();
        let err = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1)],
        )
        .unwrap_err();
        assert!(matches!(err, AssignmentError::UnknownName(_)));
    }

    #[test]
    fn register_assignment_duplicate_rejected() {
        let bench = benchmarks::ex1();
        let err = RegisterAssignment::from_names(&bench.dfg, &[vec!["a", "b"], vec!["a"]])
            .unwrap_err();
        assert!(matches!(err, AssignmentError::DuplicateVariable(_)));
    }

    #[test]
    fn register_assignment_lookup() {
        let bench = benchmarks::ex1();
        let ra = RegisterAssignment::from_names(&bench.dfg, &[vec!["a"], vec!["b", "e"]]).unwrap();
        let a = bench.dfg.var_by_name("a").unwrap();
        let e = bench.dfg.var_by_name("e").unwrap();
        let h = bench.dfg.var_by_name("h").unwrap();
        assert_eq!(ra.register_of(a), Some(RegisterId(0)));
        assert_eq!(ra.register_of(e), Some(RegisterId(1)));
        assert_eq!(ra.register_of(h), None);
        assert_eq!(ra.num_registers(), 2);
    }

    #[test]
    fn interconnect_swap_flips_side() {
        let bench = benchmarks::ex1();
        let mut ic = InterconnectAssignment::straight(&bench.dfg);
        let op = bench.dfg.op_by_name("mul1").unwrap();
        assert_eq!(ic.lhs_side(op), PortSide::Left);
        ic.swap(op);
        assert_eq!(ic.lhs_side(op), PortSide::Right);
        assert_eq!(bench.dfg.op(op).kind, OpKind::Mul);
    }

    #[test]
    fn interconnect_length_checked() {
        let bench = benchmarks::ex1();
        let err = InterconnectAssignment::new(&bench.dfg, vec![PortSide::Left]).unwrap_err();
        assert!(matches!(err, AssignmentError::WrongLength { .. }));
    }
}
