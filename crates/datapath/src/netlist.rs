//! The data-path netlist: registers, operator modules, ports and the
//! multiplexer structure implied by fan-in.

use std::collections::BTreeSet;
use std::fmt;

use lobist_dfg::lifetime::{LifetimeOptions, Lifetimes};
use lobist_dfg::modules::ModuleClass;
use lobist_dfg::{Dfg, OpId, OpKind, Operand, Schedule, VarId};

use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};

/// Identifier of a register in a data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub u32);

impl RegisterId {
    /// Index into [`DataPath`] register storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0 + 1) // paper numbers registers from 1
    }
}

/// Identifier of an operator module in a data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// Index into [`DataPath`] module storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0 + 1)
    }
}

/// The two input ports of a binary operator module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortSide {
    /// The left input port.
    Left,
    /// The right input port.
    Right,
}

impl PortSide {
    /// The opposite port.
    pub fn other(self) -> PortSide {
        match self {
            PortSide::Left => PortSide::Right,
            PortSide::Right => PortSide::Left,
        }
    }
}

impl fmt::Display for PortSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortSide::Left => write!(f, "L"),
            PortSide::Right => write!(f, "R"),
        }
    }
}

/// An input port of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port {
    /// The module owning the port.
    pub module: ModuleId,
    /// Which side.
    pub side: PortSide,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.module, self.side)
    }
}

/// A data source feeding a port or register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceRef {
    /// A register in the data path.
    Register(RegisterId),
    /// A port-resident primary input (never registered).
    ExternalInput(VarId),
    /// A hard-wired constant.
    Constant(i64),
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::Register(r) => write!(f, "{r}"),
            SourceRef::ExternalInput(v) => write!(f, "in:{v}"),
            SourceRef::Constant(c) => write!(f, "#{c}"),
        }
    }
}

/// Errors detected while assembling a [`DataPath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPathError {
    /// The register assignment puts two live-range-overlapping variables
    /// in the same register.
    RegisterConflict {
        /// First variable.
        u: VarId,
        /// Second variable.
        v: VarId,
        /// The shared register.
        register: RegisterId,
    },
    /// A variable needing a register was not assigned one.
    UnassignedVariable(VarId),
    /// Two operations on the same module are scheduled in the same step.
    ModuleOverlap {
        /// The module.
        module: ModuleId,
        /// The control step.
        step: u32,
    },
    /// An operation is assigned to a module that cannot execute its kind.
    IncapableModule {
        /// The operation.
        op: OpId,
        /// The module it was assigned to.
        module: ModuleId,
    },
    /// A non-commutative operation's left operand is bound to the right
    /// port.
    NonCommutativeSwap {
        /// The operation.
        op: OpId,
    },
}

impl fmt::Display for DataPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPathError::RegisterConflict { u, v, register } => {
                write!(f, "variables {u} and {v} overlap but share {register}")
            }
            DataPathError::UnassignedVariable(v) => {
                write!(f, "variable {v} needs a register but has none")
            }
            DataPathError::ModuleOverlap { module, step } => {
                write!(f, "module {module} executes two operations in step {step}")
            }
            DataPathError::IncapableModule { op, module } => {
                write!(f, "operation {op} assigned to incapable module {module}")
            }
            DataPathError::NonCommutativeSwap { op } => {
                write!(f, "non-commutative operation {op} has swapped operand ports")
            }
        }
    }
}

impl std::error::Error for DataPathError {}

/// A structural RTL data path: registers, modules and the connections
/// implied by the three assignments.
///
/// Multiplexers are not stored explicitly; any port or register with more
/// than one distinct source has a mux of that fan-in in front of it
/// (the standard multiplexer connectivity model).
#[derive(Debug, Clone)]
pub struct DataPath {
    num_registers: usize,
    module_classes: Vec<ModuleClass>,
    /// Variables held by each register.
    register_vars: Vec<Vec<VarId>>,
    /// Operations executed by each module.
    module_ops: Vec<Vec<OpId>>,
    /// Sources feeding each module port: `port_sources[m][side]`.
    port_sources: Vec<[BTreeSet<SourceRef>; 2]>,
    /// Registers receiving each module's output.
    output_dests: Vec<BTreeSet<RegisterId>>,
    /// Sources feeding each register (module outputs and external loads).
    register_sources: Vec<BTreeSet<ModuleId>>,
    /// Registers additionally loaded from outside the data path
    /// (registered primary inputs).
    external_loads: Vec<bool>,
    /// Register of each variable (dense over vars; `None` for
    /// port-resident inputs).
    reg_of_var: Vec<Option<RegisterId>>,
    /// The port driven by each operation's left operand (per op).
    lhs_sides: Vec<PortSide>,
    /// The distinct operation kinds each module executes (sorted).
    module_kinds: Vec<Vec<OpKind>>,
}

fn side_index(side: PortSide) -> usize {
    match side {
        PortSide::Left => 0,
        PortSide::Right => 1,
    }
}

impl DataPath {
    /// Assembles and validates a data path from the scheduled DFG and the
    /// three assignments. The assignments are borrowed: per-move
    /// re-synthesis in the annealer evaluates thousands of candidate
    /// colorings against one fixed module assignment, and cloning it per
    /// call dominated the build cost.
    ///
    /// # Errors
    ///
    /// Returns a [`DataPathError`] if the register assignment is improper
    /// or incomplete, a module is double-booked or incapable, or a
    /// non-commutative operation has swapped operands.
    pub fn build(
        dfg: &Dfg,
        schedule: &Schedule,
        lifetime_options: LifetimeOptions,
        modules: &ModuleAssignment,
        registers: &RegisterAssignment,
        interconnect: &InterconnectAssignment,
    ) -> Result<DataPath, DataPathError> {
        let lifetimes = Lifetimes::compute(dfg, schedule, lifetime_options);

        // -- register assignment checks ---------------------------------
        for &v in lifetimes.reg_vars() {
            if registers.register_of(v).is_none() {
                return Err(DataPathError::UnassignedVariable(v));
            }
        }
        for (r, class) in registers.classes().iter().enumerate() {
            for (i, &u) in class.iter().enumerate() {
                for &v in &class[i + 1..] {
                    if lifetimes.conflicts(u, v) {
                        return Err(DataPathError::RegisterConflict {
                            u,
                            v,
                            register: RegisterId(r as u32),
                        });
                    }
                }
            }
        }

        // -- module assignment checks ------------------------------------
        for op in dfg.op_ids() {
            let m = modules.module_of(op);
            if !modules.class(m).supports(dfg.op(op).kind) {
                return Err(DataPathError::IncapableModule { op, module: m });
            }
        }
        for m in modules.module_ids() {
            let mut steps: Vec<u32> = modules
                .ops_of(m)
                .iter()
                .map(|&op| schedule.step(op))
                .collect();
            steps.sort_unstable();
            for w in steps.windows(2) {
                if w[0] == w[1] {
                    return Err(DataPathError::ModuleOverlap { module: m, step: w[0] });
                }
            }
        }

        // -- connections --------------------------------------------------
        let nm = modules.num_modules();
        let nr = registers.num_registers();
        let mut port_sources: Vec<[BTreeSet<SourceRef>; 2]> =
            (0..nm).map(|_| [BTreeSet::new(), BTreeSet::new()]).collect();
        let mut output_dests: Vec<BTreeSet<RegisterId>> = vec![BTreeSet::new(); nm];
        let mut register_sources: Vec<BTreeSet<ModuleId>> = vec![BTreeSet::new(); nr];
        let mut external_loads = vec![false; nr];

        let source_of = |operand: Operand| -> SourceRef {
            match operand {
                Operand::Const(c) => SourceRef::Constant(c),
                Operand::Var(v) => match registers.register_of(v) {
                    Some(r) => SourceRef::Register(r),
                    None => SourceRef::ExternalInput(v),
                },
            }
        };

        for op in dfg.op_ids() {
            let info = dfg.op(op);
            let m = modules.module_of(op);
            let lhs_side = interconnect.lhs_side(op);
            if !info.kind.is_commutative() && lhs_side != PortSide::Left {
                return Err(DataPathError::NonCommutativeSwap { op });
            }
            port_sources[m.index()][side_index(lhs_side)].insert(source_of(info.lhs));
            port_sources[m.index()][side_index(lhs_side.other())].insert(source_of(info.rhs));
            let out_reg = registers
                .register_of(info.out)
                .ok_or(DataPathError::UnassignedVariable(info.out))?;
            output_dests[m.index()].insert(out_reg);
            register_sources[out_reg.index()].insert(m);
        }
        // Registered primary inputs are loaded from outside.
        for v in dfg.primary_inputs() {
            if let Some(r) = registers.register_of(v) {
                external_loads[r.index()] = true;
            }
        }

        let mut reg_of_var = vec![None; dfg.num_vars()];
        for v in dfg.var_ids() {
            reg_of_var[v.index()] = registers.register_of(v);
        }
        let lhs_sides: Vec<PortSide> = dfg.op_ids().map(|op| interconnect.lhs_side(op)).collect();
        let module_kinds: Vec<Vec<OpKind>> = (0..nm)
            .map(|mi| {
                let mut kinds: Vec<OpKind> = modules
                    .ops_of(ModuleId(mi as u32))
                    .iter()
                    .map(|&op| dfg.op(op).kind)
                    .collect();
                kinds.sort();
                kinds.dedup();
                kinds
            })
            .collect();

        Ok(DataPath {
            num_registers: nr,
            module_classes: modules.classes_vec(),
            register_vars: registers.classes().to_vec(),
            module_ops: (0..nm).map(|m| modules.ops_of(ModuleId(m as u32)).to_vec()).collect(),
            port_sources,
            output_dests,
            register_sources,
            external_loads,
            reg_of_var,
            lhs_sides,
            module_kinds,
        })
    }

    /// The distinct operation kinds module `m` executes (sorted). For a
    /// dedicated unit this is its single kind; for an ALU, every kind
    /// bound to it — which determines its realistic area.
    pub fn module_kinds(&self, m: ModuleId) -> &[OpKind] {
        &self.module_kinds[m.index()]
    }

    /// The port driven by `op`'s left operand (its right operand drives
    /// the other port).
    pub fn lhs_side(&self, op: OpId) -> PortSide {
        self.lhs_sides[op.index()]
    }

    /// Returns a copy of the data path with an extra *test-only*
    /// connection from register `r` to the given port — a test point in
    /// the partial-intrusion sense. The connection adds a mux leg (and
    /// is counted by [`num_muxes`](Self::num_muxes) /
    /// [`total_mux_legs`](Self::total_mux_legs)) but carries no
    /// functional data; it exists to give an untestable module a pattern
    /// source.
    #[must_use]
    pub fn with_test_connection(&self, port: Port, r: RegisterId) -> DataPath {
        let mut dp = self.clone();
        dp.port_sources[port.module.index()][side_index(port.side)]
            .insert(SourceRef::Register(r));
        dp
    }

    /// Every module port with register `r` among its sources — the
    /// register's fan-out into the interconnect, in `(module, side)`
    /// order.
    pub fn ports_fed_by(&self, r: RegisterId) -> Vec<Port> {
        let needle = SourceRef::Register(r);
        let mut ports = Vec::new();
        for m in self.module_ids() {
            for side in [PortSide::Left, PortSide::Right] {
                if self.port_sources[m.index()][side_index(side)].contains(&needle) {
                    ports.push(Port { module: m, side });
                }
            }
        }
        ports
    }

    // ------------------------------------------------------------------
    // Defect injection. [`DataPath::build`] only produces structurally
    // sound netlists, so the lint mutation suite needs hooks that break
    // one in controlled ways. These deliberately bypass every invariant;
    // a mutated data path is only fit for feeding the linter.
    // ------------------------------------------------------------------

    /// Removes `source` from a port's source set, leaving the port
    /// undriven if it was the only one. Returns `true` if it was present.
    pub fn cut_port_source(&mut self, port: Port, source: SourceRef) -> bool {
        self.port_sources[port.module.index()][side_index(port.side)].remove(&source)
    }

    /// Inserts an arbitrary (even out-of-range) source on a port.
    pub fn add_port_source(&mut self, port: Port, source: SourceRef) {
        self.port_sources[port.module.index()][side_index(port.side)].insert(source);
    }

    /// Severs the drive from module `m` into register `r` (both the
    /// register's source set and the module's destination set). Returns
    /// `true` if the connection existed.
    pub fn cut_register_driver(&mut self, r: RegisterId, m: ModuleId) -> bool {
        let had = self.register_sources[r.index()].remove(&m);
        self.output_dests[m.index()].remove(&r);
        had
    }

    /// Drops the external (primary-input) load path into register `r`.
    /// Returns `true` if the register had one.
    pub fn clear_external_load(&mut self, r: RegisterId) -> bool {
        std::mem::replace(&mut self.external_loads[r.index()], false)
    }

    /// Appends a register that feeds no port and is driven by no module —
    /// the "allocated but never wired" defect. `external_load` gives it a
    /// primary-input load path.
    pub fn add_isolated_register(&mut self, vars: Vec<VarId>, external_load: bool) -> RegisterId {
        let r = RegisterId(self.num_registers as u32);
        self.num_registers += 1;
        self.register_vars.push(vars);
        self.register_sources.push(BTreeSet::new());
        self.external_loads.push(external_load);
        r
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// Number of operator modules.
    pub fn num_modules(&self) -> usize {
        self.module_classes.len()
    }

    /// Register ids.
    pub fn register_ids(&self) -> impl Iterator<Item = RegisterId> {
        (0..self.num_registers as u32).map(RegisterId)
    }

    /// Module ids.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.module_classes.len() as u32).map(ModuleId)
    }

    /// The functional-unit class of a module.
    pub fn module_class(&self, m: ModuleId) -> ModuleClass {
        self.module_classes[m.index()]
    }

    /// Variables stored in register `r`.
    pub fn register_vars(&self, r: RegisterId) -> &[VarId] {
        &self.register_vars[r.index()]
    }

    /// Operations executed on module `m`.
    pub fn module_ops(&self, m: ModuleId) -> &[OpId] {
        &self.module_ops[m.index()]
    }

    /// The register holding variable `v`, if any.
    pub fn register_of(&self, v: VarId) -> Option<RegisterId> {
        self.reg_of_var[v.index()]
    }

    /// All sources feeding a module port (registers, external inputs,
    /// constants).
    pub fn port_sources(&self, port: Port) -> &BTreeSet<SourceRef> {
        &self.port_sources[port.module.index()][side_index(port.side)]
    }

    /// Registers receiving module `m`'s output.
    pub fn output_destinations(&self, m: ModuleId) -> &BTreeSet<RegisterId> {
        &self.output_dests[m.index()]
    }

    /// Modules whose outputs feed register `r`.
    pub fn register_sources(&self, r: RegisterId) -> &BTreeSet<ModuleId> {
        &self.register_sources[r.index()]
    }

    /// `true` if register `r` is also loaded from outside the data path.
    pub fn has_external_load(&self, r: RegisterId) -> bool {
        self.external_loads[r.index()]
    }

    /// Total fan-in of register `r` (module sources plus one if loaded
    /// externally).
    pub fn register_fan_in(&self, r: RegisterId) -> usize {
        self.register_sources[r.index()].len() + usize::from(self.external_loads[r.index()])
    }

    /// Number of multiplexers: one in front of every module port or
    /// register with fan-in greater than one.
    pub fn num_muxes(&self) -> usize {
        let port_muxes = self
            .module_ids()
            .flat_map(|m| {
                [PortSide::Left, PortSide::Right]
                    .into_iter()
                    .map(move |side| self.port_sources(Port { module: m, side }).len())
            })
            .filter(|&fan| fan > 1)
            .count();
        let reg_muxes = self
            .register_ids()
            .map(|r| self.register_fan_in(r))
            .filter(|&fan| fan > 1)
            .count();
        port_muxes + reg_muxes
    }

    /// Total multiplexer legs across the data path: for every fan-in
    /// point with `k > 1` sources, `k` legs. Proportional to mux area.
    pub fn total_mux_legs(&self) -> usize {
        let port_legs: usize = self
            .module_ids()
            .flat_map(|m| {
                [PortSide::Left, PortSide::Right]
                    .into_iter()
                    .map(move |side| self.port_sources(Port { module: m, side }).len())
            })
            .filter(|&fan| fan > 1)
            .sum();
        let reg_legs: usize = self
            .register_ids()
            .map(|r| self.register_fan_in(r))
            .filter(|&fan| fan > 1)
            .sum();
        port_legs + reg_legs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_testable() -> DataPath {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap()
    }

    #[test]
    fn ex1_structure() {
        let dp = ex1_testable();
        assert_eq!(dp.num_registers(), 3);
        assert_eq!(dp.num_modules(), 2);
        // Adder output goes to both R1 (f) and R2 (d).
        let adder = ModuleId(0);
        let dests: Vec<RegisterId> = dp.output_destinations(adder).iter().copied().collect();
        assert_eq!(dests, vec![RegisterId(0), RegisterId(1)]);
    }

    #[test]
    fn port_sources_track_registers_and_inputs() {
        let dp = ex1_testable();
        let adder_left = Port { module: ModuleId(0), side: PortSide::Left };
        // add1 lhs = a (R1), add2 lhs = c (R1) → left port fed by R1 only.
        let sources: Vec<SourceRef> = dp.port_sources(adder_left).iter().copied().collect();
        assert_eq!(sources, vec![SourceRef::Register(RegisterId(0))]);
        let adder_right = Port { module: ModuleId(0), side: PortSide::Right };
        // add1 rhs = b (R2), add2 rhs = d (R2) → right fed by R2 only.
        let sources: Vec<SourceRef> = dp.port_sources(adder_right).iter().copied().collect();
        assert_eq!(sources, vec![SourceRef::Register(RegisterId(1))]);
    }

    #[test]
    fn register_conflict_detected() {
        let bench = benchmarks::ex1();
        // c and d overlap; putting them together must fail.
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "d", "f", "a"], vec!["g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let err = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap_err();
        assert!(matches!(err, DataPathError::RegisterConflict { .. }));
    }

    #[test]
    fn missing_register_detected() {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b"], vec!["e"]], // h missing
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let err = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap_err();
        assert!(matches!(err, DataPathError::UnassignedVariable(_)));
    }

    #[test]
    fn module_overlap_detected() {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        // add2 and mul2 both run in step 3; forcing them onto one ALU of a
        // hypothetical set must be caught. Use a 2-ALU set and map both
        // step-3 ops to ALU 0.
        let alus: lobist_dfg::modules::ModuleSet = "2ALU".parse().unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &alus,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 0)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let err = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap_err();
        assert!(matches!(err, DataPathError::ModuleOverlap { step: 3, .. }));
    }

    #[test]
    fn mux_counting() {
        let dp = ex1_testable();
        // Multiplier left port: mul1 lhs = e (R3), mul2 lhs = c (R1) → 2 sources → mux.
        let mul_left = Port { module: ModuleId(1), side: PortSide::Left };
        assert_eq!(dp.port_sources(mul_left).len(), 2);
        assert!(dp.num_muxes() >= 1);
        assert!(dp.total_mux_legs() >= 2);
    }

    #[test]
    fn external_loads_for_registered_inputs() {
        let dp = ex1_testable();
        // R1 holds input c (and a); R3 holds input e → external loads.
        assert!(dp.has_external_load(RegisterId(0)));
        assert!(dp.has_external_load(RegisterId(2)));
    }

    #[test]
    fn display_impls() {
        assert_eq!(RegisterId(0).to_string(), "R1");
        assert_eq!(ModuleId(1).to_string(), "M2");
        assert_eq!(
            Port { module: ModuleId(0), side: PortSide::Right }.to_string(),
            "M1.R"
        );
        assert_eq!(PortSide::Left.other(), PortSide::Right);
    }
}
