//! Minimal-area BIST test-resource allocation — the BITS substrate.
//!
//! The paper evaluates its data paths with the USC *BITS* system (Lin,
//! 1994): given an RTL data path, BITS picks which registers to
//! reconfigure as TPGs, SAs, BILBOs and CBILBOs so that **every operator
//! module is tested** with **minimum added area**. BITS itself is
//! unavailable; this crate is a from-scratch substitute with the same
//! contract (see DESIGN.md, "Substitutions").
//!
//! Pipeline:
//!
//! 1. [`embedding`] enumerates, per module, the *BIST embeddings* — one
//!    TPG register per input port (distinct) and one SA register, drawn
//!    from the data path's I-paths.
//! 2. [`allocate`] searches the cross product of embeddings for the
//!    register-style assignment of minimum upgrade area (exact
//!    branch-and-bound for paper-scale designs, greedy with local
//!    improvement beyond).
//! 3. [`session`] schedules module tests into conflict-free test
//!    sessions.
//! 4. [`report`] summarizes everything as a [`BistSolution`].
//!
//! # Examples
//!
//! ```
//! use lobist_bist::{solve, SolverConfig};
//! use lobist_datapath::area::AreaModel;
//! use lobist_datapath::{DataPath, InterconnectAssignment, ModuleAssignment, RegisterAssignment};
//! use lobist_dfg::benchmarks;
//!
//! let bench = benchmarks::ex1();
//! let regs = RegisterAssignment::from_names(
//!     &bench.dfg,
//!     &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
//! )?;
//! let modules = ModuleAssignment::from_op_names(
//!     &bench.dfg,
//!     &bench.module_allocation,
//!     &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
//! )?;
//! let mut ic = InterconnectAssignment::straight(&bench.dfg);
//! ic.swap(bench.dfg.op_by_name("mul2").expect("op exists"));
//! let dp = DataPath::build(&bench.dfg, &bench.schedule, bench.lifetime_options,
//!                          &modules, &regs, &ic)?;
//! let solution = solve(&dp, &AreaModel::default(), &SolverConfig::default())?;
//! println!("{solution}");
//! assert!(solution.overhead_percent < 25.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod embedding;
pub mod fault;
pub mod plan;
pub mod repair;
pub mod report;
pub mod session;
pub mod verify;

pub use allocate::{
    choice_cost, select_embeddings, solve, solve_exhaustive, BistError, SolverConfig, SolverMode,
};
pub use embedding::{enumerate_from_connectivity, Embedding};
pub use plan::TestPlan;
pub use repair::{solve_with_repair, RepairedSolution, TestPoint};
pub use report::BistSolution;
