//! Global minimal-area selection of BIST embeddings and register styles.
//!
//! Given one embedding per module, each register's required style is
//! determined: a register that is TPG and SA *for the same module* must
//! be a CBILBO; TPG for some modules and SA for others needs a BILBO;
//! otherwise a TPG or SA suffices. The solver searches the cross product
//! of per-module embeddings for the choice minimizing total upgrade area.
//!
//! Styles only ever move *up* the capability lattice as more roles
//! accumulate, so partial cost is a valid lower bound — the exact solver
//! is a depth-first branch-and-bound over modules ordered by fewest
//! embeddings first. For large designs a greedy pass (cheapest
//! incremental embedding per module) with local re-optimization is used
//! instead.

use std::fmt;

use lobist_datapath::area::{AreaModel, BistStyle, GateCount};
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{DataPath, ModuleId, RegisterId};

use crate::embedding::{enumerate, Embedding};
use crate::report::BistSolution;
use crate::session;

/// Errors from the BIST solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BistError {
    /// A module has no BIST embedding: some port has no register I-path
    /// or both ports are fed by one register only. Such a data path
    /// cannot be made self-testable without structural changes.
    NoEmbedding {
        /// The untestable module.
        module: ModuleId,
    },
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::NoEmbedding { module } => {
                write!(f, "module {module} has no BIST embedding (insufficient I-paths)")
            }
        }
    }
}

impl std::error::Error for BistError {}

/// Search strategy for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Exact branch-and-bound if the design is small enough, greedy
    /// otherwise (the threshold is [`SolverConfig::exact_module_limit`]).
    #[default]
    Auto,
    /// Always exact branch-and-bound (exponential worst case).
    Exact,
    /// Always greedy with local improvement.
    Greedy,
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// The strategy.
    pub mode: SolverMode,
    /// In [`SolverMode::Auto`], use exact search up to this many modules.
    pub exact_module_limit: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            mode: SolverMode::Auto,
            exact_module_limit: 10,
        }
    }
}

/// Reusable scratch table of per-register test styles with a running
/// upgrade cost. Candidate ranking applies an embedding, reads the
/// cost, and undoes it — no per-candidate clone, no O(R) cost rescan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RoleTable {
    /// Styles per register index.
    styles: Vec<BistStyle>,
    /// Running `Σ style_extra(styles[r])` (Normal costs zero).
    extra: u64,
}

/// The touched registers' prior styles for one applied embedding, in
/// application order. An embedding upgrades at most three registers
/// (left TPG, right TPG, SA — a forced CBILBO collapses two of them).
#[derive(Debug, Clone, Copy, Default)]
struct RoleUndo {
    entries: [(u32, BistStyle); 4],
    len: u8,
}

impl RoleTable {
    fn new(num_registers: usize) -> Self {
        Self {
            styles: vec![BistStyle::Normal; num_registers],
            extra: 0,
        }
    }

    /// Joins `style` into one register's slot, logging the change.
    fn upgrade(&mut self, r: RegisterId, style: BistStyle, model: &AreaModel, undo: &mut RoleUndo) {
        let slot = &mut self.styles[r.index()];
        let joined = slot.join(style);
        if joined != *slot {
            undo.entries[undo.len as usize] = (r.0, *slot);
            undo.len += 1;
            self.extra += model.style_extra(joined).get() - model.style_extra(*slot).get();
            *slot = joined;
        }
    }

    /// Applies one module's embedding, upgrading register styles.
    /// Returns the undo record restoring the prior state.
    fn apply(&mut self, e: &Embedding, model: &AreaModel) -> RoleUndo {
        let mut undo = RoleUndo::default();
        if let Some(c) = e.cbilbo_register() {
            self.upgrade(c, BistStyle::Cbilbo, model, &mut undo);
        }
        for tpg in e.tpg_registers() {
            self.upgrade(tpg, BistStyle::Tpg, model, &mut undo);
        }
        self.upgrade(e.sa, BistStyle::Sa, model, &mut undo);
        undo
    }

    /// Reverts one [`apply`](Self::apply). Undos must be popped in
    /// reverse application order.
    fn undo(&mut self, undo: RoleUndo, model: &AreaModel) {
        for &(r, old) in undo.entries[..undo.len as usize].iter().rev() {
            let slot = &mut self.styles[r as usize];
            self.extra -= model.style_extra(*slot).get() - model.style_extra(old).get();
            *slot = old;
        }
    }

    /// Cost of an embedding were it applied now, without mutating.
    fn cost_with(&mut self, e: &Embedding, model: &AreaModel) -> GateCount {
        let undo = self.apply(e, model);
        let c = self.cost();
        self.undo(undo, model);
        c
    }

    fn cost(&self) -> GateCount {
        GateCount(self.extra)
    }
}

fn embeddings_per_module(
    dp: &DataPath,
    ipaths: &IPathAnalysis,
) -> Result<Vec<Vec<Embedding>>, BistError> {
    let mut all = Vec::with_capacity(dp.num_modules());
    for m in dp.module_ids() {
        let embs = enumerate(ipaths, m);
        if embs.is_empty() {
            return Err(BistError::NoEmbedding { module: m });
        }
        all.push(embs);
    }
    Ok(all)
}

fn finish(
    dp: &DataPath,
    model: &AreaModel,
    choice: Vec<Embedding>,
) -> BistSolution {
    let mut roles = RoleTable::new(dp.num_registers());
    for e in &choice {
        roles.apply(e, model);
    }
    let overhead = roles.cost();
    let functional = model.functional_area(dp);
    let sessions = session::schedule(dp, &choice, &roles.styles);
    BistSolution::new(
        roles.styles,
        choice,
        sessions,
        overhead,
        overhead.percent_of(functional),
    )
}

/// Finds a minimal-area BIST configuration for `dp`.
///
/// # Errors
///
/// Returns [`BistError::NoEmbedding`] if some module cannot be tested at
/// all on this data path.
pub fn solve(
    dp: &DataPath,
    model: &AreaModel,
    cfg: &SolverConfig,
) -> Result<BistSolution, BistError> {
    let ipaths = IPathAnalysis::of(dp);
    let embs = embeddings_per_module(dp, &ipaths)?;
    let choice = select_embeddings(dp.num_registers(), model, cfg, &embs, None);
    Ok(finish(dp, model, choice))
}

/// Selects one embedding per module minimizing total register-style
/// upgrade area, from the per-module candidate lists alone — no data
/// path needed, which is how the incremental flow cache re-solves after
/// a single-register move.
///
/// `warm_upper` optionally supplies a *known-achievable* cost (e.g. the
/// previous move's choice re-costed against the current lists). The
/// exact search then starts from the incumbent bound `warm_upper + 1`
/// instead of infinity, pruning most of the tree on near-identical
/// inputs while provably returning the identical choice: the first
/// minimum-cost leaf in depth-first order is never pruned (every prefix
/// of it costs at most the minimum, which is strictly below the bound),
/// and no other leaf can replace it under strict-improvement updates.
///
/// # Panics
///
/// Panics if some module's list is empty, or if `warm_upper` is below
/// the true minimum (it must come from a feasible choice).
pub fn select_embeddings(
    num_registers: usize,
    model: &AreaModel,
    cfg: &SolverConfig,
    embs: &[Vec<Embedding>],
    warm_upper: Option<GateCount>,
) -> Vec<Embedding> {
    let exact = match cfg.mode {
        SolverMode::Exact => true,
        SolverMode::Greedy => false,
        SolverMode::Auto => embs.len() <= cfg.exact_module_limit,
    };
    if exact {
        branch_and_bound(num_registers, model, embs, warm_upper)
    } else {
        // Greedy is deterministic in the lists alone; a warm bound
        // cannot change (or speed up) its outcome.
        greedy(num_registers, model, embs)
    }
}

/// Total register-style upgrade area of a complete embedding choice —
/// the BIST overhead the paper minimizes, computed without a data path.
pub fn choice_cost(
    num_registers: usize,
    model: &AreaModel,
    choice: &[Embedding],
) -> GateCount {
    let mut roles = RoleTable::new(num_registers);
    for e in choice {
        roles.apply(e, model);
    }
    roles.cost()
}

/// Brute-force reference solver: full cross-product enumeration, no
/// pruning. Exponential; intended for validating [`solve`] on small
/// designs in tests.
///
/// # Errors
///
/// Returns [`BistError::NoEmbedding`] if some module cannot be tested.
///
/// # Panics
///
/// Panics if the cross product exceeds 10⁷ combinations.
pub fn solve_exhaustive(dp: &DataPath, model: &AreaModel) -> Result<BistSolution, BistError> {
    let ipaths = IPathAnalysis::of(dp);
    let embs = embeddings_per_module(dp, &ipaths)?;
    let combos: usize = embs.iter().map(|e| e.len()).product();
    assert!(combos <= 10_000_000, "design too large for exhaustive search");
    let mut best: Option<(GateCount, Vec<Embedding>)> = None;
    let mut idx = vec![0usize; embs.len()];
    loop {
        let choice: Vec<Embedding> = idx.iter().zip(&embs).map(|(&i, e)| e[i]).collect();
        let cost = choice_cost(dp.num_registers(), model, &choice);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            best = Some((cost, choice));
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == idx.len() {
                let (_, choice) = best.expect("at least one combination exists");
                return Ok(finish(dp, model, choice));
            }
            idx[k] += 1;
            if idx[k] < embs[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn branch_and_bound(
    num_registers: usize,
    model: &AreaModel,
    embs: &[Vec<Embedding>],
    warm_upper: Option<GateCount>,
) -> Vec<Embedding> {
    // Order modules by ascending embedding count: tight choices first.
    let mut order: Vec<usize> = (0..embs.len()).collect();
    order.sort_by_key(|&m| embs[m].len());

    // Warm start: `U + 1` admits exactly the leaves costing at most the
    // known-achievable `U`, so the search still lands on the same first
    // minimum-cost leaf a cold run finds, just with far fewer expansions.
    let mut best_cost = warm_upper
        .map_or(GateCount(u64::MAX), |u| GateCount(u.get().saturating_add(1)));
    let mut best: Option<Vec<Embedding>> = None;
    let mut current: Vec<Option<Embedding>> = vec![None; embs.len()];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        depth: usize,
        order: &[usize],
        embs: &[Vec<Embedding>],
        model: &AreaModel,
        roles: &mut RoleTable,
        current: &mut Vec<Option<Embedding>>,
        best_cost: &mut GateCount,
        best: &mut Option<Vec<Embedding>>,
    ) {
        if roles.cost() >= *best_cost {
            return; // roles only upgrade; cost can only grow
        }
        if depth == order.len() {
            let cost = roles.cost();
            if cost < *best_cost {
                *best_cost = cost;
                *best = Some(current.iter().map(|e| e.expect("complete choice")).collect());
            }
            return;
        }
        let m = order[depth];
        // Explore embeddings cheapest-first for faster convergence.
        let mut ranked: Vec<&Embedding> = embs[m].iter().collect();
        ranked.sort_by_key(|e| roles.cost_with(e, model));
        for e in ranked {
            let undo = roles.apply(e, model);
            current[m] = Some(*e);
            rec(depth + 1, order, embs, model, roles, current, best_cost, best);
            current[m] = None;
            roles.undo(undo, model);
        }
    }

    let mut roles = RoleTable::new(num_registers);
    rec(
        0,
        &order,
        embs,
        model,
        &mut roles,
        &mut current,
        &mut best_cost,
        &mut best,
    );
    best.expect("every module has at least one embedding and the warm bound is achievable")
}

fn greedy(num_registers: usize, model: &AreaModel, embs: &[Vec<Embedding>]) -> Vec<Embedding> {
    // Seed: process modules tightest-first, picking the embedding with the
    // smallest incremental cost.
    let mut order: Vec<usize> = (0..embs.len()).collect();
    order.sort_by_key(|&m| embs[m].len());
    let mut roles = RoleTable::new(num_registers);
    let mut choice: Vec<Option<Embedding>> = vec![None; embs.len()];
    for &m in &order {
        let pick = *embs[m]
            .iter()
            .min_by_key(|e| roles.cost_with(e, model))
            .expect("non-empty embedding list");
        roles.apply(&pick, model);
        choice[m] = Some(pick);
    }
    // Local improvement: re-pick each module's embedding with the others
    // fixed until no change lowers the cost.
    let mut improved = true;
    while improved {
        improved = false;
        for m in 0..embs.len() {
            let mut base = RoleTable::new(num_registers);
            for (i, e) in choice.iter().enumerate() {
                if i != m {
                    base.apply(&e.expect("seeded"), model);
                }
            }
            let current_cost = base.cost_with(&choice[m].expect("seeded"), model);
            for e in &embs[m] {
                if base.cost_with(e, model) < current_cost {
                    choice[m] = Some(*e);
                    improved = true;
                    break;
                }
            }
        }
    }
    choice.into_iter().map(|e| e.expect("seeded")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_datapath::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_dp(groups: &[Vec<&str>], swaps: &[&str]) -> DataPath {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(&bench.dfg, groups).unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let mut ic = InterconnectAssignment::straight(&bench.dfg);
        for s in swaps {
            ic.swap(bench.dfg.op_by_name(s).unwrap());
        }
        DataPath::build(&bench.dfg, &bench.schedule, bench.lifetime_options, &modules, &regs, &ic)
            .unwrap()
    }

    /// The paper's testable data path for ex1. Straight interconnect
    /// already exposes the shared I-paths: the multiplier's left port
    /// sees {R3 (e), R1 (c)} and its right port {R2 (g), R3 (e)}.
    fn testable() -> DataPath {
        ex1_dp(
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            &[],
        )
    }

    #[test]
    fn ex1_testable_reaches_paper_minimum() {
        // Paper (Table II, ex1 testable): exactly 1 CBILBO + 1 TPG —
        // R1 generates for both modules' left ports, R2 is a CBILBO
        // (TPG for the right ports and SA for both modules).
        let sol = solve(&testable(), &AreaModel::default(), &SolverConfig::default()).unwrap();
        assert_eq!(sol.count(BistStyle::Cbilbo), 1);
        assert_eq!(sol.count(BistStyle::Tpg), 1);
        assert_eq!(sol.count(BistStyle::Bilbo), 0);
        assert_eq!(sol.count(BistStyle::Sa), 0);
        assert_eq!(sol.num_test_registers(), 2);
    }

    #[test]
    fn exact_matches_exhaustive_on_ex1() {
        let dp = testable();
        let model = AreaModel::default();
        let exact = solve(&dp, &model, &SolverConfig { mode: SolverMode::Exact, ..Default::default() })
            .unwrap();
        let brute = solve_exhaustive(&dp, &model).unwrap();
        assert_eq!(exact.overhead, brute.overhead);
    }

    #[test]
    fn greedy_is_feasible_and_close_on_ex1() {
        let dp = testable();
        let model = AreaModel::default();
        let greedy = solve(&dp, &model, &SolverConfig { mode: SolverMode::Greedy, ..Default::default() })
            .unwrap();
        let exact = solve_exhaustive(&dp, &model).unwrap();
        assert!(greedy.overhead >= exact.overhead);
        // Greedy should be within 2x on this tiny design.
        assert!(greedy.overhead.get() <= exact.overhead.get() * 2);
    }

    #[test]
    fn no_embedding_reported() {
        // Single-op DFG with both operands in one register.
        use lobist_dfg::{DfgBuilder, OpKind, Schedule};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Add, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1+".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["x"], vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        let dp = DataPath::build(
            &dfg,
            &schedule,
            lobist_dfg::lifetime::LifetimeOptions::registered_inputs(),
            &ma,
            &ra,
            &ic)
        .unwrap();
        let err = solve(&dp, &AreaModel::default(), &SolverConfig::default()).unwrap_err();
        assert!(matches!(err, BistError::NoEmbedding { .. }));
        assert!(err.to_string().contains("no BIST embedding"));
    }

    #[test]
    fn solver_is_optimal_on_multiple_assignments() {
        // Whatever the register assignment, the default solver must match
        // the brute-force optimum (these colorings are all proper for ex1).
        let model = AreaModel::default();
        let cfg = SolverConfig::default();
        for groups in [
            vec![vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            vec![vec!["e", "f"], vec!["g", "a", "c", "h"], vec!["b", "d"]],
            vec![vec!["e", "h"], vec!["g", "a", "c", "f"], vec!["b", "d"]],
        ] {
            let dp = ex1_dp(&groups, &[]);
            let sol = solve(&dp, &model, &cfg).unwrap();
            let brute = solve_exhaustive(&dp, &model).unwrap();
            assert_eq!(sol.overhead, brute.overhead, "groups {groups:?}");
        }
    }

    #[test]
    fn warm_start_returns_the_identical_choice() {
        let dp = testable();
        let model = AreaModel::default();
        let ipaths = IPathAnalysis::of(&dp);
        let embs = embeddings_per_module(&dp, &ipaths).unwrap();
        let cfg = SolverConfig { mode: SolverMode::Exact, ..Default::default() };
        let cold = select_embeddings(dp.num_registers(), &model, &cfg, &embs, None);
        let u = choice_cost(dp.num_registers(), &model, &cold);
        let warm = select_embeddings(dp.num_registers(), &model, &cfg, &embs, Some(u));
        assert_eq!(cold, warm, "tight warm bound must not change the choice");
        let loose = GateCount(u.get() + 100);
        let warm2 = select_embeddings(dp.num_registers(), &model, &cfg, &embs, Some(loose));
        assert_eq!(cold, warm2, "loose warm bound must not change the choice");
    }

    #[test]
    fn role_table_undo_restores_state_and_cost() {
        let model = AreaModel::default();
        let mut t = RoleTable::new(3);
        let before = t.clone();
        // An embedding whose SA doubles as a TPG (forces a CBILBO) plus a
        // separate TPG exercises every upgrade path.
        let e = Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(0));
        let undo = t.apply(&e, &model);
        assert!(t.cost() > before.cost());
        assert_eq!(t.styles[0], BistStyle::Cbilbo);
        t.undo(undo, &model);
        assert_eq!(t, before);
    }

    #[test]
    fn solution_styles_cover_every_module() {
        let sol = solve(&testable(), &AreaModel::default(), &SolverConfig::default()).unwrap();
        for e in &sol.embeddings {
            for t in e.tpg_registers() {
                assert!(sol.style(t).can_generate());
            }
            assert!(sol.style(e.sa).can_analyze());
            if let Some(c) = e.cbilbo_register() {
                assert!(sol.style(c).can_do_both_concurrently());
            }
        }
    }
}
