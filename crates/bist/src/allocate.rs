//! Global minimal-area selection of BIST embeddings and register styles.
//!
//! Given one embedding per module, each register's required style is
//! determined: a register that is TPG and SA *for the same module* must
//! be a CBILBO; TPG for some modules and SA for others needs a BILBO;
//! otherwise a TPG or SA suffices. The solver searches the cross product
//! of per-module embeddings for the choice minimizing total upgrade area.
//!
//! Styles only ever move *up* the capability lattice as more roles
//! accumulate, so partial cost is a valid lower bound — the exact solver
//! is a depth-first branch-and-bound over modules ordered by fewest
//! embeddings first. For large designs a greedy pass (cheapest
//! incremental embedding per module) with local re-optimization is used
//! instead.

use std::fmt;

use lobist_datapath::area::{AreaModel, BistStyle, GateCount};
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{DataPath, ModuleId};

use crate::embedding::{enumerate, Embedding};
use crate::report::BistSolution;
use crate::session;

/// Errors from the BIST solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BistError {
    /// A module has no BIST embedding: some port has no register I-path
    /// or both ports are fed by one register only. Such a data path
    /// cannot be made self-testable without structural changes.
    NoEmbedding {
        /// The untestable module.
        module: ModuleId,
    },
}

impl fmt::Display for BistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistError::NoEmbedding { module } => {
                write!(f, "module {module} has no BIST embedding (insufficient I-paths)")
            }
        }
    }
}

impl std::error::Error for BistError {}

/// Search strategy for the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Exact branch-and-bound if the design is small enough, greedy
    /// otherwise (the threshold is [`SolverConfig::exact_module_limit`]).
    #[default]
    Auto,
    /// Always exact branch-and-bound (exponential worst case).
    Exact,
    /// Always greedy with local improvement.
    Greedy,
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// The strategy.
    pub mode: SolverMode,
    /// In [`SolverMode::Auto`], use exact search up to this many modules.
    pub exact_module_limit: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            mode: SolverMode::Auto,
            exact_module_limit: 10,
        }
    }
}

/// Per-register accumulated test roles for a partial embedding choice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Roles {
    /// Styles per register index.
    styles: Vec<BistStyle>,
}

impl Roles {
    fn new(num_registers: usize) -> Self {
        Self {
            styles: vec![BistStyle::Normal; num_registers],
        }
    }

    /// Applies one module's embedding, upgrading register styles.
    fn apply(&mut self, e: &Embedding) {
        if let Some(c) = e.cbilbo_register() {
            self.styles[c.index()] = BistStyle::Cbilbo;
        }
        for tpg in e.tpg_registers() {
            let s = &mut self.styles[tpg.index()];
            *s = s.join(BistStyle::Tpg);
        }
        let s = &mut self.styles[e.sa.index()];
        *s = s.join(BistStyle::Sa);
    }

    fn cost(&self, model: &AreaModel) -> GateCount {
        self.styles.iter().map(|&s| model.style_extra(s)).sum()
    }
}

fn embeddings_per_module(
    dp: &DataPath,
    ipaths: &IPathAnalysis,
) -> Result<Vec<Vec<Embedding>>, BistError> {
    let mut all = Vec::with_capacity(dp.num_modules());
    for m in dp.module_ids() {
        let embs = enumerate(ipaths, m);
        if embs.is_empty() {
            return Err(BistError::NoEmbedding { module: m });
        }
        all.push(embs);
    }
    Ok(all)
}

fn finish(
    dp: &DataPath,
    model: &AreaModel,
    choice: Vec<Embedding>,
) -> BistSolution {
    let mut roles = Roles::new(dp.num_registers());
    for e in &choice {
        roles.apply(e);
    }
    let overhead = roles.cost(model);
    let functional = model.functional_area(dp);
    let sessions = session::schedule(dp, &choice, &roles.styles);
    BistSolution::new(
        roles.styles,
        choice,
        sessions,
        overhead,
        overhead.percent_of(functional),
    )
}

/// Finds a minimal-area BIST configuration for `dp`.
///
/// # Errors
///
/// Returns [`BistError::NoEmbedding`] if some module cannot be tested at
/// all on this data path.
pub fn solve(
    dp: &DataPath,
    model: &AreaModel,
    cfg: &SolverConfig,
) -> Result<BistSolution, BistError> {
    let ipaths = IPathAnalysis::of(dp);
    let embs = embeddings_per_module(dp, &ipaths)?;
    let exact = match cfg.mode {
        SolverMode::Exact => true,
        SolverMode::Greedy => false,
        SolverMode::Auto => dp.num_modules() <= cfg.exact_module_limit,
    };
    let choice = if exact {
        branch_and_bound(dp, model, &embs)
    } else {
        greedy(dp, model, &embs)
    };
    Ok(finish(dp, model, choice))
}

/// Brute-force reference solver: full cross-product enumeration, no
/// pruning. Exponential; intended for validating [`solve`] on small
/// designs in tests.
///
/// # Errors
///
/// Returns [`BistError::NoEmbedding`] if some module cannot be tested.
///
/// # Panics
///
/// Panics if the cross product exceeds 10⁷ combinations.
pub fn solve_exhaustive(dp: &DataPath, model: &AreaModel) -> Result<BistSolution, BistError> {
    let ipaths = IPathAnalysis::of(dp);
    let embs = embeddings_per_module(dp, &ipaths)?;
    let combos: usize = embs.iter().map(|e| e.len()).product();
    assert!(combos <= 10_000_000, "design too large for exhaustive search");
    let mut best: Option<(GateCount, Vec<Embedding>)> = None;
    let mut idx = vec![0usize; embs.len()];
    loop {
        let choice: Vec<Embedding> = idx.iter().zip(&embs).map(|(&i, e)| e[i]).collect();
        let mut roles = Roles::new(dp.num_registers());
        for e in &choice {
            roles.apply(e);
        }
        let cost = roles.cost(model);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            best = Some((cost, choice));
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == idx.len() {
                let (_, choice) = best.expect("at least one combination exists");
                return Ok(finish(dp, model, choice));
            }
            idx[k] += 1;
            if idx[k] < embs[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn branch_and_bound(dp: &DataPath, model: &AreaModel, embs: &[Vec<Embedding>]) -> Vec<Embedding> {
    // Order modules by ascending embedding count: tight choices first.
    let mut order: Vec<usize> = (0..embs.len()).collect();
    order.sort_by_key(|&m| embs[m].len());

    let mut best_cost = GateCount(u64::MAX);
    let mut best: Option<Vec<Embedding>> = None;
    let mut current: Vec<Option<Embedding>> = vec![None; embs.len()];

    #[allow(clippy::too_many_arguments)]
    fn rec(
        depth: usize,
        order: &[usize],
        embs: &[Vec<Embedding>],
        model: &AreaModel,
        roles: &Roles,
        current: &mut Vec<Option<Embedding>>,
        best_cost: &mut GateCount,
        best: &mut Option<Vec<Embedding>>,
    ) {
        if roles.cost(model) >= *best_cost {
            return; // roles only upgrade; cost can only grow
        }
        if depth == order.len() {
            let cost = roles.cost(model);
            if cost < *best_cost {
                *best_cost = cost;
                *best = Some(current.iter().map(|e| e.expect("complete choice")).collect());
            }
            return;
        }
        let m = order[depth];
        // Explore embeddings cheapest-first for faster convergence.
        let mut ranked: Vec<&Embedding> = embs[m].iter().collect();
        ranked.sort_by_key(|e| {
            let mut r = roles.clone();
            r.apply(e);
            r.cost(model)
        });
        for e in ranked {
            let mut r = roles.clone();
            r.apply(e);
            current[m] = Some(*e);
            rec(depth + 1, order, embs, model, &r, current, best_cost, best);
            current[m] = None;
        }
    }

    let roles = Roles::new(dp.num_registers());
    rec(
        0,
        &order,
        embs,
        model,
        &roles,
        &mut current,
        &mut best_cost,
        &mut best,
    );
    best.expect("every module has at least one embedding")
}

fn greedy(dp: &DataPath, model: &AreaModel, embs: &[Vec<Embedding>]) -> Vec<Embedding> {
    // Seed: process modules tightest-first, picking the embedding with the
    // smallest incremental cost.
    let mut order: Vec<usize> = (0..embs.len()).collect();
    order.sort_by_key(|&m| embs[m].len());
    let mut roles = Roles::new(dp.num_registers());
    let mut choice: Vec<Option<Embedding>> = vec![None; embs.len()];
    for &m in &order {
        let pick = embs[m]
            .iter()
            .min_by_key(|e| {
                let mut r = roles.clone();
                r.apply(e);
                r.cost(model)
            })
            .expect("non-empty embedding list");
        roles.apply(pick);
        choice[m] = Some(*pick);
    }
    // Local improvement: re-pick each module's embedding with the others
    // fixed until no change lowers the cost.
    let mut improved = true;
    while improved {
        improved = false;
        for m in 0..embs.len() {
            let base_cost = {
                let mut r = Roles::new(dp.num_registers());
                for (i, e) in choice.iter().enumerate() {
                    if i != m {
                        r.apply(&e.expect("seeded"));
                    }
                }
                r
            };
            let current_cost = {
                let mut r = base_cost.clone();
                r.apply(&choice[m].expect("seeded"));
                r.cost(model)
            };
            for e in &embs[m] {
                let mut r = base_cost.clone();
                r.apply(e);
                if r.cost(model) < current_cost {
                    choice[m] = Some(*e);
                    improved = true;
                    break;
                }
            }
        }
    }
    choice.into_iter().map(|e| e.expect("seeded")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_datapath::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_dp(groups: &[Vec<&str>], swaps: &[&str]) -> DataPath {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(&bench.dfg, groups).unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let mut ic = InterconnectAssignment::straight(&bench.dfg);
        for s in swaps {
            ic.swap(bench.dfg.op_by_name(s).unwrap());
        }
        DataPath::build(&bench.dfg, &bench.schedule, bench.lifetime_options, modules, regs, ic)
            .unwrap()
    }

    /// The paper's testable data path for ex1. Straight interconnect
    /// already exposes the shared I-paths: the multiplier's left port
    /// sees {R3 (e), R1 (c)} and its right port {R2 (g), R3 (e)}.
    fn testable() -> DataPath {
        ex1_dp(
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            &[],
        )
    }

    #[test]
    fn ex1_testable_reaches_paper_minimum() {
        // Paper (Table II, ex1 testable): exactly 1 CBILBO + 1 TPG —
        // R1 generates for both modules' left ports, R2 is a CBILBO
        // (TPG for the right ports and SA for both modules).
        let sol = solve(&testable(), &AreaModel::default(), &SolverConfig::default()).unwrap();
        assert_eq!(sol.count(BistStyle::Cbilbo), 1);
        assert_eq!(sol.count(BistStyle::Tpg), 1);
        assert_eq!(sol.count(BistStyle::Bilbo), 0);
        assert_eq!(sol.count(BistStyle::Sa), 0);
        assert_eq!(sol.num_test_registers(), 2);
    }

    #[test]
    fn exact_matches_exhaustive_on_ex1() {
        let dp = testable();
        let model = AreaModel::default();
        let exact = solve(&dp, &model, &SolverConfig { mode: SolverMode::Exact, ..Default::default() })
            .unwrap();
        let brute = solve_exhaustive(&dp, &model).unwrap();
        assert_eq!(exact.overhead, brute.overhead);
    }

    #[test]
    fn greedy_is_feasible_and_close_on_ex1() {
        let dp = testable();
        let model = AreaModel::default();
        let greedy = solve(&dp, &model, &SolverConfig { mode: SolverMode::Greedy, ..Default::default() })
            .unwrap();
        let exact = solve_exhaustive(&dp, &model).unwrap();
        assert!(greedy.overhead >= exact.overhead);
        // Greedy should be within 2x on this tiny design.
        assert!(greedy.overhead.get() <= exact.overhead.get() * 2);
    }

    #[test]
    fn no_embedding_reported() {
        // Single-op DFG with both operands in one register.
        use lobist_dfg::{DfgBuilder, OpKind, Schedule};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Add, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1+".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["x"], vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        let dp = DataPath::build(
            &dfg,
            &schedule,
            lobist_dfg::lifetime::LifetimeOptions::registered_inputs(),
            ma,
            ra,
            ic,
        )
        .unwrap();
        let err = solve(&dp, &AreaModel::default(), &SolverConfig::default()).unwrap_err();
        assert!(matches!(err, BistError::NoEmbedding { .. }));
        assert!(err.to_string().contains("no BIST embedding"));
    }

    #[test]
    fn solver_is_optimal_on_multiple_assignments() {
        // Whatever the register assignment, the default solver must match
        // the brute-force optimum (these colorings are all proper for ex1).
        let model = AreaModel::default();
        let cfg = SolverConfig::default();
        for groups in [
            vec![vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
            vec![vec!["e", "f"], vec!["g", "a", "c", "h"], vec!["b", "d"]],
            vec![vec!["e", "h"], vec!["g", "a", "c", "f"], vec!["b", "d"]],
        ] {
            let dp = ex1_dp(&groups, &[]);
            let sol = solve(&dp, &model, &cfg).unwrap();
            let brute = solve_exhaustive(&dp, &model).unwrap();
            assert_eq!(sol.overhead, brute.overhead, "groups {groups:?}");
        }
    }

    #[test]
    fn solution_styles_cover_every_module() {
        let sol = solve(&testable(), &AreaModel::default(), &SolverConfig::default()).unwrap();
        for e in &sol.embeddings {
            for t in e.tpg_registers() {
                assert!(sol.style(t).can_generate());
            }
            assert!(sol.style(e.sa).can_analyze());
            if let Some(c) = e.cbilbo_register() {
                assert!(sol.style(c).can_do_both_concurrently());
            }
        }
    }
}
