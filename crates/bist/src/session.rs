//! Test-session scheduling.
//!
//! Minimal-area BIST does not require all modules to be tested at once
//! (the paper, Section II). Two module tests must run in *different*
//! sessions when their resource needs clash:
//!
//! * the same register analyzes (SA) for both — a MISR compacts one
//!   response stream at a time;
//! * a register generates for one test and analyzes for the other and is
//!   not a CBILBO — only CBILBOs do both concurrently.
//!
//! Sharing a TPG between two tests is fine: pseudo-random patterns can be
//! broadcast. Sessions are assigned by greedy coloring of the conflict
//! graph, which is optimal for the small module counts of data paths and
//! never worse than one session per module.

use lobist_datapath::area::BistStyle;
use lobist_datapath::DataPath;
use lobist_graph::{coloring, UGraph};

use crate::embedding::Embedding;

/// Assigns a test session (0-based) to each module.
///
/// `styles` is the per-register style assignment; CBILBO registers relax
/// generate/analyze conflicts.
pub fn schedule(dp: &DataPath, embeddings: &[Embedding], styles: &[BistStyle]) -> Vec<u32> {
    let n = dp.num_modules();
    assert_eq!(embeddings.len(), n, "one embedding per module");
    let mut g = UGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if conflicts(&embeddings[i], &embeddings[j], styles) {
                g.add_edge(i, j);
            }
        }
    }
    let order: Vec<usize> = (0..n).collect();
    let coloring = coloring::greedy_in_order(&g, &order);
    (0..n).map(|m| coloring.color(m) as u32).collect()
}

fn conflicts(a: &Embedding, b: &Embedding, styles: &[BistStyle]) -> bool {
    // Shared SA register.
    if a.sa == b.sa {
        return true;
    }
    // Generate-for-one / analyze-for-other on a non-CBILBO register.
    let cross = |gen: &Embedding, ana: &Embedding| -> bool {
        gen.tpg_registers()
            .any(|t| t == ana.sa && !styles[t.index()].can_do_both_concurrently())
    };
    cross(a, b) || cross(b, a)
}

/// Number of distinct sessions in a schedule.
pub fn session_count(sessions: &[u32]) -> usize {
    sessions.iter().copied().max().map_or(0, |m| m as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_datapath::RegisterId;

    fn emb(l: u32, r: u32, sa: u32) -> Embedding {
        Embedding::with_registers(RegisterId(l), RegisterId(r), RegisterId(sa))
    }

    #[test]
    fn shared_sa_forces_two_sessions() {
        let styles = vec![BistStyle::Tpg, BistStyle::Tpg, BistStyle::Sa];
        let a = emb(0, 1, 2);
        let b = emb(1, 0, 2);
        assert!(conflicts(&a, &b, &styles));
    }

    #[test]
    fn shared_tpg_is_fine() {
        let styles = vec![BistStyle::Tpg, BistStyle::Tpg, BistStyle::Sa, BistStyle::Sa];
        let a = emb(0, 1, 2);
        let b = emb(0, 1, 3);
        assert!(!conflicts(&a, &b, &styles));
    }

    #[test]
    fn tpg_vs_sa_conflict_unless_cbilbo() {
        // Register 1 generates for `a` and analyzes for `b`.
        let a = emb(0, 1, 2);
        let b = emb(0, 3, 1);
        let plain = vec![
            BistStyle::Tpg,
            BistStyle::Bilbo,
            BistStyle::Sa,
            BistStyle::Tpg,
        ];
        assert!(conflicts(&a, &b, &plain));
        let concurrent = vec![
            BistStyle::Tpg,
            BistStyle::Cbilbo,
            BistStyle::Sa,
            BistStyle::Tpg,
        ];
        assert!(!conflicts(&a, &b, &concurrent));
    }

    #[test]
    fn session_count_counts_colors() {
        assert_eq!(session_count(&[]), 0);
        assert_eq!(session_count(&[0, 0, 0]), 1);
        assert_eq!(session_count(&[0, 1, 0, 2]), 3);
    }
}
