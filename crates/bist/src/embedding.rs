//! BIST embeddings of operator modules.

use std::collections::BTreeSet;
use std::fmt;

use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{ModuleId, PortSide, RegisterId, SourceRef};
use lobist_dfg::VarId;

/// A source of pseudo-random patterns for a module input port.
///
/// In partial-intrusion BIST, patterns come either from a register
/// reconfigured as a TPG (which costs area) or from a controllable
/// primary input driven by the test wrapper (which is free — the paper's
/// Paulin comparison keeps loop inputs on ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatternSource {
    /// A register upgraded to TPG.
    Register(RegisterId),
    /// A controllable primary input.
    Input(VarId),
}

impl PatternSource {
    /// The register, if this source is one.
    pub fn register(self) -> Option<RegisterId> {
        match self {
            PatternSource::Register(r) => Some(r),
            PatternSource::Input(_) => None,
        }
    }
}

impl fmt::Display for PatternSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternSource::Register(r) => write!(f, "{r}"),
            PatternSource::Input(v) => write!(f, "in:{v}"),
        }
    }
}

/// A BIST embedding of one module: which pattern source feeds each input
/// port and which register compacts the output.
///
/// The two pattern sources must be distinct (one register cannot produce
/// two independent streams, and one input pin carries one value). The SA
/// register *may* coincide with a TPG register — that configuration
/// still tests the module but forces the shared register to be a CBILBO
/// (it must generate and analyze in the same session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Embedding {
    /// Pattern source for the left input port.
    pub left: PatternSource,
    /// Pattern source for the right input port.
    pub right: PatternSource,
    /// SA for the output port.
    pub sa: RegisterId,
}

impl Embedding {
    /// Convenience constructor with register TPGs on both ports.
    pub fn with_registers(left: RegisterId, right: RegisterId, sa: RegisterId) -> Self {
        Self {
            left: PatternSource::Register(left),
            right: PatternSource::Register(right),
            sa,
        }
    }

    /// The register forced to be a CBILBO by this embedding (the SA when
    /// it doubles as a TPG), if any.
    pub fn cbilbo_register(&self) -> Option<RegisterId> {
        if self.left.register() == Some(self.sa) || self.right.register() == Some(self.sa) {
            Some(self.sa)
        } else {
            None
        }
    }

    /// The TPG registers of this embedding (0, 1 or 2 entries).
    pub fn tpg_registers(&self) -> impl Iterator<Item = RegisterId> + '_ {
        [self.left, self.right]
            .into_iter()
            .filter_map(PatternSource::register)
    }

    /// The distinct registers used by this embedding.
    pub fn registers(&self) -> Vec<RegisterId> {
        let mut regs: Vec<RegisterId> = self.tpg_registers().collect();
        regs.push(self.sa);
        regs.sort_unstable();
        regs.dedup();
        regs
    }
}

impl fmt::Display for Embedding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TPG(L)={}, TPG(R)={}, SA={}", self.left, self.right, self.sa)
    }
}

/// Enumerates every BIST embedding of module `m` over the I-path
/// candidate sets, in deterministic (sorted) order.
///
/// Returns an empty vector when the module cannot be embedded (some port
/// has no pattern source, or the only sources on the two ports are one
/// and the same).
pub fn enumerate(ipaths: &IPathAnalysis, m: ModuleId) -> Vec<Embedding> {
    let sources = |side: PortSide| -> Vec<PatternSource> {
        let mut v: Vec<PatternSource> = ipaths
            .tpg_candidates(m, side)
            .iter()
            .map(|&r| PatternSource::Register(r))
            .collect();
        v.extend(
            ipaths
                .input_candidates(m, side)
                .iter()
                .map(|&x| PatternSource::Input(x)),
        );
        v
    };
    cross_product(
        &sources(PortSide::Left),
        &sources(PortSide::Right),
        ipaths.sa_candidates(m),
    )
}

/// Enumerates one module's embeddings directly from its port source
/// sets and output-destination registers, bypassing the whole-data-path
/// [`IPathAnalysis`]. Produces the exact sequence [`enumerate`] would:
/// a sorted `SourceRef` set lists registers before external inputs,
/// each in id order, matching the candidate-set iteration there.
/// This is the incremental flow cache's per-module enumeration — only
/// the connectivity of the one module whose sources changed is needed.
pub fn enumerate_from_connectivity(
    left: &BTreeSet<SourceRef>,
    right: &BTreeSet<SourceRef>,
    dests: &BTreeSet<RegisterId>,
) -> Vec<Embedding> {
    let sources = |set: &BTreeSet<SourceRef>| -> Vec<PatternSource> {
        set.iter()
            .filter_map(|s| match s {
                SourceRef::Register(r) => Some(PatternSource::Register(*r)),
                SourceRef::ExternalInput(v) => Some(PatternSource::Input(*v)),
                SourceRef::Constant(_) => None,
            })
            .collect()
    };
    cross_product(&sources(left), &sources(right), dests)
}

fn cross_product(
    left: &[PatternSource],
    right: &[PatternSource],
    sas: &BTreeSet<RegisterId>,
) -> Vec<Embedding> {
    let mut out = Vec::new();
    for &l in left {
        for &r in right {
            if l == r {
                continue;
            }
            for &sa in sas {
                out.push(Embedding { left: l, right: r, sa });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_datapath::{
        DataPath, InterconnectAssignment, ModuleAssignment, RegisterAssignment,
    };
    use lobist_dfg::benchmarks;

    fn ex1_paths(swap_mul2: bool) -> IPathAnalysis {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let mut ic = InterconnectAssignment::straight(&bench.dfg);
        if swap_mul2 {
            ic.swap(bench.dfg.op_by_name("mul2").unwrap());
        }
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        IPathAnalysis::of(&dp)
    }

    #[test]
    fn adder_embeddings_force_cbilbo() {
        let ip = ex1_paths(false);
        // Adder: L={R1}, R={R2}, SA={R1,R2} → both embeddings share a TPG
        // with the SA, so each forces a CBILBO.
        let embs = enumerate(&ip, ModuleId(0));
        assert_eq!(embs.len(), 2);
        assert!(embs.iter().all(|e| e.cbilbo_register().is_some()));
    }

    #[test]
    fn mult_has_cbilbo_free_embedding() {
        let ip = ex1_paths(false);
        // Mult: L={R3(e), R1(c)}, R={R2(g), R3(e)}, SA={R2}.
        let embs = enumerate(&ip, ModuleId(1));
        assert!(embs.iter().any(|e| e.cbilbo_register().is_none()));
    }

    #[test]
    fn embedding_registers_dedup() {
        let e = Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(0));
        assert_eq!(e.registers(), vec![RegisterId(0), RegisterId(1)]);
        assert_eq!(e.cbilbo_register(), Some(RegisterId(0)));
        let f = Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(2));
        assert_eq!(f.registers().len(), 3);
        assert_eq!(f.cbilbo_register(), None);
        assert_eq!(f.tpg_registers().count(), 2);
    }

    #[test]
    fn input_sources_are_free_tpgs() {
        let e = Embedding {
            left: PatternSource::Input(lobist_dfg::VarId(0)),
            right: PatternSource::Register(RegisterId(1)),
            sa: RegisterId(2),
        };
        assert_eq!(e.tpg_registers().count(), 1);
        assert_eq!(e.cbilbo_register(), None);
        assert_eq!(e.registers(), vec![RegisterId(1), RegisterId(2)]);
    }

    #[test]
    fn same_input_cannot_feed_both_ports() {
        // Build a tiny data path where one port-resident input feeds both
        // ports: x * x with x unregistered.
        use lobist_dfg::lifetime::LifetimeOptions;
        use lobist_dfg::{DfgBuilder, OpKind, Schedule};
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Mul, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1*".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        let dp = DataPath::build(&dfg, &schedule, LifetimeOptions::port_inputs(), &ma, &ra, &ic)
            .unwrap();
        let ip = IPathAnalysis::of(&dp);
        assert!(enumerate(&ip, ModuleId(0)).is_empty());
        assert!(!ip.has_embedding(ModuleId(0)));
    }

    #[test]
    fn connectivity_enumeration_matches_ipath_enumeration() {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic,
        )
        .unwrap();
        let ip = IPathAnalysis::of(&dp);
        for m in dp.module_ids() {
            let left = dp.port_sources(lobist_datapath::Port { module: m, side: PortSide::Left });
            let right =
                dp.port_sources(lobist_datapath::Port { module: m, side: PortSide::Right });
            let direct = enumerate_from_connectivity(left, right, dp.output_destinations(m));
            assert_eq!(direct, enumerate(&ip, m), "{m}");
        }
    }

    #[test]
    fn display_is_readable() {
        let e = Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(2));
        assert_eq!(e.to_string(), "TPG(L)=R1, TPG(R)=R2, SA=R3");
        let p = PatternSource::Input(lobist_dfg::VarId(4));
        assert_eq!(p.to_string(), "in:v4");
    }
}
