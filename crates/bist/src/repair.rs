//! Test-point insertion: repairing untestable modules.
//!
//! A module has no BIST embedding when some input port lacks a second
//! independent pattern source (e.g. both operands always come from one
//! register, or a port is fed only by a hard-wired constant). The
//! partial-intrusion answer is a **test point**: a test-only connection
//! from an existing register to the starved port, costing one mux leg.
//!
//! [`solve_with_repair`] runs the minimal-area solver and, whenever it
//! reports an untestable module, inserts the cheapest effective test
//! point and retries — returning the final solution together with the
//! list of inserted connections and their mux-leg cost so the caller can
//! charge them to the BIST budget.

use lobist_datapath::area::{AreaModel, GateCount};
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{DataPath, ModuleId, Port, PortSide, RegisterId};

use crate::allocate::{solve, BistError, SolverConfig};
use crate::report::BistSolution;

/// One inserted test point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestPoint {
    /// The starved port.
    pub port: Port,
    /// The register now wired to it (test-only).
    pub register: RegisterId,
}

/// The outcome of [`solve_with_repair`].
#[derive(Debug, Clone)]
pub struct RepairedSolution {
    /// The final BIST solution over the repaired data path.
    pub solution: BistSolution,
    /// The repaired data path (original plus test connections).
    pub data_path: DataPath,
    /// Test points inserted, in insertion order.
    pub test_points: Vec<TestPoint>,
    /// Extra interconnect gates for the test points (mux legs).
    pub repair_gates: GateCount,
}

impl RepairedSolution {
    /// Total BIST cost: register upgrades plus test-point interconnect.
    pub fn total_overhead(&self) -> GateCount {
        self.solution.overhead + self.repair_gates
    }
}

/// Picks the register to wire to a starved port: one not already on the
/// port, preferring a register that is *not* the module's only SA
/// candidate (so the new source can serve as an independent TPG),
/// breaking ties toward lower indices.
fn pick_register(dp: &DataPath, ipaths: &IPathAnalysis, m: ModuleId, side: PortSide) -> Option<RegisterId> {
    let on_port = ipaths.tpg_candidates(m, side);
    let other = ipaths.tpg_candidates(m, side.other());
    let sas = ipaths.sa_candidates(m);
    let mut candidates: Vec<RegisterId> = dp
        .register_ids()
        .filter(|r| !on_port.contains(r))
        .collect();
    // Prefer registers that are not the other port's only source and not
    // the sole SA — maximizing the chance of a CBILBO-free embedding.
    candidates.sort_by_key(|r| {
        let is_only_other = other.len() == 1 && other.contains(r);
        let is_only_sa = sas.len() == 1 && sas.contains(r);
        (usize::from(is_only_other) + usize::from(is_only_sa), r.index())
    });
    candidates.first().copied()
}

/// Runs the solver, inserting test points until every module is
/// testable (or no register is left to wire).
///
/// # Errors
///
/// Returns the final [`BistError`] if repair is impossible (e.g. a
/// single-register data path).
pub fn solve_with_repair(
    dp: &DataPath,
    model: &AreaModel,
    cfg: &SolverConfig,
) -> Result<RepairedSolution, BistError> {
    let mut current = dp.clone();
    let mut test_points = Vec::new();
    // Each port can receive at most every register, bounding the loop.
    let limit = 2 * dp.num_modules() * dp.num_registers() + 1;
    for _ in 0..limit {
        match solve(&current, model, cfg) {
            Ok(solution) => {
                let repair_gates: GateCount =
                    (0..test_points.len()).map(|_| GateCount(model.mux_leg_per_bit * model.width as u64)).sum();
                return Ok(RepairedSolution {
                    solution,
                    data_path: current,
                    test_points,
                    repair_gates,
                });
            }
            Err(BistError::NoEmbedding { module }) => {
                let ipaths = IPathAnalysis::of(&current);
                // Find the port that blocks an embedding: one with no
                // sources at all, or both ports sharing a single source.
                let l = ipaths.tpg_candidates(module, PortSide::Left).len()
                    + ipaths.input_candidates(module, PortSide::Left).len();
                let r = ipaths.tpg_candidates(module, PortSide::Right).len()
                    + ipaths.input_candidates(module, PortSide::Right).len();
                let side = if l <= r { PortSide::Left } else { PortSide::Right };
                let port = Port { module, side };
                let Some(reg) = pick_register(&current, &ipaths, module, side) else {
                    return Err(BistError::NoEmbedding { module });
                };
                current = current.with_test_connection(port, reg);
                test_points.push(TestPoint {
                    port,
                    register: reg,
                });
            }
        }
    }
    // The loop bound is generous; reaching it means no progress is
    // possible.
    solve(&current, model, cfg).map(|solution| RepairedSolution {
        solution,
        data_path: current,
        test_points,
        repair_gates: GateCount::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobist_datapath::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::lifetime::LifetimeOptions;
    use lobist_dfg::{DfgBuilder, OpKind, Schedule};

    /// x * x with x in a register: both ports see only R1 → untestable
    /// without a test point.
    fn square_dp() -> DataPath {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Mul, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1*".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["x"], vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        DataPath::build(&dfg, &schedule, LifetimeOptions::registered_inputs(), &ma, &ra, &ic)
            .unwrap()
    }

    #[test]
    fn unrepairable_without_and_repairable_with_test_point() {
        let dp = square_dp();
        let model = AreaModel::default();
        let cfg = SolverConfig::default();
        assert!(matches!(
            solve(&dp, &model, &cfg),
            Err(BistError::NoEmbedding { .. })
        ));
        let repaired = solve_with_repair(&dp, &model, &cfg).expect("repairable");
        assert_eq!(repaired.test_points.len(), 1);
        // The inserted source is R2 (t's register) onto one mult port.
        assert_eq!(repaired.test_points[0].register, RegisterId(1));
        assert!(repaired.repair_gates.get() > 0);
        assert!(repaired.total_overhead() > repaired.solution.overhead);
        // The repaired solution is genuinely valid for the repaired path.
        let violations =
            crate::verify::verify(&repaired.data_path, &repaired.solution, &model);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn already_testable_designs_need_no_repair() {
        use lobist_dfg::benchmarks;
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let ma = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &ma,
            &regs,
            &ic)
        .unwrap();
        let repaired =
            solve_with_repair(&dp, &AreaModel::default(), &SolverConfig::default()).unwrap();
        assert!(repaired.test_points.is_empty());
        assert_eq!(repaired.repair_gates, GateCount::ZERO);
        assert_eq!(repaired.total_overhead(), repaired.solution.overhead);
    }

    #[test]
    fn single_register_design_stays_unrepairable() {
        // One register total: no independent second source exists.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.op(OpKind::Mul, "t", x.into(), x.into());
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let schedule = Schedule::new(&dfg, vec![1]).unwrap();
        let modules: lobist_dfg::modules::ModuleSet = "1*".parse().unwrap();
        let ma = ModuleAssignment::from_op_names(&dfg, &modules, &[("t_op", 0)]).unwrap();
        // x port-resident; only t registered → single register.
        let ra = RegisterAssignment::from_names(&dfg, &[vec!["t"]]).unwrap();
        let ic = InterconnectAssignment::straight(&dfg);
        let dp = DataPath::build(&dfg, &schedule, LifetimeOptions::port_inputs(), &ma, &ra, &ic)
            .unwrap();
        // x*x from one input pin: both ports see the same single input →
        // untestable, and the only register is the SA itself... a test
        // point from R1 to a port does make an embedding (R1 TPG + in_x),
        // at the price of a CBILBO. Accept either outcome but require
        // consistency.
        match solve_with_repair(&dp, &AreaModel::default(), &SolverConfig::default()) {
            Ok(r) => {
                let violations =
                    crate::verify::verify(&r.data_path, &r.solution, &AreaModel::default());
                assert!(violations.is_empty(), "{violations:?}");
            }
            Err(BistError::NoEmbedding { .. }) => {}
        }
    }
}
