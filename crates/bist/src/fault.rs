//! Pseudo-random test-length estimation.
//!
//! An extension beyond the paper's tables: once a BIST solution is
//! chosen, the time to run the self-test is the sum over sessions of the
//! longest pattern requirement in that session. Pattern requirements per
//! module kind follow the usual random-pattern-testability folklore:
//! random-pattern-resistant structures (dividers, comparators with long
//! carry chains) need more patterns than RP-easy logic.

use lobist_datapath::DataPath;
use lobist_dfg::modules::ModuleClass;
use lobist_dfg::OpKind;

/// Pseudo-random patterns needed to reach high stuck-at coverage on a
/// module of the given class at the given bit width (a coarse but
/// monotone model: wider and RP-harder units need more patterns).
pub fn patterns_required(class: ModuleClass, width: u32) -> u64 {
    let w = width as u64;
    match class {
        ModuleClass::Op(OpKind::Add) => 64 * w,
        ModuleClass::Op(OpKind::Sub) => 64 * w,
        ModuleClass::Op(OpKind::Mul) => 256 * w,
        ModuleClass::Op(OpKind::Div) => 1024 * w,
        ModuleClass::Op(OpKind::And | OpKind::Or | OpKind::Xor) => 16 * w,
        ModuleClass::Op(OpKind::Lt) => 128 * w,
        ModuleClass::Alu => 512 * w,
    }
}

/// Total self-test time in clock cycles: sessions run one after another,
/// and a session lasts as long as its most pattern-hungry module.
pub fn test_cycles(dp: &DataPath, sessions: &[u32], width: u32) -> u64 {
    let num_sessions = sessions.iter().copied().max().map_or(0, |m| m + 1);
    (0..num_sessions)
        .map(|s| {
            dp.module_ids()
                .filter(|m| sessions[m.index()] == s)
                .map(|m| patterns_required(dp.module_class(m), width))
                .max()
                .unwrap_or(0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harder_modules_need_more_patterns() {
        let w = 8;
        let add = patterns_required(ModuleClass::Op(OpKind::Add), w);
        let mul = patterns_required(ModuleClass::Op(OpKind::Mul), w);
        let div = patterns_required(ModuleClass::Op(OpKind::Div), w);
        let and = patterns_required(ModuleClass::Op(OpKind::And), w);
        assert!(and < add && add < mul && mul < div);
    }

    #[test]
    fn wider_units_need_more_patterns() {
        assert!(
            patterns_required(ModuleClass::Alu, 16) > patterns_required(ModuleClass::Alu, 8)
        );
    }

    #[test]
    fn parallel_sessions_save_time() {
        use lobist_datapath::{
            DataPath, InterconnectAssignment, ModuleAssignment, RegisterAssignment,
        };
        use lobist_dfg::benchmarks;
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        // One shared session vs two sequential ones.
        let together = test_cycles(&dp, &[0, 0], 8);
        let apart = test_cycles(&dp, &[0, 1], 8);
        assert!(together < apart);
        assert_eq!(test_cycles(&dp, &[], 8), 0);
    }
}
