//! Independent validation of BIST solutions.
//!
//! [`verify`] re-derives, from the data path alone, everything a
//! [`BistSolution`] claims: that each module's embedding is drawn from
//! real I-paths, that register styles provide the capabilities the
//! embeddings demand, that CBILBOs appear exactly where an embedding
//! reuses its SA as a TPG, that sessions never double-book a signature
//! register, and that the overhead accounting adds up. The test suite
//! runs it over every flow result; downstream users can run it over
//! hand-written or deserialized solutions.

use std::fmt;

use lobist_datapath::area::AreaModel;
use lobist_datapath::ipath::IPathAnalysis;
use lobist_datapath::{DataPath, ModuleId, PortSide, RegisterId};

use crate::embedding::PatternSource;
use crate::report::BistSolution;

/// A violated invariant found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The solution's vectors do not match the data path's shape.
    ShapeMismatch {
        /// What was malformed.
        what: &'static str,
    },
    /// An embedding names a pattern source with no I-path to the port.
    NoSuchIPath {
        /// The module.
        module: ModuleId,
        /// Which port.
        side: PortSide,
    },
    /// An embedding's SA register does not receive the module's output.
    NoSuchSaPath {
        /// The module.
        module: ModuleId,
    },
    /// The two pattern sources of an embedding coincide.
    DuplicateTpg {
        /// The module.
        module: ModuleId,
    },
    /// A register's style lacks a capability its roles demand.
    InsufficientStyle {
        /// The register.
        register: RegisterId,
        /// Why.
        needs: &'static str,
    },
    /// Two module tests in the same session contend for a register.
    SessionConflict {
        /// First module.
        a: ModuleId,
        /// Second module.
        b: ModuleId,
    },
    /// The recorded overhead differs from the sum of style extras.
    OverheadMismatch {
        /// Recorded total.
        recorded: u64,
        /// Recomputed total.
        recomputed: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            Violation::NoSuchIPath { module, side } => {
                write!(f, "{module}.{side}: pattern source has no I-path")
            }
            Violation::NoSuchSaPath { module } => {
                write!(f, "{module}: SA register receives no output I-path")
            }
            Violation::DuplicateTpg { module } => {
                write!(f, "{module}: both ports fed by the same pattern source")
            }
            Violation::InsufficientStyle { register, needs } => {
                write!(f, "{register}: style cannot {needs}")
            }
            Violation::SessionConflict { a, b } => {
                write!(f, "{a} and {b} conflict within one session")
            }
            Violation::OverheadMismatch {
                recorded,
                recomputed,
            } => write!(f, "overhead {recorded} != recomputed {recomputed}"),
        }
    }
}

/// Checks that the solution's vectors match the data path's shape: one
/// style per register, one embedding and one session per module.
///
/// Every other check indexes those vectors by register/module id, so run
/// this first and stop if it reports anything.
pub fn check_shape(dp: &DataPath, solution: &BistSolution) -> Vec<Violation> {
    let mut out = Vec::new();
    if solution.styles.len() != dp.num_registers() {
        out.push(Violation::ShapeMismatch { what: "styles length" });
        return out;
    }
    if solution.embeddings.len() != dp.num_modules()
        || solution.sessions.len() != dp.num_modules()
    {
        out.push(Violation::ShapeMismatch { what: "embeddings/sessions length" });
    }
    out
}

/// Checks that every embedding is drawn from real I-paths: each pattern
/// source reaches its port, the two sources differ, and the SA register
/// actually receives the module's output.
///
/// Assumes [`check_shape`] passed.
pub fn check_embedding_paths(
    dp: &DataPath,
    ipaths: &IPathAnalysis,
    solution: &BistSolution,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in dp.module_ids() {
        let e = &solution.embeddings[m.index()];
        for (src, side) in [(e.left, PortSide::Left), (e.right, PortSide::Right)] {
            let ok = match src {
                PatternSource::Register(r) => ipaths.tpg_candidates(m, side).contains(&r),
                PatternSource::Input(v) => ipaths.input_candidates(m, side).contains(&v),
            };
            if !ok {
                out.push(Violation::NoSuchIPath { module: m, side });
            }
        }
        if e.left == e.right {
            out.push(Violation::DuplicateTpg { module: m });
        }
        if !ipaths.sa_candidates(m).contains(&e.sa) {
            out.push(Violation::NoSuchSaPath { module: m });
        }
    }
    out
}

/// Checks that each register's style provides the *separate* capabilities
/// its test roles demand: TPGs generate, SAs compact.
///
/// The stricter requirement on a register serving as TPG **and** SA in
/// one embedding is [`check_concurrent_roles`]; the lint layer reports
/// the two under different diagnostic codes.
///
/// Assumes [`check_shape`] passed.
pub fn check_role_styles(dp: &DataPath, solution: &BistSolution) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in dp.module_ids() {
        let e = &solution.embeddings[m.index()];
        for t in e.tpg_registers() {
            if !solution.style(t).can_generate() {
                out.push(Violation::InsufficientStyle {
                    register: t,
                    needs: "generate patterns",
                });
            }
        }
        if !solution.style(e.sa).can_analyze() {
            out.push(Violation::InsufficientStyle {
                register: e.sa,
                needs: "compact responses",
            });
        }
    }
    out
}

/// Checks that every register serving as both TPG and SA of one embedding
/// — the Lemma-2 "forced CBILBO" situation — is styled to generate and
/// compact concurrently.
///
/// Assumes [`check_shape`] passed.
pub fn check_concurrent_roles(dp: &DataPath, solution: &BistSolution) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in dp.module_ids() {
        let e = &solution.embeddings[m.index()];
        if let Some(c) = e.cbilbo_register() {
            if !solution.style(c).can_do_both_concurrently() {
                out.push(Violation::InsufficientStyle {
                    register: c,
                    needs: "generate and compact concurrently",
                });
            }
        }
    }
    out
}

/// Checks the session rules: two modules tested in the same session must
/// not share a signature register, and one module's TPG may serve as the
/// other's SA only if styled to do both concurrently.
///
/// Assumes [`check_shape`] passed.
pub fn check_sessions(dp: &DataPath, solution: &BistSolution) -> Vec<Violation> {
    let mut out = Vec::new();
    for a in dp.module_ids() {
        for b in dp.module_ids().filter(|b| b.index() > a.index()) {
            if solution.sessions[a.index()] != solution.sessions[b.index()] {
                continue;
            }
            let ea = &solution.embeddings[a.index()];
            let eb = &solution.embeddings[b.index()];
            let sa_clash = ea.sa == eb.sa;
            let cross = |gen: &crate::embedding::Embedding, ana: &crate::embedding::Embedding| {
                gen.tpg_registers().any(|t| {
                    t == ana.sa && !solution.style(t).can_do_both_concurrently()
                })
            };
            if sa_clash || cross(ea, eb) || cross(eb, ea) {
                out.push(Violation::SessionConflict { a, b });
            }
        }
    }
    out
}

/// Checks that the recorded overhead equals the sum of per-style extras
/// under `model`.
pub fn check_overhead(solution: &BistSolution, model: &AreaModel) -> Vec<Violation> {
    let recomputed: u64 = solution
        .styles
        .iter()
        .map(|&s| model.style_extra(s).get())
        .sum();
    if recomputed != solution.overhead.get() {
        return vec![Violation::OverheadMismatch {
            recorded: solution.overhead.get(),
            recomputed,
        }];
    }
    Vec::new()
}

/// Checks every invariant of `solution` against `dp`; returns all
/// violations found (empty = valid).
///
/// This is the composition of the granular checks above — the same
/// functions the `lobist-lint` BIST passes run, so the linter and this
/// verifier cannot drift apart.
pub fn verify(dp: &DataPath, solution: &BistSolution, model: &AreaModel) -> Vec<Violation> {
    let mut out = check_shape(dp, solution);
    if !out.is_empty() {
        return out;
    }
    let ipaths = IPathAnalysis::of(dp);
    out.extend(check_embedding_paths(dp, &ipaths, solution));
    out.extend(check_role_styles(dp, solution));
    out.extend(check_concurrent_roles(dp, solution));
    out.extend(check_sessions(dp, solution));
    out.extend(check_overhead(solution, model));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, SolverConfig};
    use lobist_datapath::area::BistStyle;
    use lobist_datapath::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_solved() -> (DataPath, BistSolution) {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        let sol = solve(&dp, &AreaModel::default(), &SolverConfig::default()).unwrap();
        (dp, sol)
    }

    #[test]
    fn solver_output_verifies_clean() {
        let (dp, sol) = ex1_solved();
        assert!(verify(&dp, &sol, &AreaModel::default()).is_empty());
    }

    #[test]
    fn downgraded_style_is_caught() {
        let (dp, mut sol) = ex1_solved();
        // Break a TPG into a plain register.
        let tpg = dp
            .register_ids()
            .find(|&r| sol.style(r).can_generate())
            .expect("solution has a generator");
        sol.styles[tpg.index()] = BistStyle::Normal;
        let violations = verify(&dp, &sol, &AreaModel::default());
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::InsufficientStyle { .. })));
        // The accounting is now off too.
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::OverheadMismatch { .. })));
    }

    #[test]
    fn fake_ipath_is_caught() {
        let (dp, mut sol) = ex1_solved();
        // Point a TPG at a register with no I-path to that port: R3 only
        // feeds the multiplier's ports, never the adder's right port.
        sol.embeddings[0].right = PatternSource::Register(RegisterId(2));
        sol.styles[2] = BistStyle::Tpg;
        let violations = verify(&dp, &sol, &AreaModel::default());
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NoSuchIPath { .. })), "{violations:?}");
    }

    #[test]
    fn session_collision_is_caught() {
        let (dp, mut sol) = ex1_solved();
        if sol.sessions[0] != sol.sessions[1] {
            // Force the two modules (which share an SA) together.
            sol.sessions[1] = sol.sessions[0];
        }
        let same_sa = sol.embeddings[0].sa == sol.embeddings[1].sa;
        let violations = verify(&dp, &sol, &AreaModel::default());
        if same_sa {
            assert!(violations
                .iter()
                .any(|v| matches!(v, Violation::SessionConflict { .. })), "{violations:?}");
        }
    }

    #[test]
    fn shape_mismatch_short_circuits() {
        let (dp, mut sol) = ex1_solved();
        sol.styles.pop();
        let violations = verify(&dp, &sol, &AreaModel::default());
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::ShapeMismatch { .. }));
        assert!(violations[0].to_string().contains("styles length"));
    }

}
