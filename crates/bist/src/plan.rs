//! Test-plan reporting: sessions, their modules and the overall self-test
//! length.

use std::fmt;

use lobist_datapath::DataPath;

use crate::fault;
use crate::report::BistSolution;

/// One test session: which modules run and how long the session lasts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session index (0-based, run in order).
    pub index: u32,
    /// Modules tested in this session (indices).
    pub modules: Vec<usize>,
    /// Session length in clock cycles (the most pattern-hungry module).
    pub cycles: u64,
}

/// The full self-test plan derived from a BIST solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPlan {
    /// Sessions in execution order.
    pub sessions: Vec<SessionInfo>,
    /// Total self-test length in clock cycles.
    pub total_cycles: u64,
}

impl TestPlan {
    /// Derives the plan from a solved design at the given data-path
    /// width.
    pub fn new(dp: &DataPath, solution: &BistSolution, width: u32) -> Self {
        let n = solution
            .sessions
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let mut sessions = Vec::with_capacity(n as usize);
        for s in 0..n {
            let modules: Vec<usize> = dp
                .module_ids()
                .filter(|m| solution.sessions[m.index()] == s)
                .map(|m| m.index())
                .collect();
            let cycles = modules
                .iter()
                .map(|&mi| {
                    fault::patterns_required(
                        dp.module_class(lobist_datapath::ModuleId(mi as u32)),
                        width,
                    )
                })
                .max()
                .unwrap_or(0);
            sessions.push(SessionInfo {
                index: s,
                modules,
                cycles,
            });
        }
        let total_cycles = sessions.iter().map(|s| s.cycles).sum();
        Self {
            sessions,
            total_cycles,
        }
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }
}

impl fmt::Display for TestPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Test plan: {} sessions, {} cycles total",
            self.num_sessions(),
            self.total_cycles
        )?;
        for s in &self.sessions {
            let mods: Vec<String> = s.modules.iter().map(|m| format!("M{}", m + 1)).collect();
            writeln!(
                f,
                "  session {}: {{{}}} for {} cycles",
                s.index,
                mods.join(", "),
                s.cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, SolverConfig};
    use lobist_datapath::area::AreaModel;
    use lobist_datapath::{InterconnectAssignment, ModuleAssignment, RegisterAssignment};
    use lobist_dfg::benchmarks;

    fn ex1_solution() -> (DataPath, BistSolution) {
        let bench = benchmarks::ex1();
        let regs = RegisterAssignment::from_names(
            &bench.dfg,
            &[vec!["c", "f", "a"], vec!["d", "g", "b", "h"], vec!["e"]],
        )
        .unwrap();
        let modules = ModuleAssignment::from_op_names(
            &bench.dfg,
            &bench.module_allocation,
            &[("add1", 0), ("add2", 0), ("mul1", 1), ("mul2", 1)],
        )
        .unwrap();
        let ic = InterconnectAssignment::straight(&bench.dfg);
        let dp = DataPath::build(
            &bench.dfg,
            &bench.schedule,
            bench.lifetime_options,
            &modules,
            &regs,
            &ic)
        .unwrap();
        let sol = solve(&dp, &AreaModel::default(), &SolverConfig::default()).unwrap();
        (dp, sol)
    }

    #[test]
    fn plan_covers_every_module_once() {
        let (dp, sol) = ex1_solution();
        let plan = TestPlan::new(&dp, &sol, 8);
        let mut seen: Vec<usize> = plan.sessions.iter().flat_map(|s| s.modules.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..dp.num_modules()).collect::<Vec<_>>());
        assert_eq!(
            plan.total_cycles,
            fault::test_cycles(&dp, &sol.sessions, 8)
        );
    }

    #[test]
    fn display_lists_sessions() {
        let (dp, sol) = ex1_solution();
        let plan = TestPlan::new(&dp, &sol, 8);
        let text = plan.to_string();
        assert!(text.contains("Test plan:"));
        assert!(text.contains("session 0:"));
        assert!(text.contains("cycles"));
    }

    #[test]
    fn sessions_are_nonempty_and_ordered() {
        let (dp, sol) = ex1_solution();
        let plan = TestPlan::new(&dp, &sol, 8);
        for (i, s) in plan.sessions.iter().enumerate() {
            assert_eq!(s.index as usize, i);
            assert!(!s.modules.is_empty());
            assert!(s.cycles > 0);
        }
    }
}
