//! The solved BIST configuration and its presentation.

use std::fmt;

use lobist_datapath::area::{BistStyle, GateCount};
use lobist_datapath::RegisterId;

use crate::embedding::Embedding;
use crate::session;

/// A complete minimal-area BIST solution for a data path.
#[derive(Debug, Clone, PartialEq)]
pub struct BistSolution {
    /// Final style of each register (indexed by register).
    pub styles: Vec<BistStyle>,
    /// The chosen embedding of each module (indexed by module).
    pub embeddings: Vec<Embedding>,
    /// Test session of each module (0-based, indexed by module).
    pub sessions: Vec<u32>,
    /// Total extra gates for the BIST registers.
    pub overhead: GateCount,
    /// Overhead as a percentage of the functional gate count.
    pub overhead_percent: f64,
}

impl BistSolution {
    pub(crate) fn new(
        styles: Vec<BistStyle>,
        embeddings: Vec<Embedding>,
        sessions: Vec<u32>,
        overhead: GateCount,
        overhead_percent: f64,
    ) -> Self {
        Self {
            styles,
            embeddings,
            sessions,
            overhead,
            overhead_percent,
        }
    }

    /// The style of register `r`.
    pub fn style(&self, r: RegisterId) -> BistStyle {
        self.styles[r.index()]
    }

    /// Number of registers configured with the given style.
    pub fn count(&self, style: BistStyle) -> usize {
        self.styles.iter().filter(|&&s| s == style).count()
    }

    /// Total number of modified (non-normal) registers.
    pub fn num_test_registers(&self) -> usize {
        self.styles.len() - self.count(BistStyle::Normal)
    }

    /// Number of test sessions.
    pub fn num_sessions(&self) -> usize {
        session::session_count(&self.sessions)
    }

    /// The paper's Table II-style mix, e.g. `"1 CBILBO, 1 TPG/SA, 2 TPG"`.
    /// Styles with zero count are omitted; an all-normal solution prints
    /// `"none"`.
    pub fn mix(&self) -> String {
        let order = [
            BistStyle::Cbilbo,
            BistStyle::Bilbo,
            BistStyle::Tpg,
            BistStyle::Sa,
        ];
        let parts: Vec<String> = order
            .into_iter()
            .filter_map(|s| {
                let n = self.count(s);
                (n > 0).then(|| format!("{n} {s}"))
            })
            .collect();
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join(", ")
        }
    }
}

impl fmt::Display for BistSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BIST solution: {} (+{}, {:.2}% overhead, {} sessions)",
            self.mix(),
            self.overhead,
            self.overhead_percent,
            self.num_sessions()
        )?;
        for (i, (e, s)) in self.embeddings.iter().zip(&self.sessions).enumerate() {
            writeln!(f, "  M{}: {e} [session {s}]", i + 1)?;
        }
        for (i, style) in self.styles.iter().enumerate() {
            if *style != BistStyle::Normal {
                writeln!(f, "  R{}: {style}", i + 1)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BistSolution {
        BistSolution::new(
            vec![BistStyle::Tpg, BistStyle::Cbilbo, BistStyle::Normal],
            vec![
                Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(1)),
            ],
            vec![0],
            GateCount(104),
            9.5,
        )
    }

    #[test]
    fn counts_and_mix() {
        let s = sample();
        assert_eq!(s.count(BistStyle::Tpg), 1);
        assert_eq!(s.count(BistStyle::Cbilbo), 1);
        assert_eq!(s.count(BistStyle::Normal), 1);
        assert_eq!(s.num_test_registers(), 2);
        assert_eq!(s.mix(), "1 CBILBO, 1 TPG");
        assert_eq!(s.num_sessions(), 1);
    }

    #[test]
    fn empty_mix_prints_none() {
        let s = BistSolution::new(vec![BistStyle::Normal], vec![], vec![], GateCount::ZERO, 0.0);
        assert_eq!(s.mix(), "none");
    }

    #[test]
    fn display_includes_mix_and_overhead() {
        let text = sample().to_string();
        assert!(text.contains("1 CBILBO, 1 TPG"));
        assert!(text.contains("9.50%"));
        assert!(text.contains("R2: CBILBO"));
        assert!(text.contains("M1: TPG(L)=R1"));
    }
}

impl BistSolution {
    /// Converts the solution into the per-module test roles consumed by
    /// the BIST-mode Verilog backend
    /// ([`lobist_datapath::verilog_bist::to_bist_verilog`]).
    pub fn test_roles(&self) -> Vec<lobist_datapath::verilog_bist::ModuleTestRole> {
        self.embeddings
            .iter()
            .zip(&self.sessions)
            .map(|(e, &session)| lobist_datapath::verilog_bist::ModuleTestRole {
                left_tpg: e.left.register(),
                right_tpg: e.right.register(),
                sa: e.sa,
                session,
            })
            .collect()
    }
}

#[cfg(test)]
mod role_tests {
    use super::*;
    use lobist_datapath::area::BistStyle;

    #[test]
    fn roles_mirror_embeddings_and_sessions() {
        let sol = BistSolution::new(
            vec![BistStyle::Tpg, BistStyle::Cbilbo],
            vec![Embedding::with_registers(RegisterId(0), RegisterId(1), RegisterId(1))],
            vec![3],
            GateCount(96),
            10.0,
        );
        let roles = sol.test_roles();
        assert_eq!(roles.len(), 1);
        assert_eq!(roles[0].left_tpg, Some(RegisterId(0)));
        assert_eq!(roles[0].right_tpg, Some(RegisterId(1)));
        assert_eq!(roles[0].sa, RegisterId(1));
        assert_eq!(roles[0].session, 3);
    }
}
