//! # lobist — low-overhead BIST data path allocation
//!
//! A Rust reproduction of *"Data Path Allocation for Synthesizing RTL
//! Designs with Low BIST Area Overhead"* (Parulkar, Gupta, Breuer, DAC
//! 1995): high-level synthesis register and interconnect allocation that
//! maximizes sharing of built-in self-test registers and minimizes costly
//! CBILBO registers.
//!
//! ## The problem
//!
//! A scheduled data flow graph admits many register assignments with the
//! same register count — for the paper's running example, 108 distinct
//! ways to put eight variables into three registers. They cost the same
//! *functionally*, but they differ sharply in how cheaply the resulting
//! data path can test itself: pseudo-random BIST needs registers
//! reconfigured as test pattern generators (TPGs) and signature
//! analyzers (SAs), and a register that must do both *for the same
//! module's test* becomes a CBILBO at roughly twice the register's area.
//! The paper steers allocation toward the corner of the solution space
//! where test registers are shared between modules and CBILBOs are never
//! forced.
//!
//! ## Paper → code map
//!
//! | Paper concept | Implementation |
//! |---------------|----------------|
//! | scheduled DFG `G=(V,E)`, `S:V→ℕ` | [`dfg::Dfg`], [`dfg::Schedule`] |
//! | module assignment `σ:V→M`, `TM(Mᵢ)` | [`alloc::module_assign`], [`datapath::ModuleAssignment`] |
//! | `I_M`, `O_M`, `SD(v)`, `SD(R)`, `ΔSD` (Defs. 3–5) | [`alloc::variable_sets::SharingContext`] |
//! | variable conflict graph, PVES, `MCS(v)` | [`graph::interval`], [`graph::pves`], [`dfg::lifetime`] |
//! | the testable register allocator (III-A/B) | [`alloc::testable_regalloc`] |
//! | Lemma 1 / Lemma 2 CBILBO conditions | [`alloc::cbilbo`] |
//! | interconnect partition `IR^L/IR^R/IR^{LR}` (IV) | [`alloc::interconnect`] |
//! | I-paths, BIST embeddings (II) | [`datapath::ipath`], [`bist::embedding`] |
//! | the BITS minimal-area optimizer \[16\] | [`bist::solve`] |
//! | test sessions | [`bist::session`], [`bist::plan`] |
//! | RALLOC \[5\], SYNTEST \[7\] | [`baselines`] |
//! | Tables I–III, Figs. 1–6 | `lobist-bench` binaries (see EXPERIMENTS.md) |
//!
//! ## Beyond the paper
//!
//! * [`dfg::fds`] — force-directed scheduling (the provenance of the
//!   Paulin benchmark).
//! * [`dfg::interp`] + [`datapath::simulate`] — a golden interpreter and
//!   a cycle-accurate netlist simulator, equivalence-checked so every
//!   synthesized design is proven to compute its DFG.
//! * [`datapath::verilog`] / [`datapath::verilog_bist`] — synthesizable
//!   RTL and the BIST-mode test wrapper (LFSR/MISR reconfiguration,
//!   session controller), plus self-checking testbenches.
//! * [`gatesim`] — gate-level functional units, maximal
//!   LFSRs/MISRs and parallel-pattern stuck-at fault simulation, so the
//!   chosen BIST configurations' fault coverage and signature aliasing
//!   are *measured*, not assumed.
//! * [`alloc::explore`] — Pareto design-space exploration over module
//!   allocations and latencies; [`alloc::anneal`] — a simulated-annealing
//!   yardstick showing the paper's constructive heuristic lands within a
//!   few percent of search.
//! * [`bist::verify`] — an independent checker for any BIST solution.
//!
//! ## Quickstart
//!
//! ```
//! use lobist::alloc::flow::{synthesize, FlowOptions, RegAllocStrategy};
//! use lobist::dfg::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::ex1();
//! let design = synthesize(
//!     &bench.dfg,
//!     &bench.schedule,
//!     &bench.module_allocation,
//!     &FlowOptions::testable(),
//! )?;
//! println!("{} registers, BIST overhead {:.2}%",
//!          design.data_path.num_registers(),
//!          design.bist.overhead_percent);
//! # Ok(())
//! # }
//! ```
//!
//! Building from a textual design instead:
//!
//! ```
//! use lobist::alloc::flow::{synthesize, FlowOptions};
//! use lobist::dfg::parse::parse_dfg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (dfg, schedule) = parse_dfg(
//!     "input a b c d\n\
//!      s1 = a + b @ 1\n\
//!      s2 = c + d @ 2\n\
//!      y  = s1 * s2 @ 3\n\
//!      output y\n",
//! )?;
//! let design = synthesize(&dfg, &schedule, &"1+,1*".parse()?, &FlowOptions::testable())?;
//! assert_eq!(design.data_path.num_registers(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! And comparing against the testability-blind baseline:
//!
//! ```
//! use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
//! use lobist::dfg::benchmarks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::paulin();
//! let testable = synthesize_benchmark(&bench, &FlowOptions::testable())?;
//! let traditional = synthesize_benchmark(&bench, &FlowOptions::traditional())?;
//! assert!(testable.bist.overhead <= traditional.bist.overhead);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use lobist_alloc as alloc;
pub use lobist_baselines as baselines;
pub use lobist_bist as bist;
pub use lobist_datapath as datapath;
pub use lobist_dfg as dfg;
pub use lobist_engine as engine;
pub use lobist_gatesim as gatesim;
pub use lobist_graph as graph;
pub use lobist_lint as lint;
