//! Property-based tests over randomly generated scheduled DFGs: the
//! pipeline's core invariants must hold for *every* well-formed design,
//! not just the paper's benchmarks.

use proptest::prelude::*;

use lobist::alloc::baseline_regalloc::{self, BaselineAlgorithm};
use lobist::alloc::flow::{synthesize, FlowError, FlowOptions};
use lobist::alloc::module_assign::assign_modules;
use lobist::alloc::testable_regalloc::{allocate_registers, TestableAllocOptions};
use lobist::dfg::lifetime::{LifetimeOptions, Lifetimes};
use lobist::dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist::graph::chordal::is_chordal;

fn cfg_strategy() -> impl Strategy<Value = (u64, RandomDfgConfig)> {
    (
        any::<u64>(),
        4usize..24,
        2usize..7,
        1usize..4,
    )
        .prop_map(|(seed, num_ops, num_inputs, width)| {
            (
                seed,
                RandomDfgConfig {
                    num_ops,
                    num_inputs,
                    max_ops_per_step: width,
                    ..RandomDfgConfig::default()
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conflict_graphs_are_chordal((seed, cfg) in cfg_strategy()) {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        for opts in [LifetimeOptions::registered_inputs(), LifetimeOptions::port_inputs()] {
            let lt = Lifetimes::compute(&dfg, &schedule, opts);
            prop_assert!(is_chordal(&lt.conflict_graph()));
        }
    }

    #[test]
    fn testable_allocation_is_proper_and_near_minimal((seed, cfg) in cfg_strategy()) {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "4+,4-,4*,4&".parse().expect("valid");
        let ma = assign_modules(&dfg, &schedule, &modules).expect("generous module set");
        let lt_opts = LifetimeOptions::registered_inputs();
        let alloc = allocate_registers(&dfg, &schedule, lt_opts, &ma, &TestableAllocOptions::default())
            .expect("chordal");
        let lt = Lifetimes::compute(&dfg, &schedule, lt_opts);
        // Proper.
        for class in alloc.registers.classes() {
            for (i, &u) in class.iter().enumerate() {
                for &v in &class[i + 1..] {
                    prop_assert!(!lt.conflicts(u, v));
                }
            }
        }
        // Complete.
        for &v in lt.reg_vars() {
            prop_assert!(alloc.registers.register_of(v).is_some());
        }
        // Near-minimal: within one register of the chromatic minimum
        // (the paper's heuristic met the minimum on all its examples;
        // we allow +1 for adversarial random designs).
        let min = lt.min_registers();
        prop_assert!(
            alloc.registers.num_registers() <= min + 1,
            "used {} registers, minimum {min}",
            alloc.registers.num_registers()
        );
    }

    #[test]
    fn baselines_hit_exact_minimum((seed, cfg) in cfg_strategy()) {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let lt_opts = LifetimeOptions::registered_inputs();
        let lt = Lifetimes::compute(&dfg, &schedule, lt_opts);
        for alg in [BaselineAlgorithm::LeftEdge, BaselineAlgorithm::GreedyPves] {
            let ra = baseline_regalloc::allocate_registers(&dfg, &schedule, lt_opts, alg)
                .expect("chordal");
            prop_assert_eq!(ra.num_registers(), lt.min_registers());
        }
    }

    #[test]
    fn full_flow_invariants((seed, cfg) in cfg_strategy()) {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "3+,3-,3*,3&".parse().expect("valid");
        let opts = FlowOptions::testable();
        match synthesize(&dfg, &schedule, &modules, &opts) {
            Ok(d) => {
                // Overhead accounting is additive over styles.
                let sum: u64 = d.bist.styles.iter()
                    .map(|&s| opts.area.style_extra(s).get())
                    .sum();
                prop_assert_eq!(d.bist.overhead.get(), sum);
                // Every embedding is honored by the final styles.
                for e in &d.bist.embeddings {
                    for t in e.tpg_registers() {
                        prop_assert!(d.bist.style(t).can_generate());
                    }
                    prop_assert!(d.bist.style(e.sa).can_analyze());
                }
                // Sessions: a register never generates for one module and
                // analyzes for another in the same session unless CBILBO.
                for (i, a) in d.bist.embeddings.iter().enumerate() {
                    for (j, b) in d.bist.embeddings.iter().enumerate().skip(i + 1) {
                        if d.bist.sessions[i] != d.bist.sessions[j] {
                            continue;
                        }
                        prop_assert!(a.sa != b.sa, "shared SA in one session");
                        for (gen, ana) in [(a, b), (b, a)] {
                            for t in gen.tpg_registers() {
                                if t == ana.sa {
                                    prop_assert!(
                                        d.bist.style(t).can_do_both_concurrently(),
                                        "register {t} generates and analyzes in one session"
                                    );
                                }
                            }
                        }
                    }
                }
            }
            Err(FlowError::Bist(_)) => { /* legitimately untestable design */ }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

}

#[test]
fn testable_wins_in_aggregate_over_random_designs() {
    // The paper's claim is empirical: across designs, BIST-aware
    // allocation lowers the minimal BIST area. A greedy heuristic can
    // lose on an adversarial single design, so the property is aggregate:
    // over a fixed population of random designs the testable flow's total
    // overhead must be strictly lower.
    let cfg = RandomDfgConfig {
        num_ops: 10,
        num_inputs: 4,
        max_ops_per_step: 2,
        ..RandomDfgConfig::default()
    };
    let modules: lobist::dfg::modules::ModuleSet = "2+,2-,2*,2&".parse().expect("valid");
    let mut total_testable = 0u64;
    let mut total_traditional = 0u64;
    let mut compared = 0usize;
    for seed in 0..120u64 {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let t = synthesize(&dfg, &schedule, &modules, &FlowOptions::testable());
        let trad = synthesize(&dfg, &schedule, &modules, &FlowOptions::traditional());
        if let (Ok(t), Ok(trad)) = (t, trad) {
            total_testable += t.bist.overhead.get();
            total_traditional += trad.bist.overhead.get();
            compared += 1;
        }
    }
    assert!(compared >= 30, "only {compared} designs compared");
    assert!(
        total_testable < total_traditional,
        "aggregate testable {total_testable} vs traditional {total_traditional} over {compared} designs"
    );
}

#[test]
fn repair_rescues_most_untestable_random_designs() {
    // Designs the plain solver rejects should mostly become solvable
    // once test points may be inserted (only degenerate single-register
    // structures stay untestable).
    let cfg = RandomDfgConfig {
        num_ops: 10,
        num_inputs: 4,
        max_ops_per_step: 2,
        ..RandomDfgConfig::default()
    };
    let modules: lobist::dfg::modules::ModuleSet = "2+,2-,2*,2&".parse().expect("valid");
    let mut untestable = 0usize;
    let mut rescued = 0usize;
    for seed in 0..120u64 {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let plain = synthesize(&dfg, &schedule, &modules, &FlowOptions::testable());
        if matches!(plain, Err(FlowError::Bist(_))) {
            untestable += 1;
            let mut opts = FlowOptions::testable();
            opts.repair_untestable = true;
            if let Ok(d) = synthesize(&dfg, &schedule, &modules, &opts) {
                assert!(!d.test_points.is_empty(), "seed {seed}: repair must insert points");
                rescued += 1;
            }
        }
    }
    assert!(untestable >= 5, "population too small: {untestable}");
    assert!(
        rescued * 10 >= untestable * 8,
        "only {rescued}/{untestable} rescued"
    );
}
