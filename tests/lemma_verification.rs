//! Validates Lemma 1 and Lemma 2 (the exact CBILBO-forcing conditions)
//! against brute-force embedding enumeration on real data paths.
//!
//! Lemma 2 predicts, from the *register assignment alone*, which
//! registers must be CBILBOs in every BIST embedding once minimum
//! interconnect is assigned. We build the data path with the library's
//! minimum-interconnect binding and enumerate every embedding of every
//! module:
//!
//! * soundness — a predicted register really is the CBILBO of every
//!   embedding of its module (case (ii) predicts a *pair*, either of
//!   which must be the CBILBO);
//! * Lemma 1 — any module all of whose embeddings need a CBILBO has its
//!   output variables in at most two registers.

use std::collections::BTreeSet;

use lobist::alloc::cbilbo::{forced_cbilbos, lemma1_output_register_bound};
use lobist::alloc::flow::{synthesize_benchmark, FlowOptions, RegAllocStrategy};
use lobist::alloc::baseline_regalloc::BaselineAlgorithm;
use lobist::bist::embedding::enumerate;
use lobist::datapath::ipath::IPathAnalysis;
use lobist::datapath::RegisterId;
use lobist::dfg::benchmarks;
use lobist::dfg::random::{random_scheduled_dfg, RandomDfgConfig};

fn check_against_bruteforce(d: &lobist::alloc::flow::Design, dfg: &lobist::dfg::Dfg, tag: &str) {
    let classes = d.register_assignment.classes().to_vec();
    let predicted = forced_cbilbos(dfg, &d.module_assignment, &classes);
    let ipaths = IPathAnalysis::of(&d.data_path);

    for m in d.data_path.module_ids() {
        let embeddings = enumerate(&ipaths, m);
        if embeddings.is_empty() {
            continue; // untestable module: nothing to verify
        }
        let predicted_regs: BTreeSet<RegisterId> = predicted
            .iter()
            .filter(|f| f.module == m)
            .map(|f| RegisterId(f.register as u32))
            .collect();
        let all_need_cbilbo = embeddings.iter().all(|e| e.cbilbo_register().is_some());
        if !predicted_regs.is_empty() {
            // Soundness: every embedding's CBILBO comes from the
            // predicted set.
            assert!(
                all_need_cbilbo,
                "{tag}: {m} predicted forced but a CBILBO-free embedding exists"
            );
            for e in &embeddings {
                let c = e.cbilbo_register().expect("checked above");
                assert!(
                    predicted_regs.contains(&c),
                    "{tag}: {m} embedding {e} uses unpredicted CBILBO {c}"
                );
            }
        }
        if all_need_cbilbo {
            // Lemma 1: output variables span at most two registers.
            assert!(
                lemma1_output_register_bound(dfg, &d.module_assignment, &classes, m),
                "{tag}: {m} violates the Lemma 1 bound"
            );
        }
    }
}

#[test]
fn lemma2_sound_on_paper_suite() {
    for bench in benchmarks::paper_suite() {
        for opts in [FlowOptions::testable(), FlowOptions::traditional()] {
            let d = synthesize_benchmark(&bench, &opts).expect("synthesizes");
            check_against_bruteforce(&d, &bench.dfg, &bench.name);
        }
    }
}

#[test]
fn lemma2_sound_on_random_designs() {
    let cfg = RandomDfgConfig {
        num_ops: 12,
        num_inputs: 5,
        max_ops_per_step: 3,
        ..RandomDfgConfig::default()
    };
    // Scan seeds until enough designs verify: which seeds yield testable
    // designs depends on the RNG stream, so a fixed seed range would tie
    // the test to one generator implementation.
    let mut verified = 0;
    for seed in 0..400u64 {
        if verified >= 35 {
            break;
        }
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        // Generous module set so assignment always succeeds.
        let modules: lobist::dfg::modules::ModuleSet =
            "3+,3-,3*,3&".parse().expect("valid");
        for strategy in [
            RegAllocStrategy::Testable(Default::default()),
            RegAllocStrategy::Traditional(BaselineAlgorithm::LeftEdge),
        ] {
            let mut opts = FlowOptions::testable();
            opts.strategy = strategy;
            match lobist::alloc::flow::synthesize(&dfg, &schedule, &modules, &opts) {
                Ok(d) => {
                    check_against_bruteforce(&d, &dfg, &format!("seed {seed}"));
                    verified += 1;
                }
                Err(lobist::alloc::flow::FlowError::Bist(_)) => {
                    // Some random designs are legitimately untestable
                    // (e.g. a module whose ports see one register only);
                    // the lemma makes no claim there.
                }
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
    }
    assert!(verified >= 35, "only {verified} random designs verified");
}

#[test]
fn testable_allocator_reduces_forced_cbilbos_on_random_designs() {
    // Aggregate effect of the Lemma-2 veto: across random designs, the
    // testable allocator never predicts *more* forced-CBILBO situations
    // than the traditional one does, and strictly fewer somewhere.
    let cfg = RandomDfgConfig {
        num_ops: 14,
        num_inputs: 5,
        max_ops_per_step: 3,
        ..RandomDfgConfig::default()
    };
    let modules: lobist::dfg::modules::ModuleSet = "2+,2-,2*,2&".parse().expect("valid");
    let mut total_testable = 0usize;
    let mut total_traditional = 0usize;
    for seed in 0..30u64 {
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let run = |strategy| {
            let mut opts = FlowOptions::testable();
            opts.strategy = strategy;
            opts.solver = lobist::bist::SolverConfig {
                mode: lobist::bist::SolverMode::Greedy,
                ..Default::default()
            };
            lobist::alloc::flow::synthesize(&dfg, &schedule, &modules, &opts)
        };
        let t = run(RegAllocStrategy::Testable(Default::default()));
        let trad = run(RegAllocStrategy::Traditional(BaselineAlgorithm::LeftEdge));
        if let (Ok(t), Ok(trad)) = (t, trad) {
            let count = |d: &lobist::alloc::flow::Design| {
                let classes = d.register_assignment.classes().to_vec();
                let forced = forced_cbilbos(&dfg, &d.module_assignment, &classes);
                forced
                    .iter()
                    .map(|f| f.module)
                    .collect::<BTreeSet<_>>()
                    .len()
            };
            total_testable += count(&t);
            total_traditional += count(&trad);
        }
    }
    assert!(
        total_testable <= total_traditional,
        "testable {total_testable} vs traditional {total_traditional}"
    );
}
