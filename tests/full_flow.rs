//! End-to-end flow tests across the whole benchmark family, including
//! the larger synthetic designs and both lifetime conventions.

use lobist::alloc::flow::{synthesize, synthesize_benchmark, FlowOptions, RegAllocStrategy};
use lobist::alloc::testable_regalloc::TestableAllocOptions;
use lobist::bist::fault;
use lobist::datapath::area::AreaModel;
use lobist::dfg::benchmarks::{self, Benchmark};
use lobist::dfg::lifetime::Lifetimes;

fn check_design(bench: &Benchmark, opts: &FlowOptions) {
    let d = synthesize_benchmark(bench, opts).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    // Registers cover exactly the lifetime-bearing variables, properly.
    let lt = Lifetimes::compute(&bench.dfg, &bench.schedule, bench.lifetime_options);
    for &v in lt.reg_vars() {
        assert!(
            d.register_assignment.register_of(v).is_some(),
            "{}: {v} unassigned",
            bench.name
        );
    }
    for class in d.register_assignment.classes() {
        for (i, &u) in class.iter().enumerate() {
            for &v in &class[i + 1..] {
                assert!(!lt.conflicts(u, v), "{}: {u}/{v} share a register", bench.name);
            }
        }
    }
    // Every module is tested in some session, and session ids are dense.
    assert_eq!(d.bist.embeddings.len(), d.data_path.num_modules());
    assert_eq!(d.bist.sessions.len(), d.data_path.num_modules());
    let max = d.bist.sessions.iter().copied().max().unwrap_or(0);
    for s in 0..=max {
        assert!(
            d.bist.sessions.contains(&s),
            "{}: session {s} empty",
            bench.name
        );
    }
    // Overhead accounting is the sum of the style extras.
    let model = &opts.area;
    let sum: u64 = d
        .bist
        .styles
        .iter()
        .map(|&s| model.style_extra(s).get())
        .sum();
    assert_eq!(d.bist.overhead.get(), sum, "{}", bench.name);
    // Test-time estimation is positive and finite.
    let cycles = fault::test_cycles(&d.data_path, &d.bist.sessions, model.width);
    assert!(cycles > 0, "{}", bench.name);
}

#[test]
fn paper_suite_full_checks() {
    for bench in benchmarks::paper_suite() {
        check_design(&bench, &FlowOptions::testable());
        check_design(&bench, &FlowOptions::traditional());
    }
}

#[test]
fn extended_benchmarks_synthesize() {
    for bench in [
        benchmarks::paulin_full(),
        benchmarks::fir(4),
        benchmarks::fir(8),
        benchmarks::diffeq_unrolled(2),
        benchmarks::diffeq_unrolled(3),
    ] {
        check_design(&bench, &FlowOptions::testable());
    }
}

#[test]
fn greedy_solver_handles_large_designs() {
    use lobist::bist::{SolverConfig, SolverMode};
    let bench = benchmarks::diffeq_unrolled(4);
    let mut opts = FlowOptions::testable();
    opts.solver = SolverConfig {
        mode: SolverMode::Greedy,
        ..SolverConfig::default()
    };
    let d = synthesize_benchmark(&bench, &opts).expect("greedy flow succeeds");
    assert!(d.bist.overhead.get() > 0);
}

#[test]
fn exact_and_auto_agree_on_paper_suite() {
    use lobist::bist::{SolverConfig, SolverMode};
    for bench in benchmarks::paper_suite() {
        let mut exact = FlowOptions::testable();
        exact.solver = SolverConfig {
            mode: SolverMode::Exact,
            ..SolverConfig::default()
        };
        let auto = FlowOptions::testable();
        let de = synthesize_benchmark(&bench, &exact).expect("exact");
        let da = synthesize_benchmark(&bench, &auto).expect("auto");
        assert_eq!(de.bist.overhead, da.bist.overhead, "{}", bench.name);
    }
}

#[test]
fn ablation_options_all_synthesize() {
    for sd in [false, true] {
        for cases in [false, true] {
            for lemma2 in [false, true] {
                let opts = TestableAllocOptions {
                    sd_ordering: sd,
                    case_overrides: cases,
                    lemma2_check: lemma2,
                };
                let mut flow = FlowOptions::testable();
                flow.strategy = RegAllocStrategy::Testable(opts);
                for bench in benchmarks::paper_suite() {
                    let d = synthesize_benchmark(&bench, &flow)
                        .unwrap_or_else(|e| panic!("{} with {opts:?}: {e}", bench.name));
                    assert_eq!(
                        d.data_path.num_registers(),
                        bench.expected_min_registers,
                        "{} with {opts:?}",
                        bench.name
                    );
                }
            }
        }
    }
}

#[test]
fn width_scaling_preserves_the_win() {
    for width in [4u32, 16, 32] {
        let bench = benchmarks::ex1();
        let t = synthesize_benchmark(
            &bench,
            &FlowOptions::testable().with_area(AreaModel::with_width(width)),
        )
        .expect("testable");
        let trad = synthesize_benchmark(
            &bench,
            &FlowOptions::traditional().with_area(AreaModel::with_width(width)),
        )
        .expect("traditional");
        assert!(
            t.bist.overhead <= trad.bist.overhead,
            "width {width}: {} vs {}",
            t.bist.overhead,
            trad.bist.overhead
        );
    }
}

#[test]
fn unscheduled_flow_via_list_scheduler() {
    // A user starting from an unscheduled DFG can list-schedule and then
    // synthesize.
    let bench = benchmarks::tseng();
    let schedule =
        lobist::dfg::scheduling::list_schedule(&bench.dfg, &bench.module_allocation)
            .expect("schedulable");
    let opts = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
    let d = synthesize(&bench.dfg, &schedule, &bench.module_allocation, &opts)
        .expect("synthesizes");
    assert!(d.data_path.num_registers() >= 5);
}

#[test]
fn explorer_api_is_consistent_end_to_end() {
    use lobist::alloc::explore::{evaluate_candidate, explore, Candidate, ExploreConfig};
    let bench = benchmarks::paulin();
    let mut config = ExploreConfig::new(
        ["1+,2*,1-", "1+,2ALU"].iter().map(|s| s.parse().expect("valid")).collect(),
    );
    config.flow = config.flow.with_lifetimes(bench.lifetime_options);
    let result = explore(&bench.dfg, &config);
    assert!(!result.pareto.is_empty());
    for p in &result.points {
        // Every point's schedule must be a valid schedule of the DFG,
        // and re-evaluating its candidate must reproduce it exactly —
        // explore points are pure functions of the design's structure
        // (evaluation goes through the canonical form), so a repeat
        // evaluation is byte-identical, not merely close.
        assert!(p.latency >= 4, "below the critical path");
        assert_eq!(p.schedule.len(), bench.dfg.num_ops());
        let opts = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
        let candidate = Candidate {
            modules: p.modules.clone(),
            schedule: p.schedule.clone(),
        };
        let again = evaluate_candidate(&bench.dfg, &candidate, &opts)
            .expect("point re-evaluates");
        assert_eq!(again.bist.overhead, p.bist.overhead);
        assert_eq!(again.functional_gates, p.functional_gates);
        assert_eq!(again.bist.embeddings, p.bist.embeddings);
        assert_eq!(again.registers, p.registers);
    }
}

#[test]
fn ex1_trace_structure_matches_the_papers_walkthrough() {
    use lobist::alloc::trace::ChoiceReason;
    let bench = benchmarks::ex1();
    let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
    let trace = d.trace.expect("testable flow records a trace");
    // Eight coloring steps, exactly three register openings (the
    // minimum), and the first opening is step one.
    assert_eq!(trace.len(), 8);
    let openings: Vec<usize> = trace
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.reason == ChoiceReason::NewRegister)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(openings.len(), 3, "{trace}");
    assert_eq!(openings[0], 0);
    // As in the paper's walkthrough, the highest-sharing variables are
    // colored while all registers are still open: the first half of the
    // ordering carries SD ≥ the second half's average.
    let first_half: usize = trace.steps[..4].iter().map(|s| s.sd).sum();
    let second_half: usize = trace.steps[4..].iter().map(|s| s.sd).sum();
    assert!(first_half >= second_half, "{trace}");
    // Every step's decision cites a known rationale and a register that
    // exists by that point.
    let mut max_reg = 0usize;
    for step in &trace.steps {
        if step.reason == ChoiceReason::NewRegister {
            max_reg += 1;
        }
        assert!(step.chosen < max_reg, "{trace}");
    }
}
