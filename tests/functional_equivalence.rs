//! Functional equivalence: every synthesized data path — whatever flow
//! produced it — must compute exactly the function of its DFG. The
//! cycle-accurate netlist simulation is compared against the DFG
//! interpreter over many input vectors.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lobist::alloc::baseline_regalloc::BaselineAlgorithm;
use lobist::alloc::flow::{synthesize, synthesize_benchmark, FlowError, FlowOptions, RegAllocStrategy};
use lobist::datapath::simulate::simulate;
use lobist::dfg::benchmarks::{self, Benchmark};
use lobist::dfg::interp;
use lobist::dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist::dfg::VarId;

fn random_inputs(dfg: &lobist::dfg::Dfg, rng: &mut StdRng, width: u32) -> HashMap<VarId, u64> {
    let limit = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
    dfg.primary_inputs()
        .map(|v| (v, rng.gen_range(0..=limit)))
        .collect()
}

fn check_equivalence(bench: &Benchmark, opts: &FlowOptions, vectors: usize, width: u32) {
    let d = synthesize_benchmark(bench, opts).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..vectors {
        let inputs = random_inputs(&bench.dfg, &mut rng, width);
        let sim = simulate(&d.data_path, &bench.dfg, &bench.schedule, &inputs, width)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let gold = interp::outputs(&bench.dfg, &inputs, width)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert_eq!(sim, gold, "{} diverged", bench.name);
    }
}

#[test]
fn paper_suite_is_functionally_correct_in_both_flows() {
    for bench in benchmarks::paper_suite() {
        check_equivalence(&bench, &FlowOptions::testable(), 50, 8);
        check_equivalence(&bench, &FlowOptions::traditional(), 50, 8);
    }
}

#[test]
fn extended_benchmarks_are_functionally_correct() {
    for bench in [
        benchmarks::paulin_full(),
        benchmarks::fir(6),
        benchmarks::diffeq_unrolled(3),
    ] {
        check_equivalence(&bench, &FlowOptions::testable(), 25, 16);
    }
}

#[test]
fn wide_and_narrow_widths_agree_with_interpreter() {
    let bench = benchmarks::ex2();
    for width in [4u32, 8, 16, 32, 64] {
        check_equivalence(&bench, &FlowOptions::testable(), 20, width);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_designs_simulate_correctly(seed in any::<u64>(), vec_seed in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 16,
            num_inputs: 5,
            max_ops_per_step: 3,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "3+,3-,3*,3&".parse().expect("valid");
        for strategy in [
            RegAllocStrategy::Testable(Default::default()),
            RegAllocStrategy::Traditional(BaselineAlgorithm::LeftEdge),
        ] {
            let mut opts = FlowOptions::testable();
            opts.strategy = strategy;
            let d = match synthesize(&dfg, &schedule, &modules, &opts) {
                Ok(d) => d,
                Err(FlowError::Bist(_)) => continue, // untestable is fine here
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            let mut rng = StdRng::seed_from_u64(vec_seed);
            for _ in 0..10 {
                let inputs = random_inputs(&dfg, &mut rng, 8);
                let sim = simulate(&d.data_path, &dfg, &schedule, &inputs, 8)
                    .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                let gold = interp::outputs(&dfg, &inputs, 8)
                    .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                prop_assert_eq!(&sim, &gold);
            }
        }
    }
}
