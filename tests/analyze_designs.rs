//! Golden-snapshot testability reports for every shipped design under
//! `designs/`.
//!
//! Each design is synthesized with the same recipe the tutorial quotes
//! (see `sample_designs.rs`), analyzed with the static testability
//! framework (no simulation), and the JSON report compared byte-for-byte
//! against `tests/goldens/analyze/<name>.json`. The analysis is a pure
//! function of the allocation, so any divergence is a real change in the
//! COP/constant/reachability results — the diff shows exactly which cone
//! and which fault moved.
//!
//! To regenerate after an intentional report-format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test analyze_designs
//! ```

use lobist::alloc::flow::{synthesize, Design, FlowOptions};
use lobist::dfg::lifetime::LifetimeOptions;
use lobist::dfg::parse::{parse_dfg, parse_unscheduled_dfg};
use lobist::dfg::{Dfg, Schedule};
use lobist::lint::{analyze_design, FixpointScratch, LintUnit};

fn read_design(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/designs/");
    std::fs::read_to_string(format!("{path}{name}")).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn check_golden(name: &str, dfg: &Dfg, schedule: &Schedule, design: &Design, opts: &FlowOptions) {
    let unit = LintUnit::of_design(dfg, schedule, design, opts.lifetime_options, &opts.area);
    let mut scratch = FixpointScratch::new();
    let report = analyze_design(&unit, &mut scratch);
    assert!(
        !report.cones.is_empty(),
        "{name}: every shipped design has at least one used module cone"
    );
    let rendered = format!("{}\n", report.to_json(false));
    let path = format!(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/analyze/{}.json"),
        name
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("{path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with UPDATE_GOLDENS=1 to create it)"));
    assert_eq!(
        rendered, golden,
        "{name}: testability report diverged from its golden snapshot"
    );
}

#[test]
fn ex1_analyze_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("ex1.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("ex1", &dfg, &schedule, &d, &opts);
}

#[test]
fn quickstart_analyze_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("quickstart.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("quickstart", &dfg, &schedule, &d, &opts);
}

#[test]
fn polynomial_analyze_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("polynomial.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("polynomial", &dfg, &schedule, &d, &opts);
}

#[test]
fn diffeq_analyze_report_matches_golden() {
    let dfg = parse_unscheduled_dfg(&read_design("diffeq.dfg")).expect("parses");
    let schedule = lobist::dfg::fds::force_directed_schedule(&dfg, 4).expect("schedules");
    let opts = FlowOptions::testable().with_lifetimes(LifetimeOptions::port_inputs());
    let d =
        synthesize(&dfg, &schedule, &"1+,2*,1-".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("diffeq", &dfg, &schedule, &d, &opts);
}
