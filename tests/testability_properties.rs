//! Property-based tests over the static testability analysis: the COP
//! estimates must be probabilities for *every* generated cone, the
//! backward observability solve must be monotone under cone truncation
//! (the soundness basis of the `T301` flag — analyzing a cone in
//! isolation never under-reports how visible its faults are), and the
//! parallel analysis driver must be byte-identical to the serial one.

use proptest::prelude::*;

use lobist::alloc::flow::{synthesize, FlowOptions};
use lobist::dfg::lifetime::LifetimeOptions;
use lobist::dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use lobist::dfg::OpKind;
use lobist::gatesim::modules::unit_for;
use lobist::gatesim::net::{GateNetwork, NetId};
use lobist::lint::analysis::cop::{observabilities, signal_probabilities};
use lobist::lint::{analyze_design, FixpointScratch, LintUnit};

const KINDS: [OpKind; 8] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Div,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Lt,
];

fn cone_strategy() -> impl Strategy<Value = (OpKind, u32)> {
    (prop::sample::select(KINDS.to_vec()), 2u32..11)
}

/// Truncates `net` after its first `keep` gates: the kept prefix is
/// still topologically ordered (builder networks list gates in def
/// order), and every net the prefix drives that fed a *removed* gate —
/// plus any original output the prefix still drives — is promoted to a
/// primary output. This is exactly "analyze the sub-cone in isolation".
fn truncate(net: &GateNetwork, keep: usize) -> GateNetwork {
    let gates = net.gates()[..keep].to_vec();
    let mut driven = vec![false; net.num_nets()];
    for i in net.inputs() {
        driven[i.index()] = true;
    }
    for g in &gates {
        driven[g.out.index()] = true;
    }
    let mut promoted = vec![false; net.num_nets()];
    let mut outputs = Vec::new();
    let mut promote = |n: NetId, outputs: &mut Vec<NetId>| {
        if driven[n.index()] && !promoted[n.index()] {
            promoted[n.index()] = true;
            outputs.push(n);
        }
    };
    for o in net.outputs() {
        promote(*o, &mut outputs);
    }
    for g in &net.gates()[keep..] {
        promote(g.a, &mut outputs);
        promote(g.b, &mut outputs);
    }
    GateNetwork::from_parts(net.num_nets(), net.inputs().to_vec(), outputs, gates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cop_estimates_are_probabilities((kind, width) in cone_strategy()) {
        let net = unit_for(kind, width);
        let mut scratch = FixpointScratch::new();
        let p1 = signal_probabilities(&net, &mut scratch);
        let obs = observabilities(&net, &p1, &mut scratch);
        prop_assert_eq!(p1.len(), net.num_nets());
        prop_assert_eq!(obs.len(), net.num_nets());
        for i in 0..net.num_nets() {
            prop_assert!((0.0..=1.0).contains(&p1[i]), "p1[{i}]={}", p1[i]);
            prop_assert!((0.0..=1.0).contains(&obs[i]), "obs[{i}]={}", obs[i]);
        }
        // Primary outputs are directly visible.
        for o in net.outputs() {
            prop_assert!(obs[o.index()] == 1.0);
        }
    }

    #[test]
    fn cop_is_monotone_under_cone_truncation(
        (kind, width) in cone_strategy(),
        cut_pct in 10u32..90,
    ) {
        let net = unit_for(kind, width);
        let keep = (net.num_gates() * cut_pct as usize / 100).max(1);
        let sub = truncate(&net, keep);
        let mut scratch = FixpointScratch::new();
        let p1_full = signal_probabilities(&net, &mut scratch);
        let obs_full = observabilities(&net, &p1_full, &mut scratch);
        let p1_sub = signal_probabilities(&sub, &mut scratch);
        let obs_sub = observabilities(&sub, &p1_sub, &mut scratch);
        // Forward: the kept prefix computes the same probabilities.
        for i in net.inputs() {
            prop_assert_eq!(p1_sub[i.index()], p1_full[i.index()]);
        }
        for g in sub.gates() {
            let i = g.out.index();
            prop_assert_eq!(p1_sub[i], p1_full[i], "net {i}");
        }
        // Backward: isolating the sub-cone (cut nets become outputs)
        // can only raise observability — never lower it.
        for g in sub.gates() {
            let i = g.out.index();
            prop_assert!(
                obs_sub[i] >= obs_full[i] - 1e-12,
                "net {i}: sub {} < full {}", obs_sub[i], obs_full[i]
            );
        }
    }

}

proptest! {
    // Each case synthesizes a whole design and runs the pool driver
    // four times, so fewer cases than the pure-math properties above.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn parallel_analysis_is_byte_identical_to_serial(
        (seed, num_ops, num_inputs) in (any::<u64>(), 4usize..20, 2usize..6),
    ) {
        let cfg = RandomDfgConfig {
            num_ops,
            num_inputs,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "3+,3-,3*,3&".parse().expect("valid");
        let opts = FlowOptions::testable().with_lifetimes(LifetimeOptions::registered_inputs());
        let Ok(d) = synthesize(&dfg, &schedule, &modules, &opts) else {
            // Some random designs are legitimately unsynthesizable
            // (e.g. untestable modules); they are not analysis inputs.
            return Ok(());
        };
        let unit = LintUnit::of_design(&dfg, &schedule, &d, opts.lifetime_options, &opts.area);
        let mut scratch = FixpointScratch::new();
        let serial = analyze_design(&unit, &mut scratch);
        for workers in [1usize, 2, 4, 7] {
            let (parallel, _) = lobist::engine::analyze_parallel(&unit, workers, None);
            prop_assert_eq!(&parallel, &serial, "workers={}", workers);
            prop_assert_eq!(parallel.to_json(true), serial.to_json(true), "workers={}", workers);
            prop_assert_eq!(parallel.render_text(), serial.render_text(), "workers={}", workers);
        }
    }
}
