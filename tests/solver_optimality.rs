//! The BIST solver's optimality contract: on every design small enough
//! for the exhaustive reference, branch-and-bound must match it exactly,
//! and the greedy heuristic must be feasible and close.

use proptest::prelude::*;

use lobist::alloc::baseline_regalloc::BaselineAlgorithm;
use lobist::alloc::flow::{synthesize, FlowError, FlowOptions, RegAllocStrategy};
use lobist::bist::{solve, solve_exhaustive, SolverConfig, SolverMode};
use lobist::datapath::area::AreaModel;
use lobist::dfg::random::{random_scheduled_dfg, RandomDfgConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branch_and_bound_matches_exhaustive(seed in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 10,
            num_inputs: 4,
            max_ops_per_step: 2,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "2+,2-,2*,2&".parse().expect("valid");
        for strategy in [
            RegAllocStrategy::Testable(Default::default()),
            RegAllocStrategy::Traditional(BaselineAlgorithm::LeftEdge),
            RegAllocStrategy::Traditional(BaselineAlgorithm::GreedyPves),
        ] {
            let mut opts = FlowOptions::testable();
            opts.strategy = strategy;
            let d = match synthesize(&dfg, &schedule, &modules, &opts) {
                Ok(d) => d,
                Err(FlowError::Bist(_)) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            };
            let model = AreaModel::default();
            let exact = solve(
                &d.data_path,
                &model,
                &SolverConfig { mode: SolverMode::Exact, ..Default::default() },
            )
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            let brute = solve_exhaustive(&d.data_path, &model)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(exact.overhead, brute.overhead);
            // The flow's own (auto) answer can never beat the optimum.
            prop_assert!(d.bist.overhead >= exact.overhead);
            // Greedy is feasible and within 2x of optimal on these sizes.
            let greedy = solve(
                &d.data_path,
                &model,
                &SolverConfig { mode: SolverMode::Greedy, ..Default::default() },
            )
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert!(greedy.overhead >= exact.overhead);
            prop_assert!(
                greedy.overhead.get() <= exact.overhead.get() * 2,
                "greedy {} vs exact {}",
                greedy.overhead,
                exact.overhead
            );
        }
    }

    #[test]
    fn solutions_are_deterministic(seed in any::<u64>()) {
        let cfg = RandomDfgConfig {
            num_ops: 12,
            num_inputs: 4,
            max_ops_per_step: 2,
            ..RandomDfgConfig::default()
        };
        let (dfg, schedule) = random_scheduled_dfg(seed, &cfg);
        let modules: lobist::dfg::modules::ModuleSet = "2+,2-,2*,2&".parse().expect("valid");
        let run = || synthesize(&dfg, &schedule, &modules, &FlowOptions::testable());
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.bist.overhead, b.bist.overhead);
                prop_assert_eq!(a.bist.styles, b.bist.styles);
                prop_assert_eq!(
                    a.register_assignment.classes(),
                    b.register_assignment.classes()
                );
            }
            (Err(_), Err(_)) => {}
            _ => return Err(TestCaseError::fail("nondeterministic failure")),
        }
    }
}
