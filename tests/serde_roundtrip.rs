//! Serde round-trips for the report types (compiled only with the
//! `serde` feature: `cargo test --features serde --test serde_roundtrip`).

#![cfg(feature = "serde")]

use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist::bist::{BistSolution, TestPlan};
use lobist::datapath::area::{AreaModel, BistStyle, GateCount};
use lobist::dfg::benchmarks;
use lobist::dfg::OpKind;

#[test]
fn bist_solution_round_trips_through_json() {
    for bench in benchmarks::paper_suite() {
        let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
        let json = serde_json::to_string(&d.bist).expect("serializes");
        let back: BistSolution = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, d.bist, "{}", bench.name);
        // Spot-check the wire format.
        assert!(json.contains("overhead"), "{json}");
        assert!(json.contains("styles"), "{json}");
    }
}

#[test]
fn test_plan_round_trips() {
    let bench = benchmarks::ex1();
    let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
    let plan = TestPlan::new(&d.data_path, &d.bist, 8);
    let json = serde_json::to_string(&plan).expect("serializes");
    let back: TestPlan = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, plan);
}

#[test]
fn leaf_types_round_trip() {
    let model = AreaModel::default();
    let json = serde_json::to_string(&model).expect("serializes");
    let back: AreaModel = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, model);

    for style in BistStyle::ALL {
        let json = serde_json::to_string(&style).expect("serializes");
        let back: BistStyle = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, style);
    }
    for kind in OpKind::ALL {
        let json = serde_json::to_string(&kind).expect("serializes");
        let back: OpKind = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, kind);
    }
    let g = GateCount(42);
    let back: GateCount = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
    assert_eq!(back, g);
}
