//! Structural validation of the Verilog backends across every benchmark
//! and both flows: balanced constructs, all components present, and the
//! BIST wrapper consistent with the solved configuration.

use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist::datapath::area::BistStyle;
use lobist::datapath::verilog::to_verilog;
use lobist::datapath::verilog_bist::to_bist_verilog;
use lobist::dfg::benchmarks;

fn token_count(text: &str, word: &str) -> usize {
    text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|t| *t == word)
        .count()
}

#[test]
fn functional_rtl_is_structurally_sound_everywhere() {
    for bench in benchmarks::paper_suite() {
        for opts in [FlowOptions::testable(), FlowOptions::traditional()] {
            let d = synthesize_benchmark(&bench, &opts).expect("synthesizes");
            let v = to_verilog(&d.data_path, &bench.dfg, &bench.schedule, "dut", 8);
            assert_eq!(token_count(&v, "begin"), token_count(&v, "end"), "{}", bench.name);
            assert_eq!(token_count(&v, "case"), token_count(&v, "endcase"), "{}", bench.name);
            assert_eq!(token_count(&v, "module"), token_count(&v, "endmodule"));
            // Every register and module appears.
            for r in 0..d.data_path.num_registers() {
                assert!(v.contains(&format!("R{}", r + 1)), "{}: R{}", bench.name, r + 1);
            }
            for m in 0..d.data_path.num_modules() {
                assert!(v.contains(&format!("M{}_y", m + 1)), "{}: M{}", bench.name, m + 1);
            }
            // Every output is wired.
            for vout in bench.dfg.primary_outputs() {
                let name = &bench.dfg.var(vout).name;
                assert!(v.contains(&format!("out_{name}")), "{}: {name}", bench.name);
            }
            // Every identifier referenced as RN is declared.
            for tok in v
                .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .filter(|t| t.starts_with('R') && t[1..].chars().all(|c| c.is_ascii_digit()) && t.len() > 1)
            {
                assert!(
                    v.contains(&format!("reg [7:0] {tok};")),
                    "{}: {tok} used but not declared",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn bist_wrapper_matches_solution_everywhere() {
    for bench in benchmarks::paper_suite() {
        let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
        let v = to_bist_verilog(
            &d.data_path,
            &bench.dfg,
            &d.bist.styles,
            &d.bist.test_roles(),
            "dut_bist",
            8,
            255,
        );
        assert_eq!(token_count(&v, "begin"), token_count(&v, "end"), "{}", bench.name);
        assert_eq!(token_count(&v, "case"), token_count(&v, "endcase"), "{}", bench.name);
        // One session-fold arm per session.
        let sessions = d.bist.num_sessions();
        for s in 0..sessions {
            assert!(
                v.contains(&format!("8'd{s}: ")),
                "{}: session {s} missing\n{v}",
                bench.name
            );
        }
        assert!(v.contains(&format!("session >= 8'd{sessions};")), "{}", bench.name);
        // Each CBILBO register gets its generator rank; others do not.
        for r in d.data_path.register_ids() {
            let gen = format!("R{}_gen", r.0 + 1);
            if d.bist.style(r) == BistStyle::Cbilbo {
                assert!(v.contains(&gen), "{}: missing {gen}", bench.name);
            } else {
                assert!(!v.contains(&gen), "{}: unexpected {gen}", bench.name);
            }
        }
        // LFSR and MISR steps exist whenever the solution has generators
        // and analyzers.
        assert!(v.contains("MISR step"), "{}", bench.name);
        if d.bist.styles.iter().any(|s| s.can_generate()) {
            assert!(v.contains("LFSR step"), "{}", bench.name);
        }
    }
}

#[test]
fn interconnect_labels_agree_with_bound_sides() {
    use lobist::alloc::interconnect::PortLabel;
    use lobist::datapath::{PortSide, SourceRef};
    use lobist::dfg::Operand;
    for bench in benchmarks::paper_suite() {
        let d = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("synthesizes");
        for part in &d.port_partitions {
            for op in d.data_path.module_ops(part.module) {
                let info = bench.dfg.op(*op);
                let source_of = |o: Operand| -> SourceRef {
                    match o {
                        Operand::Const(c) => SourceRef::Constant(c),
                        Operand::Var(v) => match d.data_path.register_of(v) {
                            Some(r) => SourceRef::Register(r),
                            None => SourceRef::ExternalInput(v),
                        },
                    }
                };
                let lhs_side = d.data_path.lhs_side(*op);
                for (operand, side) in [(info.lhs, lhs_side), (info.rhs, lhs_side.other())] {
                    let src = source_of(operand);
                    let label = part.labels.get(&src).unwrap_or_else(|| {
                        panic!("{}: source {src} unlabeled", bench.name)
                    });
                    let ok = matches!(
                        (label, side),
                        (PortLabel::Both, _)
                            | (PortLabel::Left, PortSide::Left)
                            | (PortLabel::Right, PortSide::Right)
                    );
                    assert!(
                        ok,
                        "{}: {src} labeled {label:?} but bound to {side} for {}",
                        bench.name, info.name
                    );
                }
            }
        }
    }
}

#[test]
fn bist_wrapper_taps_match_the_gate_level_lfsrs() {
    for width in 2..=32u32 {
        assert_eq!(
            lobist::datapath::verilog_bist::tap_mask(width),
            lobist::gatesim::lfsr::tap_mask(width),
            "width {width}"
        );
    }
}
