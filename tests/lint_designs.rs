//! Golden-snapshot lint reports for every shipped design under
//! `designs/`.
//!
//! Each design is synthesized with the same recipe the tutorial quotes
//! (see `sample_designs.rs`), linted with the default pass registry, and
//! the JSON report compared byte-for-byte against
//! `tests/goldens/lint/<name>.json`. All shipped designs must lint clean
//! — an unclean report is a regression in the flow, a wrong golden, or a
//! new pass that the designs now trip; either way the diff shows exactly
//! which code fired where.
//!
//! To regenerate after an intentional report-format change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test lint_designs
//! ```

use lobist::alloc::flow::{synthesize, Design, FlowOptions};
use lobist::dfg::lifetime::LifetimeOptions;
use lobist::dfg::parse::{parse_dfg, parse_unscheduled_dfg};
use lobist::dfg::{Dfg, Schedule};
use lobist::lint::{lint, LintUnit};

fn read_design(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/designs/");
    std::fs::read_to_string(format!("{path}{name}")).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn check_golden(name: &str, dfg: &Dfg, schedule: &Schedule, design: &Design, opts: &FlowOptions) {
    let unit = LintUnit::of_design(dfg, schedule, design, opts.lifetime_options, &opts.area);
    let report = lint(&unit);
    assert!(
        report.is_clean(),
        "{name}: shipped design must lint clean:\n{}",
        report.render_text()
    );
    let rendered = format!("{}\n", report.to_json());
    let path = format!(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/lint/{}.json"),
        name
    );
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("{path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{path}: {e} (run with UPDATE_GOLDENS=1 to create it)")
    });
    assert_eq!(
        rendered, golden,
        "{name}: lint report diverged from its golden snapshot"
    );
}

#[test]
fn ex1_lint_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("ex1.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("ex1", &dfg, &schedule, &d, &opts);
}

#[test]
fn quickstart_lint_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("quickstart.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("quickstart", &dfg, &schedule, &d, &opts);
}

#[test]
fn polynomial_lint_report_matches_golden() {
    let (dfg, schedule) = parse_dfg(&read_design("polynomial.dfg")).expect("parses");
    let opts = FlowOptions::testable();
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts).expect("synthesizes");
    check_golden("polynomial", &dfg, &schedule, &d, &opts);
}

#[test]
fn diffeq_lint_report_matches_golden() {
    let dfg = parse_unscheduled_dfg(&read_design("diffeq.dfg")).expect("parses");
    let schedule = lobist::dfg::fds::force_directed_schedule(&dfg, 4).expect("schedules");
    let opts = FlowOptions::testable().with_lifetimes(LifetimeOptions::port_inputs());
    let d = synthesize(&dfg, &schedule, &"1+,2*,1-".parse().unwrap(), &opts)
        .expect("synthesizes");
    check_golden("diffeq", &dfg, &schedule, &d, &opts);
}

#[test]
fn traditional_flow_designs_also_lint_clean() {
    // The traditional flow produces the denser BIST mixes (including
    // forced CBILBOs); its results must satisfy the same audit.
    for name in ["ex1.dfg", "quickstart.dfg", "polynomial.dfg"] {
        let (dfg, schedule) = parse_dfg(&read_design(name)).expect("parses");
        let opts = FlowOptions::traditional();
        let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &opts)
            .expect("synthesizes");
        let unit =
            LintUnit::of_design(&dfg, &schedule, &d, opts.lifetime_options, &opts.area);
        let report = lint(&unit);
        assert!(
            report.is_clean(),
            "{name} (traditional): must lint clean:\n{}",
            report.render_text()
        );
    }
}
