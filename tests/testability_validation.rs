//! Predicted-vs-measured validation of the static testability analysis.
//!
//! The COP-based `T301` flag claims a fault is random-pattern resistant
//! — likely to escape a short pseudorandom session. This test measures
//! that claim against the gate-level differential fault simulator: over
//! every module cone of the paper suite plus corpus FIR/IIR sweeps, the
//! statically flagged faults must be **enriched** among the faults that
//! a 256-pattern pseudorandom run actually misses:
//!
//! ```text
//! (|hard ∩ missed| / |missed|)  /  (|hard| / |faults|)  >= 2.0
//! ```
//!
//! The universe is the non-redundant fault set (faults the constant
//! analysis proves undetectable are excluded from both sides — they
//! are always missed and never flagged `T301`, so counting them would
//! only blur the measurement). Both the analysis and the simulator are
//! deterministic, so the enrichment ratio is a fixed number; the 2×
//! floor leaves headroom under it.

use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
use lobist::dfg::benchmarks::{self, Benchmark};
use lobist::gatesim::coverage::random_pattern_coverage;
use lobist::lint::{analyze_design, FixpointScratch, LintUnit, RANDOM_PATTERN_BUDGET};

/// Aggregated fault tallies over one set of cones.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    faults: usize,
    hard: usize,
    missed: usize,
    hard_missed: usize,
}

impl Tally {
    fn enrichment(&self) -> f64 {
        let flag_rate = self.hard as f64 / self.faults as f64;
        let flag_rate_in_missed = self.hard_missed as f64 / self.missed as f64;
        flag_rate_in_missed / flag_rate
    }
}

/// Scores and simulates every used module cone of `bench`'s synthesized
/// design, accumulating into `tally`. Fault indices line up because the
/// analysis and the simulator both enumerate `enumerate_faults` order.
fn accumulate(bench: &Benchmark, seed: u64, tally: &mut Tally) {
    let opts = FlowOptions::testable();
    let design = synthesize_benchmark(bench, &opts)
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", bench.name));
    let unit = LintUnit::of_design(
        &bench.dfg,
        &bench.schedule,
        &design,
        bench.lifetime_options,
        &opts.area,
    );
    let mut scratch = FixpointScratch::new();
    let report = analyze_design(&unit, &mut scratch);
    for cone in &report.cones {
        let net = cone.cone.build_network(report.width);
        let measured = random_pattern_coverage(&net, RANDOM_PATTERN_BUDGET, seed);
        assert_eq!(
            measured.first_detection.len(),
            cone.scores.len(),
            "{}: fault enumeration must line up",
            cone.cone.label()
        );
        for (score, first) in cone.scores.iter().zip(&measured.first_detection) {
            if score.redundant {
                // Provably undetectable: the simulator must agree.
                assert!(
                    first.is_none(),
                    "{}: {:?} is statically redundant but was detected",
                    cone.cone.label(),
                    score.fault
                );
                continue;
            }
            tally.faults += 1;
            let missed = first.is_none();
            tally.hard += usize::from(score.hard);
            tally.missed += usize::from(missed);
            tally.hard_missed += usize::from(score.hard && missed);
        }
    }
}

#[test]
fn t301_flags_are_enriched_among_simulation_misses() {
    let mut suite = benchmarks::paper_suite();
    // Corpus sweeps: deeper arithmetic (FIR taps, IIR biquad chains)
    // gives the multiplier/divider cones where resistance concentrates.
    suite.push(benchmarks::fir(8));
    suite.push(benchmarks::fir(16));
    suite.push(benchmarks::iir_biquad_cascade(2));

    let mut tally = Tally::default();
    for bench in &suite {
        accumulate(bench, 0xBEEF, &mut tally);
    }

    assert!(tally.faults > 1000, "suite too small: {tally:?}");
    assert!(
        tally.hard > 0,
        "the analysis must flag some faults as resistant: {tally:?}"
    );
    assert!(
        tally.missed > 0,
        "a {RANDOM_PATTERN_BUDGET}-pattern run must miss some faults: {tally:?}"
    );
    let enrichment = tally.enrichment();
    assert!(
        enrichment >= 2.0,
        "T301 flags must be >=2x enriched among simulation misses, got {enrichment:.2} ({tally:?})"
    );
}

#[test]
fn most_unflagged_faults_are_detected_quickly() {
    // The complement check: faults the analysis does NOT flag should
    // overwhelmingly be caught by the short pseudorandom session —
    // otherwise the flag would be enriched but useless as a filter.
    let bench = benchmarks::ex1();
    let opts = FlowOptions::testable();
    let design = synthesize_benchmark(&bench, &opts).expect("synthesizes");
    let unit = LintUnit::of_design(
        &bench.dfg,
        &bench.schedule,
        &design,
        bench.lifetime_options,
        &opts.area,
    );
    let mut scratch = FixpointScratch::new();
    let report = analyze_design(&unit, &mut scratch);
    let (mut unflagged, mut unflagged_detected) = (0usize, 0usize);
    for cone in &report.cones {
        let net = cone.cone.build_network(report.width);
        let measured = random_pattern_coverage(&net, RANDOM_PATTERN_BUDGET, 0xBEEF);
        for (score, first) in cone.scores.iter().zip(&measured.first_detection) {
            if score.redundant || score.hard {
                continue;
            }
            unflagged += 1;
            unflagged_detected += usize::from(first.is_some());
        }
    }
    assert!(unflagged > 0);
    let rate = unflagged_detected as f64 / unflagged as f64;
    assert!(
        rate >= 0.9,
        "unflagged faults should mostly be detected: {unflagged_detected}/{unflagged}"
    );
}
