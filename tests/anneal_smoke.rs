//! Quick-mode smoke test for the annealing search engine: a small
//! iteration budget on one paper benchmark, exercising the memoized
//! oracle, the speculative batch replay and the multi-chain driver
//! end to end. Kept fast enough for the tier-1 `cargo test -q` gate.

use lobist::alloc::anneal::{anneal_registers, AnnealConfig};
use lobist::alloc::flow::FlowOptions;
use lobist::alloc::module_assign::assign_modules;
use lobist::dfg::benchmarks;
use lobist::engine::{anneal_multichain, anneal_parallel};

#[test]
fn quick_anneal_smoke() {
    let bench = benchmarks::ex1();
    let flow = FlowOptions::testable().with_lifetimes(bench.lifetime_options);
    let ma = assign_modules(&bench.dfg, &bench.schedule, &bench.module_allocation)
        .expect("module assignment");
    let config = AnnealConfig { iterations: 40, batch: 8, ..Default::default() };

    let serial = anneal_registers(
        &bench.dfg,
        &bench.schedule,
        bench.lifetime_options,
        &ma,
        &flow,
        &config,
    )
    .expect("serial anneal");
    assert!(serial.overhead <= serial.initial_overhead);
    assert_eq!(serial.evaluated + serial.stalled, config.iterations);

    let (parallel, stats) = anneal_parallel(
        &bench.dfg,
        &bench.schedule,
        bench.lifetime_options,
        &ma,
        &flow,
        &config,
        2,
    )
    .expect("parallel anneal");
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
    assert_eq!(stats.chains, 1);

    let (multi, mstats) = anneal_multichain(
        &bench.dfg,
        &bench.schedule,
        bench.lifetime_options,
        &ma,
        &flow,
        &config,
        2,
        2,
    )
    .expect("multichain anneal");
    assert_eq!(mstats.chain_overheads.len(), 2);
    assert!(multi.overhead <= serial.overhead, "best-of includes the serial chain");
}
