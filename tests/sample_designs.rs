//! The shipped sample designs under `designs/` must keep parsing and
//! synthesizing (they are quoted in the tutorial and README).

use lobist::alloc::flow::{synthesize, FlowOptions};
use lobist::dfg::parse::{parse_dfg, parse_unscheduled_dfg};

fn read(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/designs/");
    std::fs::read_to_string(format!("{path}{name}")).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn ex1_design_matches_the_benchmark() {
    let (dfg, schedule) = parse_dfg(&read("ex1.dfg")).expect("parses");
    let bench = lobist::dfg::benchmarks::ex1();
    assert_eq!(dfg.num_ops(), bench.dfg.num_ops());
    assert_eq!(dfg.num_vars(), bench.dfg.num_vars());
    assert_eq!(schedule.max_step(), bench.schedule.max_step());
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &FlowOptions::testable())
        .expect("synthesizes");
    assert_eq!(d.data_path.num_registers(), 3);
}

#[test]
fn quickstart_design_synthesizes() {
    let (dfg, schedule) = parse_dfg(&read("quickstart.dfg")).expect("parses");
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &FlowOptions::testable())
        .expect("synthesizes");
    assert_eq!(d.data_path.num_registers(), 3);
    assert!(d.bist.overhead.get() > 0);
}

#[test]
fn polynomial_design_synthesizes() {
    let (dfg, schedule) = parse_dfg(&read("polynomial.dfg")).expect("parses");
    let d = synthesize(&dfg, &schedule, &"1+,1*".parse().unwrap(), &FlowOptions::testable())
        .expect("synthesizes");
    assert!(d.data_path.num_registers() >= 2);
}

#[test]
fn diffeq_design_schedules_and_synthesizes() {
    let dfg = parse_unscheduled_dfg(&read("diffeq.dfg")).expect("parses");
    let schedule = lobist::dfg::fds::force_directed_schedule(&dfg, 4).expect("schedules");
    let opts = FlowOptions::testable()
        .with_lifetimes(lobist::dfg::lifetime::LifetimeOptions::port_inputs());
    let d = synthesize(&dfg, &schedule, &"1+,2*,1-".parse().unwrap(), &opts)
        .expect("synthesizes");
    assert_eq!(d.data_path.num_registers(), 4);
}
