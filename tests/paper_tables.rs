//! Integration tests pinning the *shape* of the paper's Tables I–III:
//! who wins, in which direction, with which resource mixes.

use lobist::datapath::area::BistStyle;
use lobist_bench::{ablation, table1, table2, table3};

#[test]
fn table1_register_counts_match_paper() {
    let rows = table1().expect("table 1 runs");
    let expected: &[(&str, usize)] = &[
        ("ex1", 3),
        ("ex2", 5),
        ("Tseng1", 5),
        ("Tseng2", 5),
        ("Paulin", 4),
    ];
    for ((name, regs), row) in expected.iter().zip(&rows) {
        assert_eq!(&row.dfg, name);
        assert_eq!(row.traditional.0, *regs, "{name} traditional registers");
        assert_eq!(row.testable.0, *regs, "{name} testable registers");
    }
}

#[test]
fn table1_reductions_positive_everywhere() {
    // The paper reports 30–46% reductions; our area model lands the same
    // direction with at least a 10% cut on every benchmark.
    for row in table1().expect("table 1 runs") {
        assert!(
            row.reduction_percent >= 10.0,
            "{}: only {:.1}% reduction",
            row.dfg,
            row.reduction_percent
        );
        assert!(
            row.testable.2 < row.traditional.2,
            "{}: testable overhead % must be lower",
            row.dfg
        );
    }
}

#[test]
fn table1_overheads_in_paper_band() {
    // Traditional 10.04–18.14% in the paper; testable 5.66–11.34%. Our
    // library shifts the absolute numbers but must stay in the same
    // decade (low single digits to high teens).
    for row in table1().expect("table 1 runs") {
        assert!(
            row.traditional.2 > 2.0 && row.traditional.2 < 25.0,
            "{}: traditional {:.2}%",
            row.dfg,
            row.traditional.2
        );
        assert!(
            row.testable.2 > 1.0 && row.testable.2 < 15.0,
            "{}: testable {:.2}%",
            row.dfg,
            row.testable.2
        );
    }
}

fn cbilbo_count(mix: &str) -> usize {
    mix.split(',')
        .map(str::trim)
        .filter(|p| p.ends_with("CBILBO"))
        .filter_map(|p| p.split(' ').next())
        .filter_map(|n| n.parse::<usize>().ok())
        .sum()
}

#[test]
fn table2_testable_eliminates_cbilbos() {
    let rows = table2().expect("table 2 runs");
    assert_eq!(rows.len(), 5);
    for row in &rows {
        let trad = cbilbo_count(&row.traditional);
        let test = cbilbo_count(&row.testable);
        assert!(test <= trad, "{}: {} vs {}", row.dfg, test, trad);
    }
    // At least three benchmarks must show a strict CBILBO reduction
    // (the paper shows strict reductions on all five).
    let strict = rows
        .iter()
        .filter(|r| cbilbo_count(&r.testable) < cbilbo_count(&r.traditional))
        .count();
    assert!(strict >= 3, "only {strict} strict CBILBO reductions");
}

#[test]
fn table3_matches_paper_ordering() {
    let rows = table3().expect("table 3 runs");
    let get = |name: &str| rows.iter().find(|r| r.system == name).expect("row exists");
    let ours = get("Ours");
    let ralloc = get("RALLOC");
    let syntest = get("SYNTEST");
    // Ours uses the fewest registers (paper: 4 vs 5 vs 5).
    assert!(ours.registers < ralloc.registers);
    assert!(ours.registers < syntest.registers);
    assert_eq!(ours.registers, 4);
    // RALLOC is BILBO/CBILBO-only; SYNTEST is CBILBO-free.
    assert_eq!(ralloc.counts[0] + ralloc.counts[1], 0, "RALLOC has no plain TPG/SA");
    assert_eq!(syntest.counts[3], 0, "SYNTEST is CBILBO-free");
    // Ours has the lowest overhead.
    assert!(ours.overhead_percent < ralloc.overhead_percent);
    assert!(ours.overhead_percent < syntest.overhead_percent);
}

#[test]
fn ablation_heuristics_help() {
    let rows = ablation().expect("ablation runs");
    let total = |cfg: &str| {
        rows.iter()
            .find(|r| r.config == cfg)
            .expect("config exists")
            .total_overhead
    };
    let all_on = total("all on");
    // Disabling the Lemma-2 check or SD ordering must not help overall.
    assert!(all_on <= total("no lemma-2 check"));
    assert!(all_on <= total("no SD ordering"));
    assert!(all_on <= total("all off"));
    // And the CBILBO count across the suite rises without the check.
    let cb = |cfg: &str| -> usize {
        rows.iter()
            .find(|r| r.config == cfg)
            .expect("config exists")
            .outcomes
            .iter()
            .map(|(_, _, cb)| *cb)
            .sum()
    };
    assert!(cb("all on") < cb("no lemma-2 check"));
}

#[test]
fn table2_mixes_mention_known_styles_only() {
    for row in table2().expect("runs") {
        for mix in [&row.traditional, &row.testable] {
            for part in mix.split(',').map(str::trim) {
                assert!(
                    part == "none"
                        || part.ends_with("TPG")
                        || part.ends_with("SA")
                        || part.ends_with("TPG/SA")
                        || part.ends_with("CBILBO"),
                    "unexpected style in {mix:?}"
                );
            }
        }
    }
}

#[test]
fn styles_of_final_solutions_cover_their_embeddings() {
    use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
    use lobist::dfg::benchmarks;
    for bench in benchmarks::paper_suite() {
        for opts in [FlowOptions::testable(), FlowOptions::traditional()] {
            let d = synthesize_benchmark(&bench, &opts).expect("synthesizes");
            for (m, e) in d.bist.embeddings.iter().enumerate() {
                for t in e.tpg_registers() {
                    assert!(
                        d.bist.style(t).can_generate(),
                        "{} M{}: {t} cannot generate",
                        bench.name,
                        m + 1
                    );
                }
                assert!(d.bist.style(e.sa).can_analyze(), "{} M{}", bench.name, m + 1);
                if let Some(c) = e.cbilbo_register() {
                    assert_eq!(d.bist.style(c), BistStyle::Cbilbo, "{}", bench.name);
                }
            }
        }
    }
}

#[test]
fn every_flow_solution_passes_independent_verification() {
    use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
    use lobist::bist::verify::verify;
    use lobist::datapath::area::AreaModel;
    use lobist::dfg::benchmarks;
    for bench in benchmarks::paper_suite() {
        for opts in [FlowOptions::testable(), FlowOptions::traditional()] {
            let d = synthesize_benchmark(&bench, &opts).expect("synthesizes");
            let violations = verify(&d.data_path, &d.bist, &AreaModel::default());
            assert!(violations.is_empty(), "{}: {violations:?}", bench.name);
        }
    }
}

#[test]
fn baselines_lose_on_every_benchmark() {
    // Table III generalized: across the full suite, our flow uses no more
    // registers and strictly less BIST overhead than both baselines.
    use lobist::alloc::flow::{synthesize_benchmark, FlowOptions};
    use lobist::baselines::{ralloc, syntest};
    use lobist::datapath::area::AreaModel;
    use lobist::dfg::benchmarks;
    let model = AreaModel::default();
    for bench in benchmarks::paper_suite() {
        let ours = synthesize_benchmark(&bench, &FlowOptions::testable()).expect("ours");
        let r = ralloc::run(&bench, &model).expect("RALLOC");
        let s = syntest::run(&bench, &model).expect("SYNTEST");
        assert!(
            ours.data_path.num_registers() <= r.num_registers,
            "{} vs RALLOC registers",
            bench.name
        );
        assert!(
            ours.data_path.num_registers() <= s.num_registers,
            "{} vs SYNTEST registers",
            bench.name
        );
        assert!(
            ours.bist.overhead_percent < r.overhead_percent,
            "{} vs RALLOC overhead",
            bench.name
        );
        assert!(
            ours.bist.overhead_percent < s.overhead_percent,
            "{} vs SYNTEST overhead",
            bench.name
        );
    }
}
